"""Representation-aware physical operators for the plan interpreter.

The executor evaluates DAG nodes bottom-up; when a child value is a
:class:`~repro.compression.CompressedMatrix` (CLA),
:class:`~repro.sparse.CSRMatrix`, or
:class:`~repro.factorized.NormalizedMatrix`, dispatch lands here instead
of the dense kernels in :mod:`repro.runtime.ops`. Each physical operator
(matmul, transpose-matmul, aggregates, elementwise with scalar
broadcast, the fused kernels) is routed to the representation's native
kernel; ops a representation genuinely cannot serve densify the operand
once (memoized per execution) and record the fallback on the stats
object so benchmarks can attribute it.

Representation classes are imported lazily: ``repro.compression`` and
``repro.sparse`` import :mod:`repro.runtime.parallel`, so a module-level
import here would create a cycle through ``repro.runtime``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from ..lang.ast import Aggregate, Binary, Fused, MatMul, Node, Transpose, Unary
from .ops import apply_aggregate, apply_binary, apply_fused, apply_unary

_REP_CLASSES: tuple[type, ...] | None = None


def _rep_classes() -> tuple[type, ...]:
    global _REP_CLASSES
    if _REP_CLASSES is None:
        from ..compression.matrix import CompressedMatrix
        from ..factorized.normalized import NormalizedMatrix
        from ..sparse.csr import CSRMatrix

        _REP_CLASSES = (CompressedMatrix, CSRMatrix, NormalizedMatrix)
    return _REP_CLASSES


class TransposedOperand:
    """Zero-copy transpose view over any representation operand.

    Produced by Transpose nodes so downstream matmuls keep running on
    the native kernels (``matmat`` <-> ``rmatmat``, ``colsums`` <->
    ``rowsums``) instead of densifying.
    """

    def __init__(self, base):
        self.base = base
        self.shape = (base.shape[1], base.shape[0])

    def matmat(self, B: np.ndarray) -> np.ndarray:
        return self.base.rmatmat(B)

    def rmatmat(self, U: np.ndarray) -> np.ndarray:
        return self.base.matmat(U)

    def colsums(self) -> np.ndarray:
        return self.base.rowsums()

    def rowsums(self) -> np.ndarray:
        return self.base.colsums()

    def sum(self) -> float:
        return self.base.sum()

    def sq_sum(self) -> float:
        return self.base.sq_sum()

    def to_dense(self) -> np.ndarray:
        return _densify_base(self.base).T

    @property
    def memory_bytes(self) -> int:
        return self.base.memory_bytes


def kind_of(value) -> str:
    """Storage kind tag: 'dense', 'csr', 'cla', or 'factorized'."""
    if isinstance(value, TransposedOperand):
        return kind_of(value.base)
    compressed, csr, normalized = _rep_classes()
    if isinstance(value, compressed):
        return "cla"
    if isinstance(value, csr):
        return "csr"
    if isinstance(value, normalized):
        return "factorized"
    return "dense"


def is_representation(value) -> bool:
    """True for non-dense operands the executor must dispatch on."""
    if isinstance(value, (np.ndarray, float, int)):
        return False
    return isinstance(value, _rep_classes() + (TransposedOperand,))


def _densify_base(value) -> np.ndarray:
    out = value.to_dense()
    return np.asarray(out, dtype=np.float64)


def densify(value) -> np.ndarray:
    """Dense float64 array for any operand (identity for ndarrays)."""
    if isinstance(value, TransposedOperand):
        return value.to_dense()
    if is_representation(value):
        return _densify_base(value)
    return np.asarray(value, dtype=np.float64)


def operand_bytes(value) -> int:
    """Actual storage footprint of an operand in its current form."""
    if is_representation(value):
        return int(value.memory_bytes)
    return int(np.asarray(value).nbytes)


def convert_value(value, target: str, sample_fraction: float = 0.05):
    """Convert an operand to the target representation (idempotent).

    Converting *to* 'factorized' requires the operand to already be a
    NormalizedMatrix — a schema cannot be invented from a dense array.
    """
    current = kind_of(value)
    if current == target:
        return value
    if target == "dense":
        return densify(value)
    if target == "csr":
        from ..sparse.csr import CSRMatrix

        return CSRMatrix.from_dense(densify(value))
    if target == "cla":
        from ..compression.matrix import CompressedMatrix

        return CompressedMatrix.compress(
            densify(value), sample_fraction=sample_fraction
        )
    if target == "factorized":
        raise ExecutionError(
            f"cannot convert a {current} operand to 'factorized': "
            "the star-schema structure is not recoverable from values"
        )
    raise ExecutionError(f"unknown representation target {target!r}")


# ----------------------------------------------------------------------
# Elementwise map capability
# ----------------------------------------------------------------------
def _scalar_of(value) -> float | None:
    """The scalar payload if ``value`` is a (1, 1) dense operand."""
    if isinstance(value, np.ndarray) and value.shape == (1, 1):
        return float(value[0, 0])
    return None


def _is_zero_preserving(fn) -> bool:
    with np.errstate(all="ignore"):
        out = fn(np.zeros(1))
    return bool(np.all(out == 0.0))


def _map_rep(value, fn, zero_preserving: bool):
    """Apply an elementwise map natively, or return None if unsupported."""
    if isinstance(value, TransposedOperand):
        mapped = _map_rep(value.base, fn, zero_preserving)
        return None if mapped is None else TransposedOperand(mapped)
    kind = kind_of(value)
    if kind == "csr":
        # Implicit zeros stay implicit only for zero-preserving maps.
        return value.map_nonzeros(fn) if zero_preserving else None
    if kind in ("cla", "factorized"):
        # Dictionary / per-table rewrites are exact for any map.
        return value.map_values(fn)
    return None


# ----------------------------------------------------------------------
# Node dispatch
# ----------------------------------------------------------------------
def eval_node(node: Node, children: list, stats, dense_cache: dict):
    """Evaluate one node with at least one representation child.

    Returns the result (ndarray, representation operand, or
    TransposedOperand). Native dispatches and densification fallbacks
    are tallied on ``stats`` (``note_native`` / ``note_fallback``).
    """
    if isinstance(node, MatMul):
        return _eval_matmul(node, children, stats, dense_cache)
    if isinstance(node, Transpose):
        (x,) = children
        stats.note_native(f"transpose[{kind_of(x)}]")
        return x.base if isinstance(x, TransposedOperand) else TransposedOperand(x)
    if isinstance(node, Binary):
        return _eval_binary(node, children, stats, dense_cache)
    if isinstance(node, Unary):
        return _eval_unary(node, children, stats, dense_cache)
    if isinstance(node, Aggregate):
        return _eval_aggregate(node, children, stats, dense_cache)
    if isinstance(node, Fused):
        return _eval_fused(node, children, stats, dense_cache)
    raise ExecutionError(
        f"cannot execute node type {type(node).__name__} over "
        f"representation operands"
    )


def _fallback_dense(value, label: str, stats, dense_cache: dict):
    """One-time densification of an operand (memoized per execution)."""
    if not is_representation(value):
        return value
    cached = dense_cache.get(id(value))
    if cached is None:
        cached = densify(value)
        dense_cache[id(value)] = cached
    stats.note_fallback(label, kind_of(value))
    return cached


def _eval_matmul(node: MatMul, children: list, stats, dense_cache):
    left, right = children
    left_rep = is_representation(left)
    right_rep = is_representation(right)
    if left_rep and right_rep:
        # Gram pattern E.T @ E over one shared operand: the memoized DAG
        # hands us TransposedOperand(E) on the left and E itself on the
        # right, and every representation ships a native gram kernel.
        if (
            isinstance(left, TransposedOperand)
            and left.base is right
            and hasattr(right, "gram")
        ):
            stats.note_native(f"matmul[{kind_of(right)}]")
            return np.asarray(right.gram(), dtype=np.float64)
        right = _fallback_dense(right, "matmul", stats, dense_cache)
        right_rep = False
    if left_rep:
        stats.note_native(f"matmul[{kind_of(left)}]")
        out = left.matmat(np.asarray(right, dtype=np.float64))
        return out
    # dense @ rep: (A @ B) == (B.T @ A.T).T, which is B.rmatmat(A.T).T.
    stats.note_native(f"matmul[{kind_of(right)}]")
    return right.rmatmat(np.asarray(left, dtype=np.float64).T).T


def _eval_binary(node: Binary, children: list, stats, dense_cache):
    left, right = children
    label = f"binary:{node.op}"
    for rep, other, rep_is_left in (
        (left, right, True),
        (right, left, False),
    ):
        if not is_representation(rep):
            continue
        if is_representation(other):
            break  # rep-rep elementwise: fall back below
        scalar = _scalar_of(other)
        if scalar is not None:
            if rep_is_left:
                fn = lambda vals: apply_binary(node.op, vals, scalar)  # noqa: E731
            else:
                fn = lambda vals: apply_binary(node.op, scalar, vals)  # noqa: E731
            mapped = _map_rep(rep, fn, _is_zero_preserving(fn))
            if mapped is not None:
                stats.note_native(f"{label}[{kind_of(rep)}]")
                return mapped
        elif node.op == "*" and kind_of(rep) == "csr" and not isinstance(
            rep, TransposedOperand
        ):
            # Sparse * dense (incl. row/column broadcast) stays sparse.
            other_arr = np.broadcast_to(
                np.asarray(other, dtype=np.float64), rep.shape
            )
            stats.note_native(f"{label}[csr]")
            return rep.multiply_dense(np.ascontiguousarray(other_arr))
        break
    left = _fallback_dense(left, label, stats, dense_cache)
    right = _fallback_dense(right, label, stats, dense_cache)
    return apply_binary(node.op, left, right)


def _eval_unary(node: Unary, children: list, stats, dense_cache):
    (x,) = children
    label = f"unary:{node.op}"
    fn = lambda vals: apply_unary(node.op, vals)  # noqa: E731
    mapped = _map_rep(x, fn, _is_zero_preserving(fn))
    if mapped is not None:
        stats.note_native(f"{label}[{kind_of(x)}]")
        return mapped
    return apply_unary(node.op, _fallback_dense(x, label, stats, dense_cache))


def _eval_aggregate(node: Aggregate, children: list, stats, dense_cache):
    (x,) = children
    label = f"agg:{node.op}"
    if node.op in ("sum", "mean"):
        stats.note_native(f"{label}[{kind_of(x)}]")
        if node.axis is None:
            total = x.sum()
            cells = x.shape[0] * x.shape[1]
            return np.array([[total / cells if node.op == "mean" else total]])
        if node.axis == 0:
            out = np.asarray(x.colsums(), dtype=np.float64).reshape(1, -1)
            return out / x.shape[0] if node.op == "mean" else out
        out = np.asarray(x.rowsums(), dtype=np.float64).reshape(-1, 1)
        return out / x.shape[1] if node.op == "mean" else out
    # min/max/trace need every cell in position: densify once.
    dense = _fallback_dense(x, label, stats, dense_cache)
    return apply_aggregate(node.op, dense, node.axis)


def _eval_fused(node: Fused, children: list, stats, dense_cache):
    label = f"fused:{node.kind}"
    if node.kind == "tsmm":
        (x,) = children
        if not isinstance(x, TransposedOperand) and hasattr(x, "gram"):
            stats.note_native(f"{label}[{kind_of(x)}]")
            return np.asarray(x.gram(), dtype=np.float64)
    elif node.kind == "mvchain":
        x, v = children
        if is_representation(x) and not is_representation(v):
            stats.note_native(f"{label}[{kind_of(x)}]")
            v = np.asarray(v, dtype=np.float64)
            return x.rmatmat(x.matmat(v))
    elif node.kind == "sq_sum":
        (x,) = children
        stats.note_native(f"{label}[{kind_of(x)}]")
        return np.array([[x.sq_sum()]])
    elif node.kind == "dot_sum":
        x, y = children
        for rep, other in ((x, y), (y, x)):
            if (
                kind_of(rep) == "csr"
                and not isinstance(rep, TransposedOperand)
                and not is_representation(other)
                and np.asarray(other).shape == rep.shape
            ):
                stats.note_native(f"{label}[csr]")
                product = rep.multiply_dense(
                    np.asarray(other, dtype=np.float64)
                )
                return np.array([[product.sum()]])
    dense_children = [
        _fallback_dense(c, label, stats, dense_cache) for c in children
    ]
    return apply_fused(node.kind, dense_children)

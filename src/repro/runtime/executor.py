"""Plan interpreter.

Evaluates a compiled DAG, memoizing on node identity so CSE-shared
subexpressions run once. Collects :class:`ExecutionStats` (per-op
counts, FLOP estimate, intermediate-byte high-water mark) that the
benchmark suite uses to attribute optimizer wins.

Bindings may be dense numpy arrays or any of the storage
representations — :class:`~repro.compression.CompressedMatrix` (CLA),
:class:`~repro.sparse.CSRMatrix`, or
:class:`~repro.factorized.NormalizedMatrix`. Non-dense operands are
dispatched to their native kernels via :mod:`repro.runtime.repops`;
operators a representation cannot serve densify it once per execution
and record the fallback in :attr:`ExecutionStats.densify_fallbacks`.
Passing ``representation="dense"`` densifies every binding up front and
ignores Convert targets, reproducing the dense-only interpreter exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..compiler import feedback as _feedback
from ..compiler.cost import node_flops, node_output_bytes
from ..materialize import reuse as _reuse
from ..materialize import store as _matstore
from ..compiler.planner import CompiledPlan, compile_expr
from ..errors import ExecutionError
from ..obs import get_registry, span, tracing_enabled
from ..lang.ast import (
    Aggregate,
    Binary,
    Constant,
    Convert,
    Data,
    Fused,
    MatMul,
    Node,
    Transpose,
    Unary,
)
from ..lang.dsl import MExpr
from . import repops
from .ops import apply_aggregate, apply_binary, apply_fused, apply_unary
from .parallel import ParallelContext, resolve_context


@dataclass
class ExecutionStats:
    """What one plan execution actually did."""

    op_counts: dict[str, int] = field(default_factory=dict)
    flops: int = 0
    intermediate_bytes: int = 0
    #: modeled flops per op label — the feedback store's attribution key
    op_flops: dict[str, float] = field(default_factory=dict)
    #: ops served by a representation's native kernel, e.g. "matmul[cla]"
    native_repr_ops: dict[str, int] = field(default_factory=dict)
    #: ops that had to densify a non-dense operand, keyed by op label
    densify_fallbacks: dict[str, int] = field(default_factory=dict)
    #: densify fallbacks tallied by the operand's representation kind
    fallback_kinds: dict[str, int] = field(default_factory=dict)
    #: representation conversions performed by Convert nodes, e.g. "dense->cla"
    converts: dict[str, int] = field(default_factory=dict)
    #: sub-plans served from the materialization store, keyed by op label
    reuse_hits: dict[str, int] = field(default_factory=dict)
    #: bytes of intermediate results the store supplied instead of compute
    reuse_bytes: int = 0

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())

    @property
    def fallback_count(self) -> int:
        return sum(self.densify_fallbacks.values())

    @property
    def reuse_count(self) -> int:
        return sum(self.reuse_hits.values())

    def record(
        self, label: str, node: Node, result_bytes: int | None = None
    ) -> None:
        self.op_counts[label] = self.op_counts.get(label, 0) + 1
        flops = node_flops(node)
        self.flops += flops
        self.op_flops[label] = self.op_flops.get(label, 0.0) + flops
        self.intermediate_bytes += (
            node_output_bytes(node) if result_bytes is None else result_bytes
        )

    def note_native(self, label: str) -> None:
        self.native_repr_ops[label] = self.native_repr_ops.get(label, 0) + 1

    def note_fallback(self, label: str, kind: str | None = None) -> None:
        self.densify_fallbacks[label] = (
            self.densify_fallbacks.get(label, 0) + 1
        )
        if kind is not None:
            self.fallback_kinds[kind] = self.fallback_kinds.get(kind, 0) + 1

    def note_convert(self, desc: str, nbytes: int) -> None:
        self.converts[desc] = self.converts.get(desc, 0) + 1
        self.intermediate_bytes += nbytes

    def note_reuse(self, label: str, nbytes: int) -> None:
        self.reuse_hits[label] = self.reuse_hits.get(label, 0) + 1
        self.reuse_bytes += nbytes


def execute(
    plan: CompiledPlan | MExpr | Node,
    bindings: dict[str, object] | None = None,
    collect_stats: bool = False,
    representation: str | None = None,
    parallel: bool | ParallelContext | None = None,
):
    """Run a plan (or compile-and-run a raw expression).

    Args:
        bindings: name -> operand for every Data input: a numpy array
            (vectors may be 1-D; they are reshaped to columns) or a
            CompressedMatrix / CSRMatrix / NormalizedMatrix, executed on
            its native kernels. Shapes must match declarations.
        collect_stats: also return :class:`ExecutionStats`.
        representation: ``None`` executes operands in their bound form;
            ``"dense"`` densifies every binding up front and disables
            Convert nodes — exactly the dense-only interpreter.
        parallel: optional :class:`ParallelContext` (or ``True`` for the
            shared default) attached for this call to bound operands
            whose kernels support cost-gated parallel dispatch.

    Returns:
        The result array (scalars as Python floats), or
        ``(result, stats)`` when ``collect_stats`` is set.
    """
    if representation not in (None, "dense"):
        raise ExecutionError(
            f"representation must be None or 'dense', got {representation!r}; "
            "use repro.compiler.plan_representations to target others"
        )
    if isinstance(plan, (MExpr, Node)):
        plan = compile_expr(plan)
    bindings = bindings or {}
    force_dense = representation == "dense"
    prepared = _prepare_bindings(plan, bindings, force_dense)

    ctx = resolve_context(parallel)
    attached = []
    if ctx is not None:
        for value in prepared.values():
            set_parallel = getattr(value, "set_parallel", None)
            if (
                set_parallel is not None
                and getattr(value, "parallel_context", None) is None
            ):
                set_parallel(ctx)
                attached.append(value)

    store = _feedback.active_store()
    started = time.perf_counter() if store is not None else 0.0
    # Sub-plan reuse is fingerprinted against the bound operands, so it
    # is skipped under force_dense (densified bindings would fingerprint
    # differently from their representation-bound originals anyway).
    mat_store = None if force_dense else _matstore.active_store()
    reuse = (
        _reuse.ReuseContext(plan, prepared, mat_store)
        if mat_store is not None
        else None
    )
    stats = ExecutionStats()
    memo: dict[int, object] = {}
    dense_cache: dict[int, np.ndarray] = {}
    exec_span = span(
        "executor.execute",
        root=_node_label(plan.root),
        inputs=len(plan.inputs),
        force_dense=force_dense,
    )
    try:
        with exec_span:
            try:
                result = _eval(
                    plan.root, prepared, memo, stats, dense_cache,
                    force_dense, reuse,
                )
            finally:
                for value in attached:
                    value.set_parallel(False)

            if repops.is_representation(result):
                stats.note_convert(
                    f"{repops.kind_of(result)}->dense(output)", 0
                )
                result = repops.densify(result)
            if plan.root.is_scalar:
                out = float(result[0, 0])
            else:
                out = result
    finally:
        _publish_execution(stats, exec_span)
        if store is not None:
            try:
                store.observe_execution(
                    prepared, stats, time.perf_counter() - started
                )
            except Exception:
                # Feedback is advisory: a broken store must never fail
                # the execution it was watching.
                get_registry().inc("feedback.observe_errors")
    if collect_stats:
        return out, stats
    return out


def _publish_execution(stats: ExecutionStats, exec_span) -> None:
    """Flush one execution's stats into the global metrics registry.

    ``ExecutionStats`` stays the per-run view callers already consume;
    the registry accumulates across runs so one report sees every layer.
    """
    registry = get_registry()
    registry.inc("executor.executions")
    registry.inc("executor.ops", stats.total_ops)
    registry.inc("executor.flops", stats.flops)
    registry.inc("executor.intermediate_bytes", stats.intermediate_bytes)
    registry.inc(
        "executor.native_repr_ops", sum(stats.native_repr_ops.values())
    )
    registry.inc("executor.densify_fallbacks", stats.fallback_count)
    registry.inc("executor.converts", sum(stats.converts.values()))
    if stats.reuse_count:
        registry.inc("executor.reuse_hits", stats.reuse_count)
        registry.inc("executor.reuse_bytes", stats.reuse_bytes)
        exec_span.set("reuse_hits", stats.reuse_count)
    exec_span.set("ops", stats.total_ops)
    exec_span.set("flops", stats.flops)
    exec_span.set("densify_fallbacks", stats.fallback_count)
    exec_span.set("native_repr_ops", sum(stats.native_repr_ops.values()))


def _prepare_bindings(
    plan: CompiledPlan, bindings: dict[str, object], force_dense: bool
) -> dict[str, object]:
    prepared = {}
    for name, shape in plan.inputs.items():
        if name not in bindings:
            raise ExecutionError(
                f"missing binding for input {name!r}; "
                f"required: {sorted(plan.inputs)}"
            )
        value = bindings[name]
        if repops.is_representation(value):
            if force_dense:
                value = repops.densify(value)
            elif tuple(value.shape) != shape:
                raise ExecutionError(
                    f"input {name!r} declared {shape} but bound "
                    f"{tuple(value.shape)}"
                )
            prepared[name] = value
            continue
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1, 1)
        elif arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape != shape:
            raise ExecutionError(
                f"input {name!r} declared {shape} but bound {arr.shape}"
            )
        prepared[name] = arr
    return prepared


def _eval(
    node: Node,
    bindings: dict[str, object],
    memo: dict[int, object],
    stats: ExecutionStats,
    dense_cache: dict[int, np.ndarray],
    force_dense: bool,
    reuse=None,
):
    cached = memo.get(id(node))
    if cached is not None:
        return cached

    if isinstance(node, Data):
        result = bindings[node.name]
    elif isinstance(node, Constant):
        result = node.value
    elif isinstance(node, Convert):
        child = _eval(
            node.child, bindings, memo, stats, dense_cache, force_dense, reuse
        )
        result = _eval_convert(node, child, stats, force_dense)
    else:
        if reuse is not None:
            hit = reuse.lookup(node)
            if hit is not None:
                stats.note_reuse(
                    _node_label(node), repops.operand_bytes(hit)
                )
                memo[id(node)] = hit
                return hit
        children = [
            _eval(c, bindings, memo, stats, dense_cache, force_dense, reuse)
            for c in node.children
        ]
        if tracing_enabled():
            with span(
                "executor.op",
                op=_node_label(node),
                shape=str(node.shape),
            ):
                result = _eval_physical(node, children, stats, dense_cache)
        else:
            result = _eval_physical(node, children, stats, dense_cache)
        if reuse is not None:
            reuse.offer(node, result, _node_label(node))

    memo[id(node)] = result
    return result


def _eval_physical(
    node: Node,
    children: list,
    stats: ExecutionStats,
    dense_cache: dict[int, np.ndarray],
):
    """Run one physical operator over already-evaluated children."""
    if any(repops.is_representation(c) for c in children):
        result = repops.eval_node(node, children, stats, dense_cache)
        if repops.is_representation(result):
            if tuple(result.shape) != node.shape:
                raise ExecutionError(
                    f"representation kernel produced shape "
                    f"{tuple(result.shape)} for node of shape {node.shape}"
                )
            stats.record(
                _node_label(node), node, repops.operand_bytes(result)
            )
        else:
            result = np.asarray(result, dtype=np.float64)
            if result.shape != node.shape:
                result = np.broadcast_to(result, node.shape).copy()
            stats.record(_node_label(node), node, result.nbytes)
        return result

    if isinstance(node, Binary):
        result = apply_binary(node.op, children[0], children[1])
        stats.record(f"binary:{node.op}", node)
    elif isinstance(node, Unary):
        result = apply_unary(node.op, children[0])
        stats.record(f"unary:{node.op}", node)
    elif isinstance(node, MatMul):
        result = children[0] @ children[1]
        stats.record("matmul", node)
    elif isinstance(node, Transpose):
        result = children[0].T
        stats.record("transpose", node)
    elif isinstance(node, Aggregate):
        result = apply_aggregate(node.op, children[0], node.axis)
        stats.record(f"agg:{node.op}", node)
    elif isinstance(node, Fused):
        result = apply_fused(node.kind, children)
        stats.record(f"fused:{node.kind}", node)
    else:
        raise ExecutionError(
            f"cannot execute node type {type(node).__name__}"
        )
    result = np.asarray(result, dtype=np.float64)
    if result.shape != node.shape:
        # Broadcasting of (1,1) scalars can shrink shapes; normalize.
        result = np.broadcast_to(result, node.shape).copy()
    return result


def _eval_convert(
    node: Convert, child, stats: ExecutionStats, force_dense: bool
):
    """Retarget an operand's physical representation (identity if done)."""
    if force_dense:
        return repops.densify(child)
    current = repops.kind_of(child)
    if current == node.target:
        return child
    converted = repops.convert_value(child, node.target)
    stats.note_convert(
        f"{current}->{node.target}", repops.operand_bytes(converted)
    )
    return converted


def _node_label(node: Node) -> str:
    if isinstance(node, Binary):
        return f"binary:{node.op}"
    if isinstance(node, Unary):
        return f"unary:{node.op}"
    if isinstance(node, MatMul):
        return "matmul"
    if isinstance(node, Transpose):
        return "transpose"
    if isinstance(node, Aggregate):
        return f"agg:{node.op}"
    if isinstance(node, Fused):
        return f"fused:{node.kind}"
    return type(node).__name__.lower()

"""Plan interpreter.

Evaluates a compiled DAG over numpy arrays, memoizing on node identity so
CSE-shared subexpressions run once. Collects :class:`ExecutionStats`
(per-op counts, FLOP estimate, intermediate-byte high-water mark) that the
benchmark suite uses to attribute optimizer wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler.cost import node_flops, node_output_bytes
from ..compiler.planner import CompiledPlan, compile_expr
from ..errors import ExecutionError
from ..lang.ast import (
    Aggregate,
    Binary,
    Constant,
    Data,
    Fused,
    MatMul,
    Node,
    Transpose,
    Unary,
)
from ..lang.dsl import MExpr
from .ops import apply_aggregate, apply_binary, apply_fused, apply_unary


@dataclass
class ExecutionStats:
    """What one plan execution actually did."""

    op_counts: dict[str, int] = field(default_factory=dict)
    flops: int = 0
    intermediate_bytes: int = 0

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())

    def record(self, label: str, node: Node) -> None:
        self.op_counts[label] = self.op_counts.get(label, 0) + 1
        self.flops += node_flops(node)
        self.intermediate_bytes += node_output_bytes(node)


def execute(
    plan: CompiledPlan | MExpr | Node,
    bindings: dict[str, np.ndarray] | None = None,
    collect_stats: bool = False,
):
    """Run a plan (or compile-and-run a raw expression).

    Args:
        bindings: name -> array for every Data input. Vectors may be 1-D;
            they are reshaped to columns. Shapes must match declarations.
        collect_stats: also return :class:`ExecutionStats`.

    Returns:
        The result array (scalars as Python floats), or
        ``(result, stats)`` when ``collect_stats`` is set.
    """
    if isinstance(plan, (MExpr, Node)):
        plan = compile_expr(plan)
    bindings = bindings or {}
    prepared = _prepare_bindings(plan, bindings)

    stats = ExecutionStats()
    memo: dict[int, np.ndarray] = {}
    result = _eval(plan.root, prepared, memo, stats)

    if plan.root.is_scalar:
        out = float(result[0, 0])
    else:
        out = result
    if collect_stats:
        return out, stats
    return out


def _prepare_bindings(
    plan: CompiledPlan, bindings: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    prepared = {}
    for name, shape in plan.inputs.items():
        if name not in bindings:
            raise ExecutionError(
                f"missing binding for input {name!r}; "
                f"required: {sorted(plan.inputs)}"
            )
        arr = np.asarray(bindings[name], dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1, 1)
        elif arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape != shape:
            raise ExecutionError(
                f"input {name!r} declared {shape} but bound {arr.shape}"
            )
        prepared[name] = arr
    return prepared


def _eval(
    node: Node,
    bindings: dict[str, np.ndarray],
    memo: dict[int, np.ndarray],
    stats: ExecutionStats,
) -> np.ndarray:
    cached = memo.get(id(node))
    if cached is not None:
        return cached

    if isinstance(node, Data):
        result = bindings[node.name]
    elif isinstance(node, Constant):
        result = node.value
    else:
        children = [_eval(c, bindings, memo, stats) for c in node.children]
        if isinstance(node, Binary):
            result = apply_binary(node.op, children[0], children[1])
            stats.record(f"binary:{node.op}", node)
        elif isinstance(node, Unary):
            result = apply_unary(node.op, children[0])
            stats.record(f"unary:{node.op}", node)
        elif isinstance(node, MatMul):
            result = children[0] @ children[1]
            stats.record("matmul", node)
        elif isinstance(node, Transpose):
            result = children[0].T
            stats.record("transpose", node)
        elif isinstance(node, Aggregate):
            result = apply_aggregate(node.op, children[0], node.axis)
            stats.record(f"agg:{node.op}", node)
        elif isinstance(node, Fused):
            result = apply_fused(node.kind, children)
            stats.record(f"fused:{node.kind}", node)
        else:
            raise ExecutionError(f"cannot execute node type {type(node).__name__}")
        result = np.asarray(result, dtype=np.float64)
        if result.shape != node.shape:
            # Broadcasting of (1,1) scalars can shrink shapes; normalize.
            result = np.broadcast_to(result, node.shape).copy()

    memo[id(node)] = result
    return result

"""Physical kernels for the plan interpreter.

Element-wise and aggregate dispatch plus the fused kernels the compiler's
fusion pass targets. Fused kernels are written to avoid materializing the
intermediate the unfused plan would create (``einsum`` contractions and
two-step matrix-vector products).
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError

_BINARY = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "^": np.power,
    "min": np.minimum,
    "max": np.maximum,
}


def apply_binary(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    fn = _BINARY.get(op)
    if fn is None:
        raise ExecutionError(f"unknown binary op {op!r}")
    if op == "^" and isinstance(right, np.ndarray) and right.size == 1:
        # np.power's array-exponent inner loop is SIMD-batch-dependent
        # (last-ulp differences between a 1-row and an n-row evaluation
        # of the same element); the scalar-exponent loop is not. Keep
        # elementwise plans bitwise batch-size-invariant — the parity
        # guarantee the feature store and serving scorer rely on.
        return fn(left, float(right.reshape(())))
    return fn(left, right)


def apply_unary(op: str, value: np.ndarray) -> np.ndarray:
    if op == "neg":
        return -value
    if op == "exp":
        return np.exp(value)
    if op == "log":
        return np.log(value)
    if op == "sqrt":
        return np.sqrt(value)
    if op == "abs":
        return np.abs(value)
    if op == "sign":
        return np.sign(value)
    if op == "round":
        return np.round(value)
    if op == "sigmoid":
        from ..ml.losses import sigmoid

        return sigmoid(value)
    raise ExecutionError(f"unknown unary op {op!r}")


def apply_aggregate(op: str, value: np.ndarray, axis: int | None) -> np.ndarray:
    if op == "trace":
        return np.array([[np.trace(value)]])
    fns = {"sum": np.sum, "mean": np.mean, "min": np.min, "max": np.max}
    fn = fns.get(op)
    if fn is None:
        raise ExecutionError(f"unknown aggregate {op!r}")
    if axis is None:
        return np.array([[fn(value)]])
    result = fn(value, axis=axis)
    return result.reshape(1, -1) if axis == 0 else result.reshape(-1, 1)


# ----------------------------------------------------------------------
# Fused kernels
# ----------------------------------------------------------------------
def fused_dot_sum(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """sum(X * Y) without materializing X * Y."""
    return np.array([[np.einsum("ij,ij->", x, y)]])


def fused_sq_sum(x: np.ndarray) -> np.ndarray:
    """sum(X ^ 2) without materializing X ^ 2."""
    return np.array([[np.einsum("ij,ij->", x, x)]])


def fused_diff_sq_sum(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """sum((X - Y) ^ 2) in one streaming pass over blocks of rows.

    Blocked so the transient difference is bounded regardless of input
    size (the point of the fused operator).
    """
    total = 0.0
    block = max(1, 65536 // max(x.shape[1], 1))
    for start in range(0, x.shape[0], block):
        d = x[start : start + block] - y[start : start + block]
        total += float(np.einsum("ij,ij->", d, d))
    return np.array([[total]])


def fused_tsmm(x: np.ndarray) -> np.ndarray:
    """t(X) %*% X without materializing t(X)."""
    return x.T @ x


def fused_mvchain(x: np.ndarray, v: np.ndarray) -> np.ndarray:
    """t(X) %*% (X %*% v) as two matrix-vector products."""
    return x.T @ (x @ v)


FUSED_KERNELS = {
    "dot_sum": fused_dot_sum,
    "sq_sum": fused_sq_sum,
    "diff_sq_sum": fused_diff_sq_sum,
    "tsmm": fused_tsmm,
    "mvchain": fused_mvchain,
}


def apply_fused(kind: str, inputs: list[np.ndarray]) -> np.ndarray:
    kernel = FUSED_KERNELS.get(kind)
    if kernel is None:
        raise ExecutionError(f"unknown fused kernel {kind!r}")
    return kernel(*inputs)

"""LRU buffer pool for matrix blocks.

Declarative ML systems keep block-partitioned matrices on a storage tier
and cache hot blocks in memory; iterative algorithms then hit the cache
on every epoch after the first. This module simulates that memory
hierarchy: a :class:`BlockStore` is the 'disk' (counting reads/writes) and
the :class:`BufferPool` is a byte-budgeted LRU cache over it with pinning.

Hits, misses, evictions, and store I/O are dual-written: the
per-instance counters (:class:`PoolStats`, the store's attributes) stay
per-run views, and the global :mod:`repro.obs` registry accumulates
``bufferpool.*`` / ``blockstore.*`` series for run reports.

Every block is stored with its CRC32. A read verifies the checksum and,
on mismatch (bit rot, or chaos-injected corruption at site
``"blockstore.read"``), repairs the block by *recomputing it from its
registered lineage* — the SystemML/Spark recovery model, where lost or
damaged intermediates are rebuilt from the plan rather than replicated.
Blocks with no lineage raise :class:`~repro.errors.CorruptedBlockError`.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..errors import CorruptedBlockError, ExecutionError
from ..obs import get_registry
from ..resilience.faults import fault_point, no_chaos


class BlockStore:
    """Backing storage for blocks, with I/O accounting.

    Blocks are stored as immutable bytes to model the
    serialize-on-write / deserialize-on-read cost of a real tier.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, tuple[bytes, tuple[int, int], int]] = {}
        self._lineage: dict[str, Callable[[], np.ndarray]] = {}
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.corruptions_detected = 0
        self.corruptions_repaired = 0

    def write(self, block_id: str, array: np.ndarray) -> None:
        data = np.ascontiguousarray(array, dtype=np.float64).tobytes()
        self._blocks[block_id] = (data, array.shape, zlib.crc32(data))
        self.writes += 1
        self.bytes_written += len(data)
        registry = get_registry()
        registry.inc("blockstore.writes")
        registry.inc("blockstore.bytes_written", len(data))

    def register_lineage(
        self, block_id: str, recompute: Callable[[], np.ndarray]
    ) -> None:
        """Attach a recompute function used to repair a corrupt block."""
        self._lineage[block_id] = recompute

    def corrupt(self, block_id: str) -> None:
        """Flip one byte of a stored block (test/chaos hook).

        The flipped position is derived from the block id, so injected
        corruption is deterministic.
        """
        if block_id not in self._blocks:
            raise ExecutionError(f"no block {block_id!r} in store")
        data, shape, crc = self._blocks[block_id]
        if not data:
            return
        pos = zlib.crc32(block_id.encode("utf-8")) % len(data)
        mutated = data[:pos] + bytes([data[pos] ^ 0xFF]) + data[pos + 1 :]
        self._blocks[block_id] = (mutated, shape, crc)

    def read(self, block_id: str) -> np.ndarray:
        if block_id not in self._blocks:
            raise ExecutionError(f"no block {block_id!r} in store")
        if fault_point("blockstore.read", key=block_id) == "corrupt":
            self.corrupt(block_id)
        data, shape, crc = self._blocks[block_id]
        if zlib.crc32(data) != crc:
            self._repair(block_id)
            data, shape, crc = self._blocks[block_id]
        self.reads += 1
        self.bytes_read += len(data)
        registry = get_registry()
        registry.inc("blockstore.reads")
        registry.inc("blockstore.bytes_read", len(data))
        return np.frombuffer(data, dtype=np.float64).reshape(shape).copy()

    def _repair(self, block_id: str) -> None:
        """Rebuild a corrupt block from lineage (or fail loudly)."""
        self.corruptions_detected += 1
        registry = get_registry()
        registry.inc("blockstore.corruptions_detected")
        recompute = self._lineage.get(block_id)
        if recompute is None:
            raise CorruptedBlockError(block_id)
        # Repair runs off the failed read path: chaos is masked so the
        # rewrite can't be re-corrupted forever at fault rate 1.0.
        with no_chaos():
            array = np.ascontiguousarray(recompute(), dtype=np.float64)
            self.write(block_id, array)
        self.corruptions_repaired += 1
        registry.inc("blockstore.corruptions_repaired")

    def __contains__(self, block_id: str) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)


@dataclass
class PoolStats:
    """Cumulative buffer-pool counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class BufferPool:
    """Byte-budgeted LRU cache of blocks over a :class:`BlockStore`.

    Besides read-through block caching (:meth:`get`/:meth:`put`), the
    pool can hold arbitrary sized objects whose ground truth lives
    elsewhere (:meth:`put_object`/:meth:`lookup`) — the materialization
    store charges its in-memory tier through this accounting, so one
    eviction discipline and one byte ledger govern both kinds of cache.
    ``store`` may be ``None`` for an object-only pool; only the
    read-through paths touch it.
    """

    def __init__(self, store: BlockStore | None, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ExecutionError("buffer pool capacity must be positive")
        self._store = store
        self._capacity = capacity_bytes
        self._cache: OrderedDict[str, object] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._pinned: set[str] = set()
        self._used = 0
        self.stats = PoolStats()

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def cached_blocks(self) -> list[str]:
        return list(self._cache)

    @property
    def pinned_blocks(self) -> list[str]:
        return sorted(self._pinned)

    def __contains__(self, block_id: str) -> bool:
        return block_id in self._cache

    def get(self, block_id: str) -> np.ndarray:
        """Fetch a block, serving from cache when possible."""
        if block_id in self._cache:
            self.stats.hits += 1
            get_registry().inc("bufferpool.hits")
            self._cache.move_to_end(block_id)
            return self._cache[block_id]
        self.stats.misses += 1
        get_registry().inc("bufferpool.misses")
        if self._store is None:
            raise ExecutionError(
                f"block {block_id!r} not cached and pool has no store"
            )
        array = self._store.read(block_id)
        self._admit(block_id, array, array.nbytes)
        return array

    def put(self, block_id: str, array: np.ndarray) -> None:
        """Write a block through the pool to the store."""
        array = np.asarray(array, dtype=np.float64)
        if self._store is not None:
            self._store.write(block_id, array)
        self._drop(block_id)
        self._admit(block_id, array, array.nbytes)

    def lookup(self, block_id: str):
        """Cached value or ``None`` — no read-through, hit/miss counted.

        The store's memory tier uses this: a miss here falls back to the
        caller's own slower tier (disk entry or lineage recompute), not
        to the pool's block store.
        """
        if block_id in self._cache:
            self.stats.hits += 1
            get_registry().inc("bufferpool.hits")
            self._cache.move_to_end(block_id)
            return self._cache[block_id]
        self.stats.misses += 1
        get_registry().inc("bufferpool.misses")
        return None

    def put_object(
        self,
        block_id: str,
        value: object,
        nbytes: int | None = None,
        pin: bool = False,
    ) -> bool:
        """Cache an arbitrary sized object without a store write.

        Returns whether the object is resident afterwards. ``pin=True``
        pins it on admit; admission may evict unpinned entries but a
        pinned working set larger than the pool simply leaves the object
        uncached (the caller's ground truth still holds it).
        """
        size = int(value.nbytes if nbytes is None else nbytes)
        if size < 0:
            raise ExecutionError(f"object size must be >= 0, got {size}")
        self._drop(block_id)
        self._admit(block_id, value, size)
        if block_id in self._cache and pin:
            self._pinned.add(block_id)
        return block_id in self._cache

    def pin(self, block_id: str) -> None:
        """Protect a cached block from eviction."""
        if block_id not in self._cache:
            raise ExecutionError(f"cannot pin uncached block {block_id!r}")
        self._pinned.add(block_id)

    def unpin(self, block_id: str) -> None:
        self._pinned.discard(block_id)

    def remove(self, block_id: str) -> bool:
        """Invalidate one entry (counted separately from evictions)."""
        if self._drop(block_id):
            self.stats.invalidations += 1
            get_registry().inc("bufferpool.invalidations")
            return True
        return False

    def _drop(self, block_id: str) -> bool:
        if block_id not in self._cache:
            return False
        self._used -= self._sizes.pop(block_id)
        del self._cache[block_id]
        self._pinned.discard(block_id)
        return True

    def _admit(self, block_id: str, value: object, size: int) -> None:
        if size > self._capacity:
            # Entry exceeds the whole pool: pass through uncached.
            return
        while self._used + size > self._capacity:
            if not self._evict_one():
                return  # everything left is pinned; serve uncached
        self._cache[block_id] = value
        self._sizes[block_id] = size
        self._used += size

    def _evict_one(self) -> bool:
        for victim in self._cache:
            if victim not in self._pinned:
                self._used -= self._sizes.pop(victim)
                del self._cache[victim]
                self.stats.evictions += 1
                get_registry().inc("bufferpool.evictions")
                return True
        return False

"""Block-partitioned matrices over the buffer pool.

A :class:`BlockedMatrix` is split into row-panel blocks held in a
:class:`~repro.runtime.bufferpool.BlockStore` and accessed through a
:class:`~repro.runtime.bufferpool.BufferPool`. Iterative algorithms that
stream the matrix once per epoch (exactly the access pattern of GLM
training) hit the pool's cache when it is large enough and thrash when it
is not — the behaviour experiment E9 measures.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from .bufferpool import BlockStore, BufferPool


class BlockedMatrix:
    """A dense matrix stored as horizontal row panels in a block store."""

    def __init__(
        self,
        store: BlockStore,
        name: str,
        shape: tuple[int, int],
        block_rows: int,
    ):
        self._store = store
        self.name = name
        self.shape = shape
        self.block_rows = block_rows
        self.num_blocks = -(-shape[0] // block_rows)  # ceil division

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        store: BlockStore,
        name: str,
        block_rows: int = 256,
    ) -> "BlockedMatrix":
        """Partition ``array`` into row panels and write them to the store."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ExecutionError(f"expected a 2-D array, got {array.ndim}-D")
        if block_rows < 1:
            raise ExecutionError("block_rows must be >= 1")
        blocked = cls(store, name, array.shape, block_rows)
        for b in range(blocked.num_blocks):
            start = b * block_rows
            panel = array[start : start + block_rows]
            block_id = blocked.block_id(b)
            store.write(block_id, panel)
            # Lineage: this panel is a pure slice of the source array, so
            # a corrupted copy in the store can always be recomputed.
            store.register_lineage(block_id, lambda panel=panel: panel)
        return blocked

    def block_id(self, index: int) -> str:
        return f"{self.name}/{index}"

    def block_rows_of(self, index: int) -> tuple[int, int]:
        """(start_row, end_row) covered by a block."""
        start = index * self.block_rows
        return start, min(start + self.block_rows, self.shape[0])

    def get_block(self, index: int, pool: BufferPool) -> np.ndarray:
        if not 0 <= index < self.num_blocks:
            raise ExecutionError(
                f"block index {index} out of range [0, {self.num_blocks})"
            )
        return pool.get(self.block_id(index))

    def to_array(self, pool: BufferPool) -> np.ndarray:
        """Reassemble the full matrix (through the pool)."""
        return np.vstack(
            [self.get_block(b, pool) for b in range(self.num_blocks)]
        )

    # ------------------------------------------------------------------
    # Blocked kernels (the access patterns iterative ML generates)
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray, pool: BufferPool) -> np.ndarray:
        """X @ v, streaming blocks through the pool."""
        v = np.asarray(v, dtype=np.float64).reshape(-1)
        if len(v) != self.shape[1]:
            raise ExecutionError(
                f"vector length {len(v)} != matrix cols {self.shape[1]}"
            )
        parts = [
            self.get_block(b, pool) @ v for b in range(self.num_blocks)
        ]
        return np.concatenate(parts)

    def rmatvec(self, u: np.ndarray, pool: BufferPool) -> np.ndarray:
        """X.T @ u, streaming blocks through the pool."""
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if len(u) != self.shape[0]:
            raise ExecutionError(
                f"vector length {len(u)} != matrix rows {self.shape[0]}"
            )
        out = np.zeros(self.shape[1])
        for b in range(self.num_blocks):
            start, end = self.block_rows_of(b)
            out += self.get_block(b, pool).T @ u[start:end]
        return out

    def gram(self, pool: BufferPool) -> np.ndarray:
        """X.T @ X accumulated block-by-block."""
        out = np.zeros((self.shape[1], self.shape[1]))
        for b in range(self.num_blocks):
            block = self.get_block(b, pool)
            out += block.T @ block
        return out

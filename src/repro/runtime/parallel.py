"""Cost-aware shared parallel execution engine.

The systems the tutorial surveys all exploit intra-query parallelism:
Bismarck's UDA contract exists so an RDBMS can run ``transition`` over
shared-nothing partitions and combine partials with ``merge``; SystemML's
runtime executes block operations with multi-threaded workers; model
selection is embarrassingly parallel across configurations. This module
provides the one engine all of those layers share:

* :class:`ParallelContext` — a reusable worker pool (threads by default,
  since numpy releases the GIL inside its kernels; an optional process
  backend for pure-Python per-row work) behind a **cost-model gate**:
  :meth:`ParallelContext.pmap` runs serially below a tunable
  flops-equivalent threshold so tiny inputs never pay pool overhead, and
  fans out above it.
* :func:`merge_tree` — deterministic pairwise (log-depth) reduction, the
  combine shape a partitioned engine uses for ``merge``.
* A per-call ledger (:class:`ParallelStats`): tasks dispatched, serial
  fallbacks, wall time versus the summed per-task time (the estimated
  serial time), surfaced through :func:`parallel_stats`.

Configuration
-------------
``REPRO_NUM_THREADS``
    default worker count for new contexts (else ``os.cpu_count()``).
``REPRO_PARALLEL_THRESHOLD``
    default cost gate in flops-equivalents (default ``250_000``).

Determinism contract: ``pmap`` preserves item order and ``merge_tree``
uses a fixed association, so a parallel run produces the same reduction
shape — and therefore the same result for associative merges — as the
serial path.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..compiler import feedback as _feedback
from ..errors import ParallelTaskError, ReproError
from ..obs import get_registry, span
from ..resilience.faults import fault_point
from ..resilience.retry import RetryPolicy

T = TypeVar("T")
R = TypeVar("R")

#: flops-equivalent cost of one Python-level per-row call (used by call
#: sites whose work is a Python loop rather than a numpy kernel).
PYTHON_CALL_FLOPS = 200.0

#: default cost gate: below this many flops-equivalents, dispatch serially.
DEFAULT_COST_THRESHOLD = 250_000.0

#: thread-name prefix marking pool workers (the re-entrancy guard).
_WORKER_PREFIX = "repro-parallel"


def _env_positive_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ReproError(f"{name} must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ReproError(f"{name} must be >= 1, got {value}")
    return value


def default_num_threads() -> int:
    """Worker count: ``REPRO_NUM_THREADS`` if set, else ``os.cpu_count()``."""
    return _env_positive_int("REPRO_NUM_THREADS") or (os.cpu_count() or 1)


def default_cost_threshold() -> float:
    raw = os.environ.get("REPRO_PARALLEL_THRESHOLD", "").strip()
    if not raw:
        return DEFAULT_COST_THRESHOLD
    try:
        value = float(raw)
    except ValueError as exc:
        raise ReproError(
            f"REPRO_PARALLEL_THRESHOLD must be a number, got {raw!r}"
        ) from exc
    if value < 0:
        raise ReproError(f"REPRO_PARALLEL_THRESHOLD must be >= 0, got {value}")
    return value


@dataclass
class CallRecord:
    """Ledger entry for one ``pmap`` call."""

    site: str
    tasks: int
    parallel: bool
    wall_time: float
    task_time: float  # summed per-task time == estimated serial time

    @property
    def estimated_speedup(self) -> float:
        if not self.parallel or self.wall_time <= 0:
            return 1.0
        return self.task_time / self.wall_time


@dataclass
class SiteStats:
    """Aggregated ledger for one call site."""

    calls: int = 0
    parallel_calls: int = 0
    serial_fallbacks: int = 0
    tasks_dispatched: int = 0
    wall_time: float = 0.0
    task_time: float = 0.0
    #: wall/summed-task time of *parallel* dispatches only, so the
    #: realized speedup is not diluted by serial calls.
    parallel_wall_time: float = 0.0
    parallel_task_time: float = 0.0

    @property
    def realized_speedup(self) -> float:
        """Summed task time over wall time across this site's fan-outs."""
        if self.parallel_wall_time <= 0:
            return 1.0
        return self.parallel_task_time / self.parallel_wall_time


@dataclass
class ParallelStats:
    """Cumulative dispatch ledger for one :class:`ParallelContext`."""

    calls: int = 0
    parallel_calls: int = 0
    serial_fallbacks: int = 0
    tasks_dispatched: int = 0
    wall_time: float = 0.0
    task_time: float = 0.0
    #: resilience ledger: raw task failures observed, retry re-executions,
    #: timed-out tasks re-run as backups, and tasks that ultimately
    #: succeeded only because of a recovery action.
    task_failures: int = 0
    retries: int = 0
    stragglers: int = 0
    recovered_tasks: int = 0
    by_site: dict[str, SiteStats] = field(default_factory=dict)
    #: detailed per-call records for *parallel* dispatches; serial
    #: fallbacks update only the counters to keep the gated path cheap.
    records: list[CallRecord] = field(default_factory=list)
    record_limit: int = 256

    def observe(
        self, site: str, tasks: int, parallel: bool, wall: float, work: float
    ) -> None:
        self.calls += 1
        self.tasks_dispatched += tasks
        self.wall_time += wall
        self.task_time += work
        site_stats = self.by_site.setdefault(site, SiteStats())
        site_stats.calls += 1
        site_stats.tasks_dispatched += tasks
        site_stats.wall_time += wall
        site_stats.task_time += work
        if not parallel:
            self.serial_fallbacks += 1
            site_stats.serial_fallbacks += 1
            return
        self.parallel_calls += 1
        site_stats.parallel_calls += 1
        site_stats.parallel_wall_time += wall
        site_stats.parallel_task_time += work
        self.records.append(
            CallRecord(
                site=site,
                tasks=tasks,
                parallel=True,
                wall_time=wall,
                task_time=work,
            )
        )
        if len(self.records) > self.record_limit:
            del self.records[: len(self.records) - self.record_limit]

    @property
    def estimated_speedup(self) -> float:
        """Summed task time over wall time across parallel calls."""
        wall = sum(r.wall_time for r in self.records if r.parallel)
        work = sum(r.task_time for r in self.records if r.parallel)
        if wall <= 0:
            return 1.0
        return work / wall

    def as_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "parallel_calls": self.parallel_calls,
            "serial_fallbacks": self.serial_fallbacks,
            "tasks_dispatched": self.tasks_dispatched,
            "wall_time": self.wall_time,
            "task_time": self.task_time,
            "task_failures": self.task_failures,
            "retries": self.retries,
            "stragglers": self.stragglers,
            "recovered_tasks": self.recovered_tasks,
            "estimated_speedup": self.estimated_speedup,
            "by_site": {
                name: {
                    "calls": s.calls,
                    "parallel_calls": s.parallel_calls,
                    "serial_fallbacks": s.serial_fallbacks,
                    "tasks_dispatched": s.tasks_dispatched,
                    "wall_time": s.wall_time,
                    "task_time": s.task_time,
                    "realized_speedup": s.realized_speedup,
                    "decisions": {
                        "parallel": s.parallel_calls,
                        "serial": s.serial_fallbacks,
                    },
                }
                for name, s in self.by_site.items()
            },
        }


def _timed_call(fn: Callable[[T], R], item: T) -> tuple[float, R]:
    """Run one task and report its duration (module-level: picklable)."""
    start = time.perf_counter()
    result = fn(item)
    return time.perf_counter() - start, result


def _guarded_task(
    fn: Callable[[T], R], fault_site: str, index: int, item: T
) -> R:
    """One task execution behind its fault-injection site.

    Module-level so the process backend can pickle it. The fault point
    is keyed by task index, so an installed :class:`ChaosContext`
    decides each task's fate deterministically regardless of thread
    scheduling.
    """
    fault_point(fault_site, key=index)
    return fn(item)


def _in_worker_thread() -> bool:
    return threading.current_thread().name.startswith(_WORKER_PREFIX)


class ParallelContext:
    """A reusable worker pool with cost-model-gated dispatch.

    Args:
        max_workers: pool size; defaults to ``REPRO_NUM_THREADS`` or the
            machine's CPU count. With one worker every call runs serially
            (and counts as a fallback).
        cost_threshold: flops-equivalent gate; ``pmap`` calls whose
            ``cost_hint`` falls below it run serially. ``0`` disables the
            gate (everything eligible fans out).
        backend: ``"thread"`` (default; numpy kernels release the GIL),
            ``"process"`` (for pure-Python per-row work; functions and
            items must be picklable), or ``"serial"`` (never fan out —
            useful for A/B measurement).
        retry_policy: default :class:`~repro.resilience.RetryPolicy`
            applied to every ``pmap`` call (a per-call ``retry=``
            overrides it). ``None`` disables retries: a failed task
            raises :class:`~repro.errors.ParallelTaskError` immediately.
        task_timeout: default per-task gather timeout in seconds; a task
            that has not produced its result within the bound is
            abandoned as a straggler and re-executed on the caller
            (speculative backup, MapReduce-style). ``None`` waits
            forever.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cost_threshold: float | None = None,
        backend: str = "thread",
        retry_policy: RetryPolicy | None = None,
        task_timeout: float | None = None,
    ):
        if backend not in ("thread", "process", "serial"):
            raise ReproError(
                f"backend must be 'thread', 'process', or 'serial', "
                f"got {backend!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = (
            max_workers if max_workers is not None else default_num_threads()
        )
        self.cost_threshold = (
            cost_threshold
            if cost_threshold is not None
            else default_cost_threshold()
        )
        if task_timeout is not None and task_timeout <= 0:
            raise ReproError(f"task_timeout must be > 0, got {task_timeout}")
        self.backend = backend
        self.retry_policy = retry_policy
        self.task_timeout = task_timeout
        self.stats = ParallelStats()
        self._executor: Executor | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _pool(self) -> Executor:
        with self._lock:
            if self._executor is None:
                if self.backend == "process":
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.max_workers
                    )
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix=_WORKER_PREFIX,
                    )
            return self._executor

    def shutdown(self) -> None:
        """Tear down the pool. Idempotent and safe under concurrency.

        The executor is detached under the lock but drained *outside*
        it: a pooled task that re-enters this context (nested-serial
        pmap records into ``stats`` under the same lock) can then finish
        while we wait, so a concurrent shutdown can no longer deadlock,
        and a second shutdown finds ``None`` and returns immediately. A
        ``pmap`` racing with shutdown either got the old executor (its
        submits fail with ``RuntimeError`` and it recovers serially) or
        lazily builds a fresh pool afterwards.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def should_parallelize(
        self, num_tasks: int, cost_hint: float | None, site: str | None = None
    ) -> bool:
        """The cost-model gate, exposed for planners and tests.

        With an active feedback store and a ``site``, the static FLOP
        threshold yields to the site's learned policy: a site whose
        measured speedup fell below 1 dispatches serially, and a
        winning site's threshold is divided by its measured speedup.
        Without feedback (the default) the behavior is exactly the
        static gate.
        """
        if self.backend == "serial" or self.max_workers < 2 or num_tasks < 2:
            return False
        if _in_worker_thread():
            # Re-entrant pmap from inside a pool task: running it on the
            # same bounded pool could deadlock, so nest serially.
            return False
        threshold = self.cost_threshold
        if site is not None:
            store = _feedback.active_store()
            if store is not None:
                policy = store.site_policy(site)
                if policy is not None:
                    if policy.action == "serial":
                        get_registry().inc("parallel.feedback_serial")
                        return False
                    if policy.action == "boost":
                        get_registry().inc("parallel.feedback_boosts")
                        threshold = self.cost_threshold / max(
                            policy.speedup, 1e-9
                        )
        if cost_hint is not None and cost_hint < threshold:
            return False
        return True

    def pmap(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        cost_hint: float | None = None,
        site: str = "pmap",
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
    ) -> list[R]:
        """Order-preserving map with cost-gated fan-out and recovery.

        Every task runs behind the fault site ``parallel.task.<site>``
        (keyed by task index), so an installed chaos context can fail,
        corrupt, or slow it deterministically. A failed task is retried
        under the effective :class:`RetryPolicy` — re-submission first,
        then a final serial re-execution on the caller as last resort —
        and a task that exceeds the timeout is abandoned and re-executed
        serially (straggler backup). A task whose failure survives every
        recovery attempt raises :class:`~repro.errors.ParallelTaskError`
        carrying the site, task index, and attempt count, with the
        original exception as ``__cause__``.

        Args:
            cost_hint: estimated total flops-equivalents for the whole
                call; below the context threshold the map runs serially
                (recorded as a serial fallback). ``None`` means "assume
                expensive" and bypasses the gate.
            site: label for the per-call ledger.
            retry: per-call policy override (default: the context's).
            timeout: per-call timeout override (default: the context's).
        """
        tasks = list(items)
        policy = retry if retry is not None else self.retry_policy
        task_timeout = timeout if timeout is not None else self.task_timeout
        fan_out = self.should_parallelize(len(tasks), cost_hint, site=site)
        fault_site = f"parallel.task.{site}"
        with span(
            "parallel.pmap",
            site=site,
            tasks=len(tasks),
            parallel=fan_out,
            workers=self.max_workers,
        ):
            start = time.perf_counter()
            if not fan_out:
                results = [
                    self._run_serial_task(fn, item, i, site, fault_site, policy)
                    for i, item in enumerate(tasks)
                ]
                wall = time.perf_counter() - start
                self._record(site, len(tasks), False, wall, wall)
                return results

            pool = self._pool()
            try:
                futures = [
                    pool.submit(
                        _timed_call,
                        partial(_guarded_task, fn, fault_site, i),
                        item,
                    )
                    for i, item in enumerate(tasks)
                ]
            except RuntimeError:
                # The pool was shut down between _pool() and submit (a
                # concurrent shutdown): recover by running serially.
                self._count("recovered_tasks", len(tasks))
                get_registry().inc("parallel.pool_lost_recoveries")
                results = [
                    self._run_serial_task(fn, item, i, site, fault_site, policy)
                    for i, item in enumerate(tasks)
                ]
                wall = time.perf_counter() - start
                self._record(site, len(tasks), False, wall, wall)
                return results

            results = []
            task_time = 0.0
            for i, future in enumerate(futures):
                try:
                    dt, value = future.result(timeout=task_timeout)
                except FutureTimeoutError:
                    # Straggler: abandon the slow execution (its result,
                    # if it ever arrives, is discarded) and run a backup
                    # copy here — deterministic fns make this exact.
                    self._count("stragglers")
                    get_registry().inc("parallel.stragglers")
                    backup_start = time.perf_counter()
                    value = self._recover_task(
                        fn, tasks[i], i, site, fault_site, policy, cause=None
                    )
                    dt = time.perf_counter() - backup_start
                except Exception as exc:
                    self._count("task_failures")
                    get_registry().inc("parallel.task_failures")
                    backup_start = time.perf_counter()
                    value = self._recover_task(
                        fn, tasks[i], i, site, fault_site, policy, cause=exc
                    )
                    dt = time.perf_counter() - backup_start
                results.append(value)
                task_time += dt
            wall = time.perf_counter() - start
            self._record(site, len(tasks), True, wall, task_time)
            return results

    # ------------------------------------------------------------------
    # Recovery paths
    # ------------------------------------------------------------------
    def _run_serial_task(
        self,
        fn: Callable[[T], R],
        item: T,
        index: int,
        site: str,
        fault_site: str,
        policy: RetryPolicy | None,
    ) -> R:
        """One task on the caller thread, with retry and error wrapping."""
        attempts = policy.max_attempts if policy is not None else 1
        last: Exception | None = None
        for attempt in range(1, attempts + 1):
            try:
                value = _guarded_task(fn, fault_site, index, item)
                if attempt > 1:
                    self._count("recovered_tasks")
                    get_registry().inc("parallel.recovered_tasks")
                return value
            except Exception as exc:
                last = exc
                self._count("task_failures")
                get_registry().inc("parallel.task_failures")
                if (
                    policy is None
                    or not policy.is_retryable(exc)
                    or attempt == attempts
                ):
                    break
                self._count("retries")
                get_registry().inc("parallel.retries")
                policy.sleep(policy.delay(attempt, site, index))
        assert last is not None
        raise ParallelTaskError(site, index, attempts) from last

    def _recover_task(
        self,
        fn: Callable[[T], R],
        item: T,
        index: int,
        site: str,
        fault_site: str,
        policy: RetryPolicy | None,
        cause: Exception | None,
    ) -> R:
        """Re-execute a failed or timed-out pooled task on the caller.

        ``cause=None`` marks a straggler backup: the original execution
        never failed, it was abandoned, so the backup runs as attempt 1
        with the full budget behind it. A real failure consumed attempt
        1 already and is only retried when the policy calls it
        transient.
        """
        if cause is None:
            try:
                value = _guarded_task(fn, fault_site, index, item)
            except Exception as exc:
                self._count("task_failures")
                get_registry().inc("parallel.task_failures")
                return self._retry_loop(
                    fn, item, index, site, fault_site, policy, exc
                )
            self._count("recovered_tasks")
            get_registry().inc("parallel.recovered_tasks")
            return value
        return self._retry_loop(
            fn, item, index, site, fault_site, policy, cause
        )

    def _retry_loop(
        self,
        fn: Callable[[T], R],
        item: T,
        index: int,
        site: str,
        fault_site: str,
        policy: RetryPolicy | None,
        cause: Exception,
    ) -> R:
        """Attempts 2..max after a real failure (attempt 1 == cause)."""
        if policy is None or not policy.is_retryable(cause):
            raise ParallelTaskError(site, index, 1) from cause
        last: Exception = cause
        for attempt in range(2, policy.max_attempts + 1):
            self._count("retries")
            get_registry().inc("parallel.retries")
            policy.sleep(policy.delay(attempt - 1, site, index))
            try:
                value = _guarded_task(fn, fault_site, index, item)
            except Exception as exc:
                last = exc
                if not policy.is_retryable(exc):
                    break
                continue
            self._count("recovered_tasks")
            get_registry().inc("parallel.recovered_tasks")
            return value
        raise ParallelTaskError(site, index, policy.max_attempts) from last

    def _count(self, field_name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(
                self.stats,
                field_name,
                getattr(self.stats, field_name) + amount,
            )

    def note_serial(self, site: str, tasks: int, wall_time: float) -> None:
        """Record a serial fallback executed outside ``pmap``.

        Call sites whose serial kernel has a different (cheaper) shape
        than the per-task parallel formulation run it directly after
        consulting :meth:`should_parallelize`, and log the decision here
        so the ledger still reflects every dispatch.
        """
        self._record(site, tasks, False, wall_time, wall_time)

    def _record(
        self, site: str, tasks: int, parallel: bool, wall: float, work: float
    ) -> None:
        with self._lock:
            self.stats.observe(site, tasks, parallel, wall, work)
        # Dual-write into the global registry: per-context ParallelStats
        # stays the per-pool ledger, the registry is what reports read.
        registry = get_registry()
        registry.inc("parallel.calls")
        registry.inc("parallel.tasks_dispatched", tasks)
        registry.inc(f"parallel.sites.{site}.calls")
        if parallel:
            registry.inc("parallel.parallel_calls")
            registry.observe("parallel.wall_time_s", wall)
            registry.observe("parallel.task_time_s", work)
            if wall > 0:
                registry.observe("parallel.utilization", work / wall)
        else:
            registry.inc("parallel.serial_fallbacks")
        store = _feedback.active_store()
        if store is not None:
            try:
                store.observe_site(site, tasks, parallel, wall, work)
            except Exception:
                registry.inc("feedback.observe_errors")


# ----------------------------------------------------------------------
# Deterministic reductions
# ----------------------------------------------------------------------
def merge_tree(merge: Callable[[T, T], T], items: Sequence[T]) -> T:
    """Pairwise log-depth reduction with a fixed association.

    ``merge_tree(m, [a, b, c, d])`` computes ``m(m(a, b), m(c, d))`` —
    the combine shape of a partitioned engine. Requires an associative
    ``merge``; item order is never permuted, so non-commutative merges
    are safe too.
    """
    level = list(items)
    if not level:
        raise ReproError("merge_tree needs at least one item")
    leaves = len(level)
    depth = 0
    while len(level) > 1:
        paired = [
            merge(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
        depth += 1
    registry = get_registry()
    registry.inc("parallel.merge_tree.calls")
    registry.inc("parallel.merge_tree.leaves", leaves)
    registry.observe("parallel.merge_tree.depth", depth)
    return level[0]


# ----------------------------------------------------------------------
# Shared default context
# ----------------------------------------------------------------------
_default_context: ParallelContext | None = None
_default_lock = threading.Lock()


def get_default_context() -> ParallelContext:
    """The process-wide shared pool (created lazily)."""
    global _default_context
    with _default_lock:
        if _default_context is None:
            _default_context = ParallelContext()
        return _default_context


def set_default_context(context: ParallelContext | None) -> None:
    """Replace the shared pool (``None`` resets to lazy re-creation)."""
    global _default_context
    with _default_lock:
        old, _default_context = _default_context, context
    if old is not None and old is not context:
        old.shutdown()


def resolve_context(
    parallel: "bool | ParallelContext | None",
    context: ParallelContext | None = None,
) -> ParallelContext | None:
    """Normalize the ``parallel=`` argument call sites accept.

    ``False``/``None`` -> no context (serial); ``True`` -> the shared
    default context; a :class:`ParallelContext` -> itself. An explicit
    ``context`` wins over ``parallel=True``.
    """
    if isinstance(parallel, ParallelContext):
        return parallel
    if context is not None:
        return context
    if parallel:
        return get_default_context()
    return None


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    cost_hint: float | None = None,
    site: str = "pmap",
) -> list[R]:
    """``pmap`` on the shared default context."""
    return get_default_context().pmap(fn, items, cost_hint=cost_hint, site=site)


def parallel_stats() -> dict[str, Any]:
    """Snapshot of the shared context's dispatch ledger."""
    return get_default_context().stats.as_dict()


def reset_parallel_stats() -> None:
    """Clear the shared context's ledger (benchmark hygiene)."""
    get_default_context().stats = ParallelStats()

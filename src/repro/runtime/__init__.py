"""Runtime: plan interpreter, fused kernels, blocked matrices, buffer
pool, and the shared cost-aware parallel execution engine."""

from .blocks import BlockedMatrix
from .bufferpool import BlockStore, BufferPool, PoolStats
from .executor import ExecutionStats, execute
from .outofcore import OutOfCoreLinearRegression, OutOfCoreResult
from .ops import (
    FUSED_KERNELS,
    apply_aggregate,
    apply_binary,
    apply_fused,
    apply_unary,
)
from .parallel import (
    CallRecord,
    ParallelContext,
    ParallelStats,
    get_default_context,
    merge_tree,
    parallel_stats,
    pmap,
    reset_parallel_stats,
    resolve_context,
    set_default_context,
)

__all__ = [
    "FUSED_KERNELS",
    "BlockStore",
    "BlockedMatrix",
    "BufferPool",
    "CallRecord",
    "ExecutionStats",
    "OutOfCoreLinearRegression",
    "OutOfCoreResult",
    "ParallelContext",
    "ParallelStats",
    "PoolStats",
    "apply_aggregate",
    "apply_binary",
    "apply_fused",
    "apply_unary",
    "execute",
    "get_default_context",
    "merge_tree",
    "parallel_stats",
    "pmap",
    "reset_parallel_stats",
    "resolve_context",
    "set_default_context",
]

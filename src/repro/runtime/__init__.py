"""Runtime: plan interpreter, fused kernels, blocked matrices, buffer pool."""

from .blocks import BlockedMatrix
from .bufferpool import BlockStore, BufferPool, PoolStats
from .executor import ExecutionStats, execute
from .outofcore import OutOfCoreLinearRegression, OutOfCoreResult
from .ops import (
    FUSED_KERNELS,
    apply_aggregate,
    apply_binary,
    apply_fused,
    apply_unary,
)

__all__ = [
    "FUSED_KERNELS",
    "BlockStore",
    "BlockedMatrix",
    "BufferPool",
    "ExecutionStats",
    "OutOfCoreLinearRegression",
    "OutOfCoreResult",
    "PoolStats",
    "apply_aggregate",
    "apply_binary",
    "apply_fused",
    "apply_unary",
    "execute",
]

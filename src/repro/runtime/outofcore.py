"""Out-of-core GLM training over blocked matrices.

The estimator-level face of the buffer-pool substrate: training data
lives in a :class:`~repro.runtime.bufferpool.BlockStore` as row panels
and every epoch streams blocks through a byte-budgeted
:class:`~repro.runtime.bufferpool.BufferPool`. When the pool holds the
working set, epochs after the first are memory-speed; when it does not,
the trainer still converges while the pool ledger records the paid I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ExecutionError
from ..resilience.checkpoint import IterativeCheckpointer
from .blocks import BlockedMatrix
from .bufferpool import BlockStore, BufferPool, PoolStats


@dataclass
class OutOfCoreResult:
    weights: np.ndarray
    epochs: int
    loss_history: list[float] = field(default_factory=list)
    pool_stats: PoolStats | None = None
    bytes_read_from_store: int = 0

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class OutOfCoreLinearRegression:
    """Least squares trained by blocked gradient descent under a memory budget.

    Args:
        memory_budget_bytes: buffer-pool capacity. None = everything fits.
        block_rows: row-panel height used when staging the data.
        checkpointer: optional
            :class:`~repro.resilience.checkpoint.IterativeCheckpointer`;
            when set, finished epochs are persisted and ``fit`` resumes
            from the newest valid checkpoint — each epoch is
            deterministic in ``w``, so a killed-and-resumed fit ends
            bit-identical to an uninterrupted one.
    """

    def __init__(
        self,
        learning_rate: float = 0.3,
        epochs: int = 100,
        l2: float = 0.0,
        block_rows: int = 1024,
        memory_budget_bytes: int | None = None,
        tol: float = 1e-9,
        checkpointer: IterativeCheckpointer | None = None,
    ):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.block_rows = block_rows
        self.memory_budget_bytes = memory_budget_bytes
        self.tol = tol
        self.checkpointer = checkpointer

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OutOfCoreLinearRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(X) != len(y):
            raise ExecutionError(f"X has {len(X)} rows but y has {len(y)}")
        n, d = X.shape

        store = BlockStore()
        blocked = BlockedMatrix.from_array(X, store, "X", self.block_rows)
        budget = (
            self.memory_budget_bytes
            if self.memory_budget_bytes is not None
            else X.nbytes * 2 + 1
        )
        pool = BufferPool(store, capacity_bytes=budget)
        baseline_reads = store.bytes_read

        w = np.zeros(d)
        history = [self._loss(blocked, pool, w, y, n)]
        epoch = 0
        start_epoch = 1
        done = False
        if self.checkpointer is not None:
            latest = self.checkpointer.load_latest()
            if latest is not None:
                epoch, state = latest
                w = state["w"]
                history = list(state["history"])
                done = state["done"]
                start_epoch = epoch + 1
        if not done:
            for epoch in range(start_epoch, self.epochs + 1):
                grad = np.zeros(d)
                for b in range(blocked.num_blocks):
                    block = blocked.get_block(b, pool)
                    start, end = blocked.block_rows_of(b)
                    residual = block @ w - y[start:end]
                    grad += block.T @ residual
                grad = grad / n
                if self.l2 > 0:
                    grad = grad + self.l2 * w
                w = w - self.learning_rate * grad
                history.append(self._loss(blocked, pool, w, y, n))
                improvement = abs(history[-2] - history[-1]) / max(
                    abs(history[-2]), 1e-12
                )
                done = improvement < self.tol
                if self.checkpointer is not None and (
                    done or self.checkpointer.should_checkpoint(epoch)
                ):
                    self.checkpointer.save(
                        epoch,
                        {"w": w, "history": list(history), "done": done},
                    )
                if done:
                    break

        self.coef_ = w
        self.result_ = OutOfCoreResult(
            weights=w,
            epochs=epoch,
            loss_history=history,
            pool_stats=pool.stats,
            bytes_read_from_store=store.bytes_read - baseline_reads,
        )
        return self

    @staticmethod
    def _loss(
        blocked: BlockedMatrix,
        pool: BufferPool,
        w: np.ndarray,
        y: np.ndarray,
        n: int,
    ) -> float:
        total = 0.0
        for b in range(blocked.num_blocks):
            block = blocked.get_block(b, pool)
            start, end = blocked.block_rows_of(b)
            residual = block @ w - y[start:end]
            total += float(residual @ residual)
        return 0.5 * total / n

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "coef_"):
            raise ExecutionError("fit must be called before predict")
        return np.asarray(X, dtype=np.float64) @ self.coef_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        from ..ml.metrics import r2_score

        return r2_score(np.asarray(y), self.predict(X))

"""High-level in-database GLM estimators over relational tables.

These wrap the UDA machinery with a fit/predict interface keyed by column
names, the way MADlib exposes ``linregr_train`` / ``logregr_train``:
models are trained by aggregation passes over a table and predict by
appending a column.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError, NotFittedError
from ..ml.losses import LogisticLoss, SquaredLoss, sigmoid
from ..runtime.parallel import ParallelContext
from ..storage.table import Table
from .gradient import IGDResult, train_bgd, train_igd
from .uda import GramUDA, run_uda


class InDBLinearRegression:
    """Linear regression trained by a single Gram-accumulation scan.

    The normal-equation sufficient statistics (X'X, X'y) are computed by
    one UDA pass — the MADlib pattern for closed-form models.
    """

    def __init__(self, l2: float = 0.0, add_intercept: bool = True):
        self.l2 = l2
        self.add_intercept = add_intercept

    def fit(
        self,
        table: Table,
        feature_columns: Sequence[str],
        label_column: str,
        partitions: int = 1,
        parallel: bool | ParallelContext = False,
    ) -> "InDBLinearRegression":
        if not feature_columns:
            raise ModelError("need at least one feature column")
        work = table
        features = list(feature_columns)
        if self.add_intercept:
            work = table.with_column("_intercept", np.ones(table.num_rows))
            features = ["_intercept", *features]
        stats = run_uda(
            work,
            GramUDA(),
            [*features, label_column],
            partitions=partitions,
            parallel=parallel,
        )
        gram = stats["gram"]
        if self.l2 > 0:
            penalty = self.l2 * np.eye(len(gram))
            if self.add_intercept:
                penalty[0, 0] = 0.0
            gram = gram + penalty
        try:
            weights = np.linalg.solve(gram, stats["xty"])
        except np.linalg.LinAlgError:
            weights = np.linalg.pinv(gram) @ stats["xty"]
        self.feature_columns_ = list(feature_columns)
        if self.add_intercept:
            self.intercept_ = float(weights[0])
            self.coef_ = weights[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = weights
        return self

    def predict(self, table: Table, output_column: str = "prediction") -> Table:
        """Table with a prediction column appended."""
        self._check_fitted()
        X = table.to_matrix(self.feature_columns_)
        return table.with_column(output_column, X @ self.coef_ + self.intercept_)

    def score(self, table: Table, label_column: str) -> float:
        from ..ml.metrics import r2_score

        self._check_fitted()
        X = table.to_matrix(self.feature_columns_)
        return r2_score(
            table.column(label_column).astype(float),
            X @ self.coef_ + self.intercept_,
        )

    def _check_fitted(self) -> None:
        if not hasattr(self, "coef_"):
            raise NotFittedError("fit must be called before predict/score")


class InDBLogisticRegression:
    """Logistic regression trained in-database by IGD or BGD aggregates.

    Labels may be any two values; ``classes_[1]`` is the positive class.
    """

    def __init__(
        self,
        method: str = "igd",
        epochs: int = 20,
        learning_rate: float = 0.1,
        decay: float = 0.5,
        l2: float = 0.0,
        shuffle: str = "once",
        partitions: int = 1,
        seed: int | None = 0,
        parallel: bool | ParallelContext = False,
    ):
        if method not in ("igd", "bgd"):
            raise ModelError(f"method must be 'igd' or 'bgd', got {method!r}")
        self.method = method
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.decay = decay
        self.l2 = l2
        self.shuffle = shuffle
        self.partitions = partitions
        self.seed = seed
        self.parallel = parallel

    def fit(
        self, table: Table, feature_columns: Sequence[str], label_column: str
    ) -> "InDBLogisticRegression":
        labels = table.column(label_column)
        classes = np.unique(labels)
        if len(classes) != 2:
            raise ModelError(f"need exactly 2 classes, got {len(classes)}")
        self.classes_ = classes
        pm = np.where(labels == classes[1], 1.0, -1.0)
        work = table.with_column("_label_pm", pm)

        if self.method == "igd":
            result = train_igd(
                work,
                feature_columns,
                "_label_pm",
                LogisticLoss(),
                epochs=self.epochs,
                learning_rate=self.learning_rate,
                decay=self.decay,
                l2=self.l2,
                shuffle=self.shuffle,
                partitions=self.partitions,
                seed=self.seed,
                parallel=self.parallel,
            )
        else:
            result = train_bgd(
                work,
                feature_columns,
                "_label_pm",
                LogisticLoss(),
                iterations=self.epochs,
                learning_rate=self.learning_rate,
                l2=self.l2,
                partitions=self.partitions,
                parallel=self.parallel,
            )
        self.result_: IGDResult = result
        self.feature_columns_ = list(feature_columns)
        self.intercept_ = float(result.weights[0])
        self.coef_ = result.weights[1:]
        return self

    def predict_proba(self, table: Table) -> np.ndarray:
        self._check_fitted()
        X = table.to_matrix(self.feature_columns_)
        return sigmoid(X @ self.coef_ + self.intercept_)

    def predict(self, table: Table, output_column: str = "prediction") -> Table:
        p = self.predict_proba(table)
        labels = np.where(p >= 0.5, self.classes_[1], self.classes_[0])
        return table.with_column(output_column, labels)

    def score(self, table: Table, label_column: str) -> float:
        self._check_fitted()
        p = self.predict_proba(table)
        predicted = np.where(p >= 0.5, self.classes_[1], self.classes_[0])
        return float(np.mean(predicted == table.column(label_column)))

    def _check_fitted(self) -> None:
        if not hasattr(self, "coef_"):
            raise NotFittedError("fit must be called before predict/score")


def train_linear_svm_indb(
    table: Table,
    feature_columns: Sequence[str],
    label_column: str,
    epochs: int = 20,
    learning_rate: float = 0.1,
    l2: float = 0.01,
    shuffle: str = "once",
    partitions: int = 1,
    seed: int | None = 0,
    parallel: bool | ParallelContext = False,
) -> IGDResult:
    """Linear SVM via the same IGD aggregate with the hinge loss.

    Demonstrates Bismarck's unification claim: swapping the loss object is
    the *only* change needed to train a different model in-database.
    Labels must already be in {-1, +1}.
    """
    from ..ml.losses import HingeLoss

    return train_igd(
        table,
        feature_columns,
        label_column,
        HingeLoss(),
        epochs=epochs,
        learning_rate=learning_rate,
        l2=l2,
        shuffle=shuffle,
        partitions=partitions,
        seed=seed,
        parallel=parallel,
    )


def train_linreg_igd_indb(
    table: Table,
    feature_columns: Sequence[str],
    label_column: str,
    epochs: int = 20,
    learning_rate: float = 0.05,
    shuffle: str = "once",
    partitions: int = 1,
    seed: int | None = 0,
    parallel: bool | ParallelContext = False,
) -> IGDResult:
    """Least squares via the IGD aggregate with the squared loss."""
    return train_igd(
        table,
        feature_columns,
        label_column,
        SquaredLoss(),
        epochs=epochs,
        learning_rate=learning_rate,
        shuffle=shuffle,
        partitions=partitions,
        seed=seed,
        parallel=parallel,
    )

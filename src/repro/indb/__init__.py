"""In-RDBMS machine learning (MADlib / Bismarck).

Training runs *inside* the relational substrate via user-defined
aggregates: IGD/BGD for GLMs (:mod:`.gradient`), one-scan normal
equations and high-level estimators (:mod:`.glm`), and Naive Bayes as
pure GROUP BY aggregation (:mod:`.naive_bayes_sql`).
"""

from .glm import (
    InDBLinearRegression,
    InDBLogisticRegression,
    train_linear_svm_indb,
    train_linreg_igd_indb,
)
from .gradient import (
    SHUFFLE_POLICIES,
    IGDResult,
    IGDState,
    IGDTransition,
    train_bgd,
    train_igd,
)
from .kmeans_uda import (
    InDBKMeansResult,
    KMeansAssignUDA,
    assign_clusters_indb,
    train_kmeans_indb,
)
from .naive_bayes_sql import SQLNaiveBayes
from .scoring import linear_expression, score_linear_model, score_probability
from .uda import UDA, CovarianceUDA, GramUDA, SumCountUDA, run_uda

__all__ = [
    "SHUFFLE_POLICIES",
    "UDA",
    "CovarianceUDA",
    "GramUDA",
    "IGDResult",
    "IGDState",
    "IGDTransition",
    "InDBKMeansResult",
    "InDBLinearRegression",
    "InDBLogisticRegression",
    "KMeansAssignUDA",
    "SQLNaiveBayes",
    "assign_clusters_indb",
    "SumCountUDA",
    "linear_expression",
    "run_uda",
    "score_linear_model",
    "score_probability",
    "train_bgd",
    "train_igd",
    "train_kmeans_indb",
    "train_linear_svm_indb",
    "train_linreg_igd_indb",
]

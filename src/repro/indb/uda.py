"""User-defined aggregate (UDA) framework.

Bismarck's architecture observation: a whole family of ML training
algorithms fits the RDBMS aggregate contract —

* ``initialize``  -> fresh state,
* ``transition``  (state, tuple) -> state, once per row,
* ``merge``       (state, state) -> state, across parallel partitions,
* ``finalize``    state -> result.

:func:`run_uda` executes a UDA over a :class:`~repro.storage.table.Table`
exactly as a partitioned engine would: the table is split into
partitions, each partition folds rows through ``transition``, and partial
states combine pairwise through ``merge``.
"""

from __future__ import annotations

from functools import partial
from typing import Generic, Sequence, TypeVar

import numpy as np

from ..errors import StorageError
from ..obs import get_registry, span
from ..runtime.parallel import (
    PYTHON_CALL_FLOPS,
    ParallelContext,
    merge_tree,
    resolve_context,
)
from ..storage.table import Table

State = TypeVar("State")
Result = TypeVar("Result")


class UDA(Generic[State, Result]):
    """Base class for user-defined aggregates."""

    def initialize(self) -> State:
        raise NotImplementedError

    def transition(self, state: State, row: np.ndarray) -> State:
        """Fold one row (a float vector of the selected columns)."""
        raise NotImplementedError

    def merge(self, left: State, right: State) -> State:
        """Combine two partial states from different partitions."""
        raise NotImplementedError

    def finalize(self, state: State) -> Result:
        return state  # type: ignore[return-value]


def _fold_partition(
    uda: UDA[State, Result], data: np.ndarray, span: tuple[int, int]
) -> State:
    """Fold one contiguous row slice through ``transition``.

    Module-level so the process-pool backend can pickle it.
    """
    state = uda.initialize()
    for row in data[span[0] : span[1]]:
        state = uda.transition(state, row)
    return state


def estimate_uda_cost(n_rows: int, n_cols: int) -> float:
    """Flops-equivalent cost of one UDA pass (Python transition per row)."""
    return float(n_rows) * (PYTHON_CALL_FLOPS + 2.0 * n_cols)


def run_uda(
    table: Table,
    uda: UDA[State, Result],
    columns: Sequence[str],
    partitions: int = 1,
    row_order: np.ndarray | None = None,
    parallel: bool | ParallelContext = False,
    context: ParallelContext | None = None,
) -> Result:
    """Execute a UDA over the selected numeric columns of a table.

    Partition states always combine through a pairwise merge *tree*
    (log-depth, the shape a partitioned engine uses), so serial and
    parallel execution perform bitwise-identical merges. Partitions that
    would receive zero rows (``partitions > n_rows``) are skipped rather
    than folded through ``transition``/``merge``.

    Args:
        partitions: number of simulated parallel partitions; each gets a
            contiguous slice of rows and its own state, merged at the end.
        row_order: optional row permutation applied before partitioning
            (how the engine layer implements shuffling for IGD).
        parallel: ``True`` computes partition states concurrently on the
            shared :class:`ParallelContext` (cost-gated: small tables
            still run serially); may also be a context instance.
        context: explicit pool to use instead of the shared default.
    """
    if partitions < 1:
        raise StorageError("partitions must be >= 1")
    data = table.to_matrix(columns)
    if row_order is not None:
        if len(row_order) != len(data):
            raise StorageError(
                f"row_order length {len(row_order)} != table rows {len(data)}"
            )
        data = data[row_order]

    n = len(data)
    bounds = np.linspace(0, n, partitions + 1).astype(int)
    spans = [
        (int(bounds[p]), int(bounds[p + 1]))
        for p in range(partitions)
        if bounds[p + 1] > bounds[p]
    ]
    if not spans:
        # Empty table: finalize a fresh state (UDAs decide whether an
        # empty aggregate is an error or an identity).
        return uda.finalize(uda.initialize())

    fold = partial(_fold_partition, uda, data)
    ctx = resolve_context(parallel, context)
    registry = get_registry()
    registry.inc("uda.runs")
    registry.inc("uda.rows", n)
    registry.inc("uda.partitions", len(spans))
    with span(
        "indb.run_uda",
        uda=type(uda).__name__,
        rows=n,
        cols=data.shape[1],
        partitions=len(spans),
        parallel=ctx is not None,
    ):
        if ctx is not None and len(spans) > 1:
            states = ctx.pmap(
                fold,
                spans,
                cost_hint=estimate_uda_cost(n, data.shape[1]),
                site="indb.run_uda",
            )
        else:
            states = [fold(row_span) for row_span in spans]

        return uda.finalize(merge_tree(uda.merge, states))


# ----------------------------------------------------------------------
# Simple statistics UDAs (the MADlib-style building blocks)
# ----------------------------------------------------------------------
class SumCountUDA(UDA[tuple, dict]):
    """Per-column sum and row count in one pass (mean via finalize)."""

    def initialize(self):
        return (None, 0)

    def transition(self, state, row):
        total, count = state
        total = row.copy() if total is None else total + row
        return (total, count + 1)

    def merge(self, left, right):
        lt, lc = left
        rt, rc = right
        if lt is None:
            return right
        if rt is None:
            return left
        return (lt + rt, lc + rc)

    def finalize(self, state) -> dict:
        total, count = state
        if total is None:
            raise StorageError("aggregate over an empty table")
        return {"sum": total, "count": count, "mean": total / count}


class CovarianceUDA(UDA[tuple, np.ndarray]):
    """Streaming covariance matrix over the selected columns."""

    def initialize(self):
        return (None, None, 0)

    def transition(self, state, row):
        outer, total, count = state
        if outer is None:
            outer = np.outer(row, row)
            total = row.copy()
        else:
            outer = outer + np.outer(row, row)
            total = total + row
        return (outer, total, count + 1)

    def merge(self, left, right):
        lo, lt, lc = left
        ro, rt, rc = right
        if lo is None:
            return right
        if ro is None:
            return left
        return (lo + ro, lt + rt, lc + rc)

    def finalize(self, state) -> np.ndarray:
        outer, total, count = state
        if outer is None:
            raise StorageError("aggregate over an empty table")
        mean = total / count
        return outer / count - np.outer(mean, mean)


class GramUDA(UDA[tuple, dict]):
    """Accumulate X'X and X'y in one pass: in-DB normal equations.

    The last selected column is treated as the label y; the rest form X.
    This is how MADlib's ``linregr`` trains linear models with a single
    table scan.
    """

    def initialize(self):
        return (None, None, 0)

    def transition(self, state, row):
        gram, xty, count = state
        x, y = row[:-1], row[-1]
        if gram is None:
            gram = np.outer(x, x)
            xty = y * x
        else:
            gram = gram + np.outer(x, x)
            xty = xty + y * x
        return (gram, xty, count + 1)

    def merge(self, left, right):
        lg, lx, lc = left
        rg, rx, rc = right
        if lg is None:
            return right
        if rg is None:
            return left
        return (lg + rg, lx + rx, lc + rc)

    def finalize(self, state) -> dict:
        gram, xty, count = state
        if gram is None:
            raise StorageError("aggregate over an empty table")
        return {"gram": gram, "xty": xty, "count": count}

"""K-means clustering inside the database (MADlib's kmeans pattern).

Each Lloyd iteration is one aggregation pass: the transition function
assigns a tuple to its nearest current centroid and accumulates
per-centroid sums and counts; merge adds partial accumulators across
partitions; finalize emits the new centroids. The driver repeats passes
until centroids stabilize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ModelError
from ..storage.table import Table
from .uda import UDA, run_uda


@dataclass
class KMeansState:
    sums: np.ndarray  # (k, d) per-centroid coordinate sums
    counts: np.ndarray  # (k,) per-centroid member counts
    inertia: float = 0.0


class KMeansAssignUDA(UDA[KMeansState, KMeansState]):
    """One assign-and-accumulate pass against fixed current centroids."""

    def __init__(self, centroids: np.ndarray):
        self.centroids = centroids

    def initialize(self) -> KMeansState:
        k, d = self.centroids.shape
        return KMeansState(sums=np.zeros((k, d)), counts=np.zeros(k))

    def transition(self, state: KMeansState, row: np.ndarray) -> KMeansState:
        diffs = self.centroids - row
        d2 = np.einsum("ij,ij->i", diffs, diffs)
        nearest = int(np.argmin(d2))
        state.sums[nearest] += row
        state.counts[nearest] += 1
        state.inertia += float(d2[nearest])
        return state

    def merge(self, left: KMeansState, right: KMeansState) -> KMeansState:
        return KMeansState(
            sums=left.sums + right.sums,
            counts=left.counts + right.counts,
            inertia=left.inertia + right.inertia,
        )

    def finalize(self, state: KMeansState) -> KMeansState:
        return state


@dataclass
class InDBKMeansResult:
    centroids: np.ndarray
    inertia: float
    iterations: int
    inertia_history: list[float] = field(default_factory=list)


def train_kmeans_indb(
    table: Table,
    feature_columns: Sequence[str],
    n_clusters: int,
    max_iter: int = 50,
    tol: float = 1e-6,
    partitions: int = 1,
    seed: int | None = 0,
) -> InDBKMeansResult:
    """Lloyd's algorithm as repeated aggregation passes over a table."""
    if not feature_columns:
        raise ModelError("need at least one feature column")
    if n_clusters < 1:
        raise ModelError("n_clusters must be >= 1")
    if table.num_rows < n_clusters:
        raise ModelError(
            f"need at least n_clusters={n_clusters} rows, got {table.num_rows}"
        )

    rng = np.random.default_rng(seed)
    data = table.to_matrix(feature_columns)
    centroids = data[
        rng.choice(table.num_rows, size=n_clusters, replace=False)
    ].copy()

    history: list[float] = []
    it = 0
    for it in range(1, max_iter + 1):
        state = run_uda(
            table,
            KMeansAssignUDA(centroids),
            feature_columns,
            partitions=partitions,
        )
        history.append(state.inertia)
        new_centroids = centroids.copy()
        for k in range(n_clusters):
            if state.counts[k] > 0:
                new_centroids[k] = state.sums[k] / state.counts[k]
        shift = float(np.max(np.linalg.norm(new_centroids - centroids, axis=1)))
        centroids = new_centroids
        if shift <= tol:
            break

    final = run_uda(
        table, KMeansAssignUDA(centroids), feature_columns, partitions=partitions
    )
    return InDBKMeansResult(
        centroids=centroids,
        inertia=final.inertia,
        iterations=it,
        inertia_history=history,
    )


def assign_clusters_indb(
    table: Table,
    feature_columns: Sequence[str],
    centroids: np.ndarray,
    output_column: str = "cluster",
) -> Table:
    """Score a table: append the nearest-centroid id per row."""
    data = table.to_matrix(feature_columns)
    x2 = np.sum(data * data, axis=1, keepdims=True)
    c2 = np.sum(centroids * centroids, axis=1)
    d2 = x2 - 2.0 * (data @ centroids.T) + c2
    return table.with_column(output_column, np.argmin(d2, axis=1).astype(np.int64))

"""Naive Bayes training by pure SQL-style aggregation.

The categorical-NB sufficient statistics are just counts: class counts
and per-(feature, value, class) counts — each obtainable with a GROUP BY
over the training table. This module trains NB by issuing exactly those
group-by queries against the relational substrate, demonstrating the
"ML through the query layer" approach the tutorial covers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError, NotFittedError
from ..storage.aggregates import agg
from ..storage.operators import group_by
from ..storage.table import Table


class SQLNaiveBayes:
    """Categorical Naive Bayes whose training is GROUP BY aggregation."""

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ModelError("alpha must be positive")
        self.alpha = alpha

    def fit(
        self, table: Table, feature_columns: Sequence[str], label_column: str
    ) -> "SQLNaiveBayes":
        if not feature_columns:
            raise ModelError("need at least one feature column")
        self.feature_columns_ = list(feature_columns)
        self.label_column_ = label_column

        # SELECT label, COUNT(*) FROM t GROUP BY label
        class_counts = group_by(table, [label_column], [agg("count")])
        self.classes_ = np.array(sorted(class_counts.column(label_column).tolist()))
        counts = dict(
            zip(class_counts.column(label_column), class_counts.column("count"))
        )
        self.class_count_ = np.array(
            [counts[c] for c in self.classes_], dtype=np.float64
        )
        total = float(self.class_count_.sum())
        self.class_log_prior_ = np.log(self.class_count_ / total)

        # Per feature: SELECT label, feature, COUNT(*) GROUP BY label, feature
        self.value_counts_: list[dict] = []
        self.cardinality_ = []
        class_index = {c: i for i, c in enumerate(self.classes_)}
        for feature in feature_columns:
            grouped = group_by(table, [label_column, feature], [agg("count")])
            table_counts: dict = {}
            values = set()
            for label, value, count in zip(
                grouped.column(label_column),
                grouped.column(feature),
                grouped.column("count"),
            ):
                table_counts[(class_index[label], value)] = float(count)
                values.add(value)
            self.value_counts_.append(table_counts)
            self.cardinality_.append(len(values))
        return self

    def predict(self, table: Table, output_column: str = "prediction") -> Table:
        """Table with the MAP class appended."""
        jll = self._joint_log_likelihood(table)
        labels = self.classes_[np.argmax(jll, axis=1)]
        return table.with_column(output_column, labels)

    def predict_labels(self, table: Table) -> np.ndarray:
        return self.classes_[np.argmax(self._joint_log_likelihood(table), axis=1)]

    def score(self, table: Table, label_column: str | None = None) -> float:
        if not hasattr(self, "classes_"):
            raise NotFittedError("fit must be called before predict/score")
        label_column = label_column or self.label_column_
        predicted = self.predict_labels(table)
        return float(np.mean(predicted == table.column(label_column)))

    def _joint_log_likelihood(self, table: Table) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise NotFittedError("fit must be called before predict/score")
        n = table.num_rows
        k = len(self.classes_)
        out = np.tile(self.class_log_prior_, (n, 1))
        for j, feature in enumerate(self.feature_columns_):
            column = table.column(feature)
            card = self.cardinality_[j]
            denom = self.class_count_ + self.alpha * card
            counts = self.value_counts_[j]
            for row, value in enumerate(column):
                for i in range(k):
                    num = counts.get((i, value), 0.0) + self.alpha
                    out[row, i] += np.log(num / denom[i])
        return out

"""Incremental gradient descent as a user-defined aggregate (Bismarck).

One epoch of IGD is one aggregation pass: the transition function applies
a pointwise gradient step per tuple, and parallel partitions merge by
model averaging. Epochs repeat the pass; the shuffle policy controls the
row order the engine feeds the aggregate — Bismarck's key performance
finding is that *shuffling once* before training nearly matches per-epoch
reshuffling at a fraction of the cost, while *no* shuffling on clustered
data hurts convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ModelError, StorageError
from ..ml.losses import Loss
from ..runtime.parallel import ParallelContext
from ..storage.table import Table
from .uda import UDA, run_uda

SHUFFLE_POLICIES = ("none", "once", "each")


@dataclass
class IGDState:
    """Running model state inside the aggregate."""

    weights: np.ndarray
    examples: int = 0


class IGDTransition(UDA[IGDState, np.ndarray]):
    """One IGD epoch as a UDA.

    The last selected column is the label; the rest are features. The
    step size is fixed for the epoch (the trainer decays it across
    epochs).
    """

    def __init__(self, loss: Loss, dim: int, learning_rate: float, l2: float,
                 initial: np.ndarray | None = None):
        self.loss = loss
        self.dim = dim
        self.learning_rate = learning_rate
        self.l2 = l2
        self.initial = initial

    def initialize(self) -> IGDState:
        start = (
            self.initial.copy() if self.initial is not None else np.zeros(self.dim)
        )
        return IGDState(weights=start)

    def transition(self, state: IGDState, row: np.ndarray) -> IGDState:
        x, y = row[:-1], row[-1]
        grad = self.loss.pointwise_gradient(x, y, state.weights)
        if self.l2 > 0:
            grad = grad + self.l2 * state.weights
        state.weights -= self.learning_rate * grad
        state.examples += 1
        return state

    def merge(self, left: IGDState, right: IGDState) -> IGDState:
        # Bismarck-style model averaging, weighted by examples seen.
        total = left.examples + right.examples
        if total == 0:
            return left
        weights = (
            left.weights * left.examples + right.weights * right.examples
        ) / total
        return IGDState(weights=weights, examples=total)

    def finalize(self, state: IGDState) -> np.ndarray:
        return state.weights


@dataclass
class IGDResult:
    """Outcome of in-database IGD training."""

    weights: np.ndarray
    epochs: int
    loss_history: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


def train_igd(
    table: Table,
    feature_columns: Sequence[str],
    label_column: str,
    loss: Loss,
    epochs: int = 10,
    learning_rate: float = 0.1,
    decay: float = 0.5,
    l2: float = 0.0,
    shuffle: str = "once",
    partitions: int = 1,
    add_intercept: bool = True,
    seed: int | None = 0,
    parallel: bool | ParallelContext = False,
) -> IGDResult:
    """Train a GLM over a table with epoch-per-aggregation IGD.

    Args:
        shuffle: ``"none"`` (physical row order — worst case on clustered
            data), ``"once"`` (shuffle before epoch 1 and keep that
            order), or ``"each"`` (reshuffle every epoch).
        decay: per-epoch step decay, lr_t = lr / (1 + decay * t).
        partitions: simulated parallel workers (merged by averaging).
        parallel: compute partition states concurrently on the shared
            worker pool (identical result to the serial path).
    """
    if shuffle not in SHUFFLE_POLICIES:
        raise ModelError(
            f"shuffle must be one of {SHUFFLE_POLICIES}, got {shuffle!r}"
        )
    if not feature_columns:
        raise ModelError("need at least one feature column")

    work = table
    intercept_col = None
    if add_intercept:
        intercept_col = _fresh_name(table, "intercept")
        work = table.with_column(intercept_col, np.ones(table.num_rows))
        feature_columns = [intercept_col, *feature_columns]
    columns = [*feature_columns, label_column]
    dim = len(feature_columns)

    data = work.to_matrix(columns)
    X_full, y_full = data[:, :-1], data[:, -1]
    loss_of = lambda w: loss.value(X_full, y_full, w) + (
        0.5 * l2 * float(w @ w) if l2 > 0 else 0.0
    )

    rng = np.random.default_rng(seed)
    n = work.num_rows
    order = rng.permutation(n) if shuffle in ("once", "each") else None

    weights = np.zeros(dim)
    history = [loss_of(weights)]
    for epoch in range(epochs):
        if shuffle == "each" and epoch > 0:
            order = rng.permutation(n)
        lr = learning_rate / (1.0 + decay * epoch)
        uda = IGDTransition(loss, dim, lr, l2, initial=weights)
        weights = run_uda(
            work,
            uda,
            columns,
            partitions=partitions,
            row_order=order,
            parallel=parallel,
        )
        history.append(loss_of(weights))
    return IGDResult(weights=weights, epochs=epochs, loss_history=history)


def train_bgd(
    table: Table,
    feature_columns: Sequence[str],
    label_column: str,
    loss: Loss,
    iterations: int = 50,
    learning_rate: float = 0.5,
    l2: float = 0.0,
    partitions: int = 1,
    add_intercept: bool = True,
    parallel: bool | ParallelContext = False,
) -> IGDResult:
    """Batch gradient descent: one aggregation pass per iteration.

    The aggregate accumulates the full-data gradient (transition adds
    per-tuple contributions, merge adds partials) and the driver applies
    one step between passes — the MADlib convex-optimization pattern.
    """
    if not feature_columns:
        raise ModelError("need at least one feature column")
    work = table
    if add_intercept:
        name = _fresh_name(table, "intercept")
        work = table.with_column(name, np.ones(table.num_rows))
        feature_columns = [name, *feature_columns]
    columns = [*feature_columns, label_column]
    dim = len(feature_columns)

    data = work.to_matrix(columns)
    X_full, y_full = data[:, :-1], data[:, -1]

    weights = np.zeros(dim)
    history = [loss.value(X_full, y_full, weights)]

    class GradientUDA(UDA):
        def __init__(self, w: np.ndarray):
            self.w = w

        def initialize(self):
            return (np.zeros(dim), 0)

        def transition(self, state, row):
            grad, count = state
            x, y = row[:-1], row[-1]
            return (grad + loss.pointwise_gradient(x, y, self.w), count + 1)

        def merge(self, left, right):
            return (left[0] + right[0], left[1] + right[1])

        def finalize(self, state):
            grad, count = state
            if count == 0:
                raise StorageError("gradient over an empty table")
            return grad / count

    for _ in range(iterations):
        grad = run_uda(
            work, GradientUDA(weights), columns, partitions, parallel=parallel
        )
        if l2 > 0:
            grad = grad + l2 * weights
        weights = weights - learning_rate * grad
        value = loss.value(X_full, y_full, weights)
        if l2 > 0:
            value += 0.5 * l2 * float(weights @ weights)
        history.append(value)
    return IGDResult(weights=weights, epochs=iterations, loss_history=history)


def _fresh_name(table: Table, base: str) -> str:
    name = base
    suffix = 0
    while name in table.schema:
        suffix += 1
        name = f"{base}_{suffix}"
    return name

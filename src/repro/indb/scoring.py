"""In-database model scoring: compile fitted models to engine expressions.

Deployment half of in-RDBMS ML: a trained linear model becomes a plain
column expression (``w0 + w1*x1 + ...``) the engine evaluates with its
own vectorized operators — no model object needed at serving time, and
the scoring 'query' can be composed with filters and joins like any
other expression.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError
from ..lifecycle.registry import ModelVersion
from ..ml.losses import sigmoid
from ..storage.expressions import Expr, col, lit
from ..storage.table import Table


def _unwrap_model(model, feature_columns: Sequence[str] | None):
    """Accept either a bare model or a registry :class:`ModelVersion`.

    A version entry contributes its embedded model object, and — when
    the caller names no columns — the ``feature_columns`` recorded in
    its params, so ``score_linear_model(table, registry.deployed("m"))``
    is a complete deployment call.
    """
    if isinstance(model, ModelVersion):
        if model.model is None:
            raise ModelError(
                f"registry entry {model.identifier} carries no model object"
            )
        if feature_columns is None:
            feature_columns = model.params.get("feature_columns")
        model = model.model
    return model, feature_columns


def linear_expression(
    coef: np.ndarray, intercept: float, feature_columns: Sequence[str]
) -> Expr:
    """The affine score ``intercept + sum(coef_i * column_i)`` as an Expr."""
    coef = np.asarray(coef, dtype=np.float64)
    if len(coef) != len(feature_columns):
        raise ModelError(
            f"{len(coef)} coefficients for {len(feature_columns)} columns"
        )
    expr: Expr = lit(float(intercept))
    for weight, name in zip(coef, feature_columns):
        expr = expr + float(weight) * col(name)
    return expr


def score_linear_model(
    table: Table,
    model,
    feature_columns: Sequence[str] | None = None,
    output_column: str = "score",
) -> Table:
    """Append a fitted linear/logistic model's raw score as a column.

    Works with any estimator exposing ``coef_`` and ``intercept_``
    (LinearRegression, Ridge, LogisticRegression, LinearSVM, the in-DB
    GLMs), or a registry :class:`~repro.lifecycle.ModelVersion` wrapping
    one (``registry.deployed("churn")`` scores in one call; columns come
    from the entry's ``feature_columns`` param when not given). For
    classifiers the appended value is the *margin*; use
    :func:`score_probability` for calibrated probabilities.
    """
    model, feature_columns = _unwrap_model(model, feature_columns)
    if not hasattr(model, "coef_"):
        raise ModelError("model must be fitted and expose coef_/intercept_")
    columns = list(
        feature_columns
        if feature_columns is not None
        else getattr(model, "feature_columns_", [])
    )
    if not columns:
        raise ModelError(
            "feature_columns required (model records none)"
        )
    expr = linear_expression(model.coef_, model.intercept_, columns)
    return table.with_column(output_column, expr.evaluate(table))


def score_probability(
    table: Table,
    model,
    feature_columns: Sequence[str] | None = None,
    output_column: str = "probability",
) -> Table:
    """Append sigmoid(margin): P(positive class) for logistic models."""
    scored = score_linear_model(
        table, model, feature_columns, output_column="_margin"
    )
    p = sigmoid(scored.column("_margin"))
    return scored.drop(["_margin"]).with_column(output_column, p)

"""Declarative table-to-matrix feature transformation.

The transform-encode step of in-database ML (SystemML's ``transform``,
MADlib's encoding UDFs): a declarative :class:`TransformSpec` names what
to do per column — impute, recode, dummy-code, bin, standardize,
pass through — and a :class:`TableEncoder` fits the metadata on a
training table and applies it consistently to any future table,
producing a numeric design matrix plus the emitted feature names.

>>> spec = TransformSpec(
...     impute={"income": "mean"},
...     dummycode=["city"],
...     bin={"age": 4},
...     standardize=["income"],
... )
>>> encoder = TableEncoder(spec).fit(train_table)
>>> X = encoder.transform(test_table)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..errors import ModelError, NotFittedError, SchemaError
from ..storage.table import Table


@dataclass
class TransformSpec:
    """Per-column transformation declarations.

    A column may appear in ``impute`` plus at most one encoding
    (``recode`` / ``dummycode`` / ``bin`` / ``standardize`` /
    ``passthrough``).
    """

    recode: Sequence[str] = ()
    dummycode: Sequence[str] = ()
    bin: dict[str, int] = field(default_factory=dict)
    standardize: Sequence[str] = ()
    passthrough: Sequence[str] = ()
    impute: dict[str, Any] = field(default_factory=dict)

    def encoded_columns(self) -> list[str]:
        """Columns producing output features, in declaration order."""
        return (
            list(self.recode)
            + list(self.dummycode)
            + list(self.bin)
            + list(self.standardize)
            + list(self.passthrough)
        )

    def validate(self) -> None:
        cols = self.encoded_columns()
        duplicates = sorted({c for c in cols if cols.count(c) > 1})
        if duplicates:
            raise ModelError(
                f"columns with multiple encodings: {duplicates}"
            )
        if not cols:
            raise ModelError("transform spec encodes no columns")
        for column, k in self.bin.items():
            if k < 2:
                raise ModelError(f"bin[{column!r}] must be >= 2, got {k}")


class TableEncoder:
    """Fits and applies a :class:`TransformSpec` to tables."""

    def __init__(self, spec: TransformSpec, allow_unknown: bool = False):
        spec.validate()
        self.spec = spec
        self.allow_unknown = allow_unknown

    # ------------------------------------------------------------------
    def fit(self, table: Table) -> "TableEncoder":
        for column in set(self.spec.encoded_columns()) | set(self.spec.impute):
            if column not in table.schema:
                raise SchemaError(f"table has no column {column!r}")

        self.impute_values_: dict[str, Any] = {}
        for column, strategy in self.spec.impute.items():
            self.impute_values_[column] = self._fit_impute(
                table.column(column), strategy
            )

        work = self._impute(table)
        self.categories_: dict[str, dict[Any, int]] = {}
        for column in list(self.spec.recode) + list(self.spec.dummycode):
            values = work.column(column)
            cats = sorted(set(values.tolist()), key=repr)
            self.categories_[column] = {v: i for i, v in enumerate(cats)}

        self.bin_edges_: dict[str, np.ndarray] = {}
        for column, k in self.spec.bin.items():
            values = work.column(column).astype(np.float64)
            lo, hi = float(values.min()), float(values.max())
            self.bin_edges_[column] = np.linspace(lo, hi, k + 1)[1:-1]

        self.moments_: dict[str, tuple[float, float]] = {}
        for column in self.spec.standardize:
            values = work.column(column).astype(np.float64)
            mean = float(values.mean())
            std = float(values.std()) or 1.0
            self.moments_[column] = (mean, std)

        self.feature_names_ = self._feature_names()
        return self

    def transform(self, table: Table) -> np.ndarray:
        self._check_fitted()
        work = self._impute(table)
        blocks: list[np.ndarray] = []
        for column in self.spec.recode:
            blocks.append(self._recode(work, column).reshape(-1, 1))
        for column in self.spec.dummycode:
            codes = self._recode(work, column)
            width = len(self.categories_[column])
            block = np.zeros((len(work), width))
            valid = codes >= 0
            block[np.nonzero(valid)[0], codes[valid].astype(int)] = 1.0
            blocks.append(block)
        for column in self.spec.bin:
            values = work.column(column).astype(np.float64)
            codes = np.searchsorted(
                self.bin_edges_[column], values, side="right"
            )
            blocks.append(codes.astype(np.float64).reshape(-1, 1))
        for column in self.spec.standardize:
            mean, std = self.moments_[column]
            values = work.column(column).astype(np.float64)
            blocks.append(((values - mean) / std).reshape(-1, 1))
        for column in self.spec.passthrough:
            blocks.append(
                work.column(column).astype(np.float64).reshape(-1, 1)
            )
        return np.hstack(blocks) if blocks else np.empty((len(table), 0))

    def fit_transform(self, table: Table) -> np.ndarray:
        return self.fit(table).transform(table)

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not hasattr(self, "feature_names_"):
            raise NotFittedError("TableEncoder must be fitted first")

    def _feature_names(self) -> list[str]:
        names: list[str] = []
        names.extend(f"{c}_code" for c in self.spec.recode)
        for column in self.spec.dummycode:
            inverse = sorted(
                self.categories_[column], key=self.categories_[column].get
            )
            names.extend(f"{column}={v}" for v in inverse)
        names.extend(f"{c}_bin" for c in self.spec.bin)
        names.extend(f"{c}_z" for c in self.spec.standardize)
        names.extend(self.spec.passthrough)
        return names

    def _fit_impute(self, values: np.ndarray, strategy: Any) -> Any:
        present = _present_mask(values)
        observed = values[present]
        if strategy == "mean":
            return float(observed.astype(np.float64).mean())
        if strategy == "median":
            return float(np.median(observed.astype(np.float64)))
        if strategy == "mode":
            uniques, counts = np.unique(observed.astype(str), return_counts=True)
            winner = uniques[int(np.argmax(counts))]
            # Preserve the original value object where possible.
            for v in observed:
                if str(v) == winner:
                    return v
            return winner
        # Any other value is a constant fill.
        return strategy

    def _impute(self, table: Table) -> Table:
        for column, fill in getattr(self, "impute_values_", {}).items():
            values = table.column(column)
            missing = ~_present_mask(values)
            if missing.any():
                filled = values.astype(object).copy() if values.dtype == object else values.astype(np.float64).copy()
                filled[missing] = fill
                table = table.with_column(column, filled)
        return table

    def _recode(self, table: Table, column: str) -> np.ndarray:
        mapping = self.categories_[column]
        codes = np.empty(len(table), dtype=np.float64)
        for i, value in enumerate(table.column(column)):
            code = mapping.get(value)
            if code is None:
                if not self.allow_unknown:
                    raise ModelError(
                        f"unknown category {value!r} in column {column!r}"
                    )
                code = -1
            codes[i] = code
        return codes


def _present_mask(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind == "f":
        return ~np.isnan(values)
    if values.dtype == object:
        return np.array([v is not None for v in values], dtype=bool)
    return np.ones(len(values), dtype=bool)

"""Data profiling and outlier detection for ML-bound tables.

'Garbage in, garbage out' is the tutorial's recurring warning: training
data must be profiled and cleaned before it feeds a model. This module
computes per-column profiles (missingness, cardinality, moments, top
values) over the relational substrate and provides the standard
univariate outlier detectors (z-score, IQR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ModelError
from ..storage.schema import ColumnType
from ..storage.table import Table


@dataclass
class ColumnProfile:
    """Summary statistics of one table column."""

    name: str
    ctype: str
    count: int
    missing: int
    distinct: int
    # Numeric-only fields (None for string columns):
    minimum: float | None = None
    maximum: float | None = None
    mean: float | None = None
    std: float | None = None
    # Most frequent value and its count:
    top_value: Any = None
    top_count: int = 0

    @property
    def missing_fraction(self) -> float:
        return self.missing / self.count if self.count else 0.0

    @property
    def is_constant(self) -> bool:
        return self.distinct <= 1

    def describe(self) -> str:
        parts = [
            f"{self.name} ({self.ctype}): n={self.count}",
            f"missing={self.missing}",
            f"distinct={self.distinct}",
        ]
        if self.mean is not None:
            parts.append(
                f"range=[{self.minimum:g}, {self.maximum:g}] "
                f"mean={self.mean:g} std={self.std:g}"
            )
        if self.top_value is not None:
            parts.append(f"top={self.top_value!r} x{self.top_count}")
        return "  ".join(parts)


def profile_column(table: Table, name: str) -> ColumnProfile:
    """Profile a single column."""
    values = table.column(name)
    ctype = table.schema.type_of(name)
    n = len(values)

    if ctype == ColumnType.FLOAT:
        missing_mask = np.isnan(values)
    elif ctype == ColumnType.STR:
        missing_mask = np.array([v is None for v in values], dtype=bool)
    else:
        missing_mask = np.zeros(n, dtype=bool)
    present = values[~missing_mask]

    profile = ColumnProfile(
        name=name,
        ctype=ctype.value,
        count=n,
        missing=int(missing_mask.sum()),
        distinct=len(set(present.tolist())),
    )
    if ctype in (ColumnType.INT, ColumnType.FLOAT, ColumnType.BOOL) and len(present):
        numeric = present.astype(np.float64)
        profile.minimum = float(numeric.min())
        profile.maximum = float(numeric.max())
        profile.mean = float(numeric.mean())
        profile.std = float(numeric.std())
    if len(present):
        uniques, counts = np.unique(present.astype(str), return_counts=True)
        winner = int(np.argmax(counts))
        # Recover an original-typed instance of the winning value.
        target = uniques[winner]
        for v in present:
            if str(v) == target:
                profile.top_value = v
                break
        profile.top_count = int(counts[winner])
    return profile


def profile_table(table: Table) -> list[ColumnProfile]:
    """Profiles for every column of a table."""
    return [profile_column(table, name) for name in table.schema.names]


def detect_outliers(
    values: np.ndarray, method: str = "zscore", threshold: float | None = None
) -> np.ndarray:
    """Boolean mask of univariate outliers.

    Args:
        method: ``"zscore"`` (|z| > threshold, default 3.0) or ``"iqr"``
            (outside [Q1 - t*IQR, Q3 + t*IQR], default t = 1.5).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ModelError(f"values must be 1-D, got shape {values.shape}")
    finite = np.isfinite(values)
    out = np.zeros(len(values), dtype=bool)
    observed = values[finite]
    if len(observed) == 0:
        return out

    if method == "zscore":
        threshold = 3.0 if threshold is None else threshold
        std = observed.std()
        if std == 0:
            return out
        z = np.abs((values - observed.mean()) / std)
        out[finite] = z[finite] > threshold
        return out
    if method == "iqr":
        threshold = 1.5 if threshold is None else threshold
        q1, q3 = np.percentile(observed, [25, 75])
        iqr = q3 - q1
        lo, hi = q1 - threshold * iqr, q3 + threshold * iqr
        out[finite] = (values[finite] < lo) | (values[finite] > hi)
        return out
    raise ModelError(f"unknown outlier method {method!r}")


def training_data_report(table: Table, label_column: str | None = None) -> str:
    """A readable pre-training data-quality report.

    Flags the classic ML data hazards the tutorial lists: missing
    values, constant columns, extreme cardinality, and (for a label
    column) class imbalance.
    """
    lines = [f"rows: {table.num_rows}, columns: {table.num_columns}"]
    for profile in profile_table(table):
        flags = []
        if profile.missing:
            flags.append(f"MISSING {profile.missing_fraction:.1%}")
        if profile.is_constant:
            flags.append("CONSTANT")
        if (
            profile.ctype == "str"
            and profile.count
            and profile.distinct > 0.5 * profile.count
        ):
            flags.append("HIGH-CARDINALITY")
        suffix = f"   [{', '.join(flags)}]" if flags else ""
        lines.append(profile.describe() + suffix)
    if label_column is not None:
        values = table.column(label_column)
        uniques, counts = np.unique(values.astype(str), return_counts=True)
        ratios = counts / counts.sum()
        lines.append(
            "label balance: "
            + ", ".join(f"{u}={r:.1%}" for u, r in zip(uniques, ratios))
        )
        if ratios.min() < 0.1:
            lines.append("WARNING: minority class below 10% — consider "
                         "re-sampling or class weighting")
    return "\n".join(lines)

"""Training/serving drift detection.

Models degrade silently when serving data drifts from training data.
This module compares two tables column-by-column — histogram distance
for numeric columns, category-frequency distance for strings, missing
rates for both — and produces a report with per-column drift scores in
[0, 1], flagged against a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SchemaError
from ..storage.schema import ColumnType
from ..storage.table import Table

DEFAULT_THRESHOLD = 0.2
_BUCKETS = 20


@dataclass
class ColumnDrift:
    """Drift assessment for one column."""

    name: str
    score: float  # total-variation-style distance in [0, 1]
    drifted: bool
    detail: str


@dataclass
class DriftReport:
    """Per-column drift plus summary helpers."""

    columns: list[ColumnDrift] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def drifted_columns(self) -> list[str]:
        return [c.name for c in self.columns if c.drifted]

    @property
    def any_drift(self) -> bool:
        return bool(self.drifted_columns)

    def describe(self) -> str:
        lines = []
        for c in sorted(self.columns, key=lambda c: -c.score):
            flag = "  DRIFT" if c.drifted else ""
            lines.append(f"{c.name:<20} score={c.score:.3f}  {c.detail}{flag}")
        return "\n".join(lines)


def detect_drift(
    train: Table,
    serve: Table,
    columns: list[str] | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> DriftReport:
    """Compare serving data against training data, column by column.

    Numeric columns: total-variation distance between histograms built
    on the union range. String columns: half the L1 distance between
    category frequency vectors (categories absent on one side count
    fully). Missing-rate changes add to the score.
    """
    if columns is None:
        columns = [n for n in train.schema.names if n in serve.schema]
    report = DriftReport(threshold=threshold)
    for name in columns:
        if name not in train.schema or name not in serve.schema:
            raise SchemaError(f"column {name!r} missing from one table")
        ctype = train.schema.type_of(name)
        if ctype in (ColumnType.INT, ColumnType.FLOAT, ColumnType.BOOL):
            drift = _numeric_drift(
                train.column(name).astype(np.float64),
                serve.column(name).astype(np.float64),
                name,
            )
        else:
            drift = _categorical_drift(
                train.column(name), serve.column(name), name
            )
        drift.drifted = drift.score > threshold
        report.columns.append(drift)
    return report


def _numeric_drift(a: np.ndarray, b: np.ndarray, name: str) -> ColumnDrift:
    a_ok = a[np.isfinite(a)]
    b_ok = b[np.isfinite(b)]
    missing_gap = abs(
        (1 - len(a_ok) / max(len(a), 1)) - (1 - len(b_ok) / max(len(b), 1))
    )
    if len(a_ok) == 0 or len(b_ok) == 0:
        return ColumnDrift(name, 1.0, True, "one side entirely missing")
    lo = min(a_ok.min(), b_ok.min())
    hi = max(a_ok.max(), b_ok.max())
    if lo == hi:
        distance = 0.0
    else:
        edges = np.linspace(lo, hi, _BUCKETS + 1)
        pa, _ = np.histogram(a_ok, bins=edges)
        pb, _ = np.histogram(b_ok, bins=edges)
        pa = pa / pa.sum()
        pb = pb / pb.sum()
        distance = 0.5 * float(np.abs(pa - pb).sum())
    score = min(1.0, distance + missing_gap)
    detail = (
        f"train mean {a_ok.mean():.3g} vs serve mean {b_ok.mean():.3g}"
    )
    return ColumnDrift(name, score, False, detail)


def _categorical_drift(a: np.ndarray, b: np.ndarray, name: str) -> ColumnDrift:
    def frequencies(values: np.ndarray) -> dict:
        present = [v for v in values.tolist() if v is not None]
        if not present:
            return {}
        out: dict = {}
        for v in present:
            out[v] = out.get(v, 0) + 1
        total = len(present)
        return {k: c / total for k, c in out.items()}

    fa = frequencies(a)
    fb = frequencies(b)
    if not fa or not fb:
        return ColumnDrift(name, 1.0, True, "one side entirely missing")
    keys = set(fa) | set(fb)
    distance = 0.5 * sum(abs(fa.get(k, 0.0) - fb.get(k, 0.0)) for k in keys)
    new_categories = sorted(set(fb) - set(fa))
    detail = (
        f"{len(keys)} categories"
        + (f", new at serving: {new_categories[:3]}" if new_categories else "")
    )
    return ColumnDrift(name, float(distance), False, detail)

"""Training/serving drift detection.

Models degrade silently when serving data drifts from training data.
This module compares two tables column-by-column — histogram distance
for numeric columns, category-frequency distance for strings, missing
rates for both — and produces a report with per-column drift scores in
[0, 1], flagged against a threshold.

Two modes:

* **Batch** (:func:`detect_drift`) — both tables in hand; the flagging
  score is the original total-variation-style distance, with PSI and KS
  reported alongside on every numeric column.
* **Streaming** (:class:`StreamingDriftMonitor`) — bucket edges are
  frozen over the training data (:func:`frozen_edges`, a deterministic
  ``linspace`` — no quantile randomness, so two identical runs freeze
  identical edges), then serving values are accumulated one at a time
  into fixed bucket counts. PSI, KS, and TV are exact functions of the
  (reference, accumulated) count vectors at any instant, so a gate can
  replay them against an analytic oracle. The monitor can also fold the
  retained window of a :class:`repro.obs.Histogram`, so serving-side
  metrics already being collected feed drift detection for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import SchemaError
from ..storage.schema import ColumnType
from ..storage.table import Table

DEFAULT_THRESHOLD = 0.2
#: the conventional PSI alarm level ("significant shift" >= 0.25).
PSI_DEFAULT_THRESHOLD = 0.25
#: KS statistic alarm level over the frozen buckets.
KS_DEFAULT_THRESHOLD = 0.25
_BUCKETS = 20
#: probability floor for PSI (empty buckets would make it infinite).
_PSI_EPSILON = 1e-6


@dataclass
class ColumnDrift:
    """Drift assessment for one column.

    ``score`` (the flagging metric) keeps its original TV-style
    definition; ``psi`` and ``ks`` ride alongside for numeric columns
    (``psi`` also for categoricals, over category frequencies).
    """

    name: str
    score: float  # total-variation-style distance in [0, 1]
    drifted: bool
    detail: str
    psi: float = 0.0
    ks: float = 0.0


@dataclass
class DriftReport:
    """Per-column drift plus summary helpers."""

    columns: list[ColumnDrift] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def drifted_columns(self) -> list[str]:
        return [c.name for c in self.columns if c.drifted]

    @property
    def any_drift(self) -> bool:
        return bool(self.drifted_columns)

    def describe(self) -> str:
        lines = []
        for c in sorted(self.columns, key=lambda c: -c.score):
            flag = "  DRIFT" if c.drifted else ""
            lines.append(f"{c.name:<20} score={c.score:.3f}  {c.detail}{flag}")
        return "\n".join(lines)


def detect_drift(
    train: Table,
    serve: Table,
    columns: list[str] | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> DriftReport:
    """Compare serving data against training data, column by column.

    Numeric columns: total-variation distance between histograms built
    on the union range. String columns: half the L1 distance between
    category frequency vectors (categories absent on one side count
    fully). Missing-rate changes add to the score.
    """
    if columns is None:
        columns = [n for n in train.schema.names if n in serve.schema]
    report = DriftReport(threshold=threshold)
    for name in columns:
        if name not in train.schema or name not in serve.schema:
            raise SchemaError(f"column {name!r} missing from one table")
        ctype = train.schema.type_of(name)
        if ctype in (ColumnType.INT, ColumnType.FLOAT, ColumnType.BOOL):
            drift = _numeric_drift(
                train.column(name).astype(np.float64),
                serve.column(name).astype(np.float64),
                name,
            )
        else:
            drift = _categorical_drift(
                train.column(name), serve.column(name), name
            )
        drift.drifted = drift.score > threshold
        report.columns.append(drift)
    return report


def _numeric_drift(a: np.ndarray, b: np.ndarray, name: str) -> ColumnDrift:
    a_ok = a[np.isfinite(a)]
    b_ok = b[np.isfinite(b)]
    missing_gap = abs(
        (1 - len(a_ok) / max(len(a), 1)) - (1 - len(b_ok) / max(len(b), 1))
    )
    if len(a_ok) == 0 or len(b_ok) == 0:
        return ColumnDrift(name, 1.0, True, "one side entirely missing")
    lo = min(a_ok.min(), b_ok.min())
    hi = max(a_ok.max(), b_ok.max())
    if lo == hi:
        distance = psi = ks = 0.0
    else:
        edges = np.linspace(lo, hi, _BUCKETS + 1)
        pa = bucket_counts(a_ok, edges)
        pb = bucket_counts(b_ok, edges)
        distance = tv_statistic(pa, pb)
        psi = psi_statistic(pa, pb)
        ks = ks_statistic(pa, pb)
    score = min(1.0, distance + missing_gap)
    detail = (
        f"train mean {a_ok.mean():.3g} vs serve mean {b_ok.mean():.3g}"
    )
    return ColumnDrift(name, score, False, detail, psi=psi, ks=ks)


def _categorical_drift(a: np.ndarray, b: np.ndarray, name: str) -> ColumnDrift:
    def frequencies(values: np.ndarray) -> dict:
        present = [v for v in values.tolist() if v is not None]
        if not present:
            return {}
        out: dict = {}
        for v in present:
            out[v] = out.get(v, 0) + 1
        total = len(present)
        return {k: c / total for k, c in out.items()}

    fa = frequencies(a)
    fb = frequencies(b)
    if not fa or not fb:
        return ColumnDrift(name, 1.0, True, "one side entirely missing")
    keys = sorted(set(fa) | set(fb), key=str)
    distance = 0.5 * sum(abs(fa.get(k, 0.0) - fb.get(k, 0.0)) for k in keys)
    psi = psi_statistic(
        np.array([fa.get(k, 0.0) for k in keys]),
        np.array([fb.get(k, 0.0) for k in keys]),
    )
    new_categories = sorted(set(fb) - set(fa))
    detail = (
        f"{len(keys)} categories"
        + (f", new at serving: {new_categories[:3]}" if new_categories else "")
    )
    return ColumnDrift(name, float(distance), False, detail, psi=psi)


# ----------------------------------------------------------------------
# Frozen-bucket primitives (shared by batch and streaming paths)
# ----------------------------------------------------------------------
def frozen_edges(reference, buckets: int = _BUCKETS) -> np.ndarray:
    """Deterministic train-time bucket edges over a reference sample.

    A ``linspace`` over the finite range — pure content, no quantile
    estimation, so the same training bytes always freeze the same
    edges. A constant reference gets a unit-wide span around its value
    so later observations still land in well-defined buckets.
    """
    arr = np.asarray(reference, dtype=np.float64).ravel()
    ok = arr[np.isfinite(arr)]
    if ok.size == 0:
        raise SchemaError(
            "cannot freeze bucket edges: reference has no finite values"
        )
    lo, hi = float(ok.min()), float(ok.max())
    if lo == hi:
        lo, hi = lo - 0.5, hi + 0.5
    return np.linspace(lo, hi, buckets + 1)


def bucket_counts(values, edges: np.ndarray) -> np.ndarray:
    """Counts per frozen bucket; out-of-range values clip into the end
    buckets (frozen edges must absorb covariate shift, not drop it)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    ok = arr[np.isfinite(arr)]
    counts = np.zeros(len(edges) - 1, dtype=np.float64)
    if ok.size == 0:
        return counts
    idx = np.searchsorted(edges, np.clip(ok, edges[0], edges[-1]), side="right") - 1
    np.add.at(counts, np.clip(idx, 0, len(edges) - 2), 1.0)
    return counts


def _smoothed_probs(counts: np.ndarray, epsilon: float) -> np.ndarray:
    total = counts.sum()
    if total <= 0:
        return np.full(len(counts), 1.0 / len(counts))
    probs = np.clip(counts / total, epsilon, None)
    return probs / probs.sum()


def psi_statistic(
    reference_counts: np.ndarray,
    current_counts: np.ndarray,
    epsilon: float = _PSI_EPSILON,
) -> float:
    """Population stability index over two aligned count vectors:
    ``sum((p - q) * ln(p / q))`` with epsilon-smoothed probabilities."""
    p = _smoothed_probs(np.asarray(reference_counts, dtype=np.float64), epsilon)
    q = _smoothed_probs(np.asarray(current_counts, dtype=np.float64), epsilon)
    return float(np.sum((p - q) * np.log(p / q)))


def ks_statistic(
    reference_counts: np.ndarray, current_counts: np.ndarray
) -> float:
    """Kolmogorov-Smirnov statistic over the frozen buckets: the max
    absolute CDF gap evaluated at the bucket edges (unsmoothed)."""
    p = np.asarray(reference_counts, dtype=np.float64)
    q = np.asarray(current_counts, dtype=np.float64)
    if p.sum() <= 0 or q.sum() <= 0:
        return 0.0
    return float(np.max(np.abs(np.cumsum(p) / p.sum() - np.cumsum(q) / q.sum())))


def tv_statistic(
    reference_counts: np.ndarray, current_counts: np.ndarray
) -> float:
    """Total-variation distance between two aligned count vectors (the
    original batch drift score, exposed for the streaming path)."""
    p = np.asarray(reference_counts, dtype=np.float64)
    q = np.asarray(current_counts, dtype=np.float64)
    if p.sum() <= 0 or q.sum() <= 0:
        return 0.0
    return 0.5 * float(np.abs(p / p.sum() - q / q.sum()).sum())


@dataclass(frozen=True)
class DriftStats:
    """One monitor's statistics at a point in time."""

    name: str
    observed: int
    psi: float
    ks: float
    tv: float
    drifted: bool


class StreamingDriftMonitor:
    """Incremental drift statistics against a frozen training reference.

    Bucket edges are frozen at construction (train) time; every serving
    observation is O(1) — one ``searchsorted`` into the frozen edges and
    a bucket increment. PSI/KS/TV are recomputed exactly from the two
    count vectors on demand, so the monitor's numbers are replayable:
    an oracle holding the same observation list and the same frozen
    edges computes identical statistics.
    """

    def __init__(
        self,
        name: str,
        reference,
        buckets: int = _BUCKETS,
        epsilon: float = _PSI_EPSILON,
        psi_threshold: float = PSI_DEFAULT_THRESHOLD,
        ks_threshold: float = KS_DEFAULT_THRESHOLD,
    ):
        self.name = name
        self.epsilon = float(epsilon)
        self.psi_threshold = float(psi_threshold)
        self.ks_threshold = float(ks_threshold)
        self.edges = frozen_edges(reference, buckets)
        self.reference_counts = bucket_counts(reference, self.edges)
        self.counts = np.zeros(len(self.edges) - 1, dtype=np.float64)
        self.observed = 0
        self._histogram_folded = 0

    def observe(self, value: float) -> None:
        """Fold one serving-side observation into the bucket counts."""
        self.observe_many((value,))

    def observe_many(self, values: Iterable[float]) -> int:
        """Fold a batch of observations; returns how many were finite."""
        counts = bucket_counts(np.fromiter(
            (float(v) for v in values), dtype=np.float64
        ), self.edges)
        folded = int(counts.sum())
        self.counts += counts
        self.observed += folded
        return folded

    def fold_histogram(self, histogram) -> int:
        """Fold the *new* observations of a :class:`repro.obs.Histogram`.

        Tracks the histogram's total count between calls and folds the
        most recent unfolded samples from its retained window (the ring
        holds the last 512; older unfolded observations are lost, which
        is the documented reservoir trade-off). Returns samples folded.
        """
        new = histogram.count - self._histogram_folded
        if new <= 0:
            return 0
        window = histogram.samples()
        take = min(new, len(window))
        folded = self.observe_many(window[len(window) - take:])
        self._histogram_folded = histogram.count
        return folded

    def psi(self) -> float:
        return psi_statistic(self.reference_counts, self.counts, self.epsilon)

    def ks(self) -> float:
        return ks_statistic(self.reference_counts, self.counts)

    def tv(self) -> float:
        return tv_statistic(self.reference_counts, self.counts)

    def drifted(self) -> bool:
        """Has either streaming statistic crossed its threshold?"""
        if self.observed == 0:
            return False
        return self.psi() > self.psi_threshold or self.ks() > self.ks_threshold

    def reset(self) -> None:
        """Clear the accumulated serving counts (edges stay frozen)."""
        self.counts[:] = 0.0
        self.observed = 0
        self._histogram_folded = 0

    def snapshot(self) -> DriftStats:
        return DriftStats(
            name=self.name,
            observed=self.observed,
            psi=self.psi(),
            ks=self.ks(),
            tv=self.tv(),
            drifted=self.drifted(),
        )

"""Feature-subset exploration with sufficient-statistic reuse (Columbus).

Data scientists explore many feature *subsets* of the same table when
building linear models. Solving each subset from scratch costs
O(n k^2) per subset; Columbus's observation is that the full Gram matrix
X'X and correlation vector X'y are *shared sufficient statistics* — once
computed in O(n d^2), every subset's least-squares problem is solved from
the corresponding submatrices in O(k^3), independent of n.

:class:`FeatureSubsetExplorer` implements that reuse; the naive path and
greedy stepwise selection on top of it complete experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SelectionError


@dataclass
class SubsetFit:
    """Least-squares solution for one feature subset."""

    columns: tuple[int, ...]
    coef: np.ndarray
    intercept: float
    r_squared: float


class FeatureSubsetExplorer:
    """Shared-statistics least squares over feature subsets.

    Statistics are computed on *centered* data, so every subset solve
    implicitly fits an (unpenalized) intercept — matching what analysts
    expect from per-subset R^2 comparisons.

    Args:
        l2: optional ridge penalty applied to every subset solve.
    """

    def __init__(self, X: np.ndarray, y: np.ndarray, l2: float = 0.0):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise SelectionError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise SelectionError(f"X has {len(X)} rows but y has {len(y)}")
        self.n, self.d = X.shape
        self.l2 = l2
        self.x_mean_ = X.mean(axis=0)
        self.y_mean_ = float(y.mean())
        Xc = X - self.x_mean_
        yc = y - self.y_mean_
        # The one-time O(n d^2) pass every subsequent solve reuses.
        self.gram_ = Xc.T @ Xc
        self.xty_ = Xc.T @ yc
        self.total_ss_ = float(yc @ yc)

    def solve_subset(self, columns: Sequence[int]) -> SubsetFit:
        """Least squares restricted to ``columns``, from cached statistics."""
        cols = self._check_columns(columns)
        gram = self.gram_[np.ix_(cols, cols)]
        if self.l2 > 0:
            gram = gram + self.l2 * np.eye(len(cols))
        rhs = self.xty_[cols]
        try:
            coef = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            coef = np.linalg.pinv(gram) @ rhs
        # Residual SS from statistics alone: y'y - 2 w'X'y + w'X'X w
        # (all centered).
        residual_ss = (
            self.total_ss_
            - 2.0 * float(coef @ rhs)
            + float(coef @ self.gram_[np.ix_(cols, cols)] @ coef)
        )
        intercept = self.y_mean_ - float(self.x_mean_[cols] @ coef)
        return SubsetFit(
            columns=tuple(cols),
            coef=coef,
            intercept=intercept,
            r_squared=self._r_squared(residual_ss),
        )

    def _r_squared(self, residual_ss: float) -> float:
        if self.total_ss_ == 0.0:
            return 1.0 if residual_ss <= 1e-12 else 0.0
        return 1.0 - max(residual_ss, 0.0) / self.total_ss_

    def _check_columns(self, columns: Sequence[int]) -> list[int]:
        cols = list(dict.fromkeys(int(c) for c in columns))
        if not cols:
            raise SelectionError("subset must contain at least one column")
        bad = [c for c in cols if not 0 <= c < self.d]
        if bad:
            raise SelectionError(f"column indices out of range: {bad}")
        return cols

    # ------------------------------------------------------------------
    # Exploration strategies built on the shared statistics
    # ------------------------------------------------------------------
    def forward_selection(
        self, max_features: int | None = None, min_gain: float = 1e-6
    ) -> list[SubsetFit]:
        """Greedy stepwise selection: add the feature with best R^2 gain.

        Returns the fit after each accepted step. Every candidate probe
        is an O(k^3) submatrix solve — the Columbus win is that a full
        stepwise run touches the data exactly once (in __init__).
        """
        limit = self.d if max_features is None else min(max_features, self.d)
        selected: list[int] = []
        trail: list[SubsetFit] = []
        current_r2 = 0.0
        while len(selected) < limit:
            best_fit = None
            for candidate in range(self.d):
                if candidate in selected:
                    continue
                fit = self.solve_subset(selected + [candidate])
                if best_fit is None or fit.r_squared > best_fit.r_squared:
                    best_fit = fit
            if best_fit is None or best_fit.r_squared - current_r2 < min_gain:
                break
            selected = list(best_fit.columns)
            current_r2 = best_fit.r_squared
            trail.append(best_fit)
        return trail


def solve_subset_naive(
    X: np.ndarray, y: np.ndarray, columns: Sequence[int], l2: float = 0.0
) -> SubsetFit:
    """The no-reuse baseline: recompute the subset solve from raw data.

    Costs O(n k^2) per call — what exploration pays without Columbus.
    Fits an intercept via centering, like the explorer.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    cols = list(dict.fromkeys(int(c) for c in columns))
    Xs = X[:, cols]
    x_mean = Xs.mean(axis=0)
    y_mean = float(y.mean())
    Xc = Xs - x_mean
    yc = y - y_mean
    gram = Xc.T @ Xc
    if l2 > 0:
        gram = gram + l2 * np.eye(len(cols))
    try:
        coef = np.linalg.solve(gram, Xc.T @ yc)
    except np.linalg.LinAlgError:
        coef = np.linalg.pinv(gram) @ (Xc.T @ yc)
    residual = yc - Xc @ coef
    total = float(yc @ yc)
    r2 = 1.0 - float(residual @ residual) / total if total else 1.0
    return SubsetFit(
        columns=tuple(cols),
        coef=coef,
        intercept=y_mean - float(x_mean @ coef),
        r_squared=r2,
    )

"""Transformation pipelines with provenance.

A :class:`Pipeline` chains named fit/transform steps (optionally ending
in an estimator) and records a :class:`ProvenanceRecord` per step at fit
time — what ran, in what order, over data of what shape — the minimal
lineage the tutorial's lifecycle discussion calls for so a model's
training features are reconstructible.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ModelError, NotFittedError
from ..ml.base import Estimator


@dataclass
class ProvenanceRecord:
    """Lineage entry for one fitted pipeline step."""

    step: str
    transform: str
    params: dict[str, Any]
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]


@dataclass
class Provenance:
    """Ordered lineage of an entire pipeline fit."""

    records: list[ProvenanceRecord] = field(default_factory=list)

    def describe(self) -> str:
        lines = []
        for r in self.records:
            lines.append(
                f"{r.step}: {r.transform}{r.params} "
                f"{r.input_shape} -> {r.output_shape}"
            )
        return "\n".join(lines)


class Pipeline(Estimator):
    """A chain of (name, transformer) steps, optionally ending in a model.

    Transformers expose fit/transform; the final step may instead expose
    fit/predict (an estimator), in which case the pipeline itself
    predicts and scores.
    """

    def __init__(self, steps: list[tuple[str, Any]]):
        if not steps:
            raise ModelError("pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate step names in {names}")
        self.steps = steps

    @property
    def _final(self) -> Any:
        return self.steps[-1][1]

    @property
    def _has_estimator(self) -> bool:
        last = self._final
        return hasattr(last, "predict") and not hasattr(last, "transform")

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "Pipeline":
        provenance = Provenance()
        data = X
        transform_steps = (
            self.steps[:-1] if self._has_estimator else self.steps
        )
        for name, step in transform_steps:
            in_shape = np.asarray(data).shape
            data = step.fit_transform(data, y) if hasattr(
                step, "fit_transform"
            ) else step.fit(data, y).transform(data)
            provenance.records.append(
                ProvenanceRecord(
                    step=name,
                    transform=type(step).__name__,
                    params=_params_of(step),
                    input_shape=in_shape,
                    output_shape=np.asarray(data).shape,
                )
            )
        if self._has_estimator:
            name, model = self.steps[-1]
            in_shape = np.asarray(data).shape
            model.fit(data, y)
            provenance.records.append(
                ProvenanceRecord(
                    step=name,
                    transform=type(model).__name__,
                    params=_params_of(model),
                    input_shape=in_shape,
                    output_shape=(),
                )
            )
        self.provenance_ = provenance
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = X
        transform_steps = (
            self.steps[:-1] if self._has_estimator else self.steps
        )
        for _, step in transform_steps:
            data = step.transform(data)
        return data

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        if self._has_estimator:
            raise ModelError(
                "pipeline ends in an estimator; use fit + predict"
            )
        return self.fit(X, y).transform(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        if not self._has_estimator:
            raise ModelError("pipeline has no final estimator")
        return self._final.predict(self.transform_features(X))

    def transform_features(self, X: np.ndarray) -> np.ndarray:
        """Apply all transformer steps (excluding the final estimator)."""
        self._check_fitted()
        data = X
        for _, step in self.steps[:-1] if self._has_estimator else self.steps:
            data = step.transform(data)
        return data

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        self._check_fitted()
        if not self._has_estimator:
            raise ModelError("pipeline has no final estimator")
        return self._final.score(self.transform_features(X), y)

    def _check_fitted(self) -> None:
        if not hasattr(self, "provenance_"):
            raise NotFittedError("pipeline must be fitted first")

    def get_params(self) -> dict[str, Any]:
        return {"steps": self.steps}

    def clone(self) -> "Pipeline":
        cloned = []
        for name, step in self.steps:
            if hasattr(step, "clone"):
                cloned.append((name, step.clone()))
            else:
                cloned.append((name, type(step)(**_params_of(step))))
        return Pipeline(cloned)


def _params_of(step: Any) -> dict[str, Any]:
    if hasattr(step, "get_params"):
        try:
            params = dict(step.get_params())
        except Exception:
            return {}
        try:
            # Snapshot, don't alias: provenance records live past fit,
            # and a caller mutating a params dict afterwards must not
            # silently rewrite recorded lineage.
            return copy.deepcopy(params)
        except Exception:
            return params
    return {}

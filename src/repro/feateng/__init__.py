"""Feature-engineering management: Columbus-style subset exploration and
provenance-tracking transformation pipelines."""

from .columbus import FeatureSubsetExplorer, SubsetFit, solve_subset_naive
from .drift import (
    ColumnDrift,
    DriftReport,
    DriftStats,
    StreamingDriftMonitor,
    bucket_counts,
    detect_drift,
    frozen_edges,
    ks_statistic,
    psi_statistic,
    tv_statistic,
)
from .pipeline import Pipeline, Provenance, ProvenanceRecord
from .profiling import (
    ColumnProfile,
    detect_outliers,
    profile_column,
    profile_table,
    training_data_report,
)
from .transform import TableEncoder, TransformSpec

__all__ = [
    "ColumnDrift",
    "ColumnProfile",
    "DriftReport",
    "DriftStats",
    "FeatureSubsetExplorer",
    "Pipeline",
    "Provenance",
    "ProvenanceRecord",
    "StreamingDriftMonitor",
    "SubsetFit",
    "TableEncoder",
    "TransformSpec",
    "bucket_counts",
    "detect_drift",
    "detect_outliers",
    "frozen_edges",
    "ks_statistic",
    "profile_column",
    "profile_table",
    "psi_statistic",
    "solve_subset_naive",
    "training_data_report",
    "tv_statistic",
]

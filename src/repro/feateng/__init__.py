"""Feature-engineering management: Columbus-style subset exploration and
provenance-tracking transformation pipelines."""

from .columbus import FeatureSubsetExplorer, SubsetFit, solve_subset_naive
from .drift import ColumnDrift, DriftReport, detect_drift
from .pipeline import Pipeline, Provenance, ProvenanceRecord
from .profiling import (
    ColumnProfile,
    detect_outliers,
    profile_column,
    profile_table,
    training_data_report,
)
from .transform import TableEncoder, TransformSpec

__all__ = [
    "ColumnDrift",
    "ColumnProfile",
    "DriftReport",
    "FeatureSubsetExplorer",
    "Pipeline",
    "Provenance",
    "ProvenanceRecord",
    "SubsetFit",
    "TableEncoder",
    "TransformSpec",
    "detect_drift",
    "detect_outliers",
    "profile_column",
    "profile_table",
    "solve_subset_naive",
    "training_data_report",
]

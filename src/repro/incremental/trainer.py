"""Continuous retraining: change stream -> aggregates -> ``promote``.

The :class:`ContinuousTrainer` closes the streaming loop. It drains the
maintainer, and every ``refresh_every`` applied table versions solves
fresh ridge weights from the maintained gram/cofactor state — the same
``solve(X'X + l2*I, X'y)`` expression a snapshot retrain evaluates, at
O(d^3) instead of O(n * d^2) — registers the result as a new model
version (with lineage back to the version it supersedes), and hot-swaps
it into the :class:`~repro.serving.server.ModelServer` through the
existing ``promote`` alias path. Promotion eagerly invalidates the
endpoint's prediction cache and compiled scorers, so in-flight requests
finish on the old version and the next request scores on the refreshed
one.
"""

from __future__ import annotations

import numpy as np

from ..lifecycle.registry import ModelRegistry, ModelVersion
from ..ml.linreg import LinearRegression
from ..obs import get_registry
from .maintainer import IncrementalMaintainer


class CentroidModel:
    """Minimal fitted clustering model built from maintained statistics."""

    def __init__(self, cluster_centers: np.ndarray):
        self.cluster_centers_ = np.asarray(cluster_centers, dtype=np.float64)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-center labels (same expression the maintainer uses)."""
        X = np.asarray(X, dtype=np.float64)
        x_sq = np.einsum("ij,ij->i", X, X)
        cross = X @ self.cluster_centers_.T
        c_sq = np.einsum(
            "ij,ij->i", self.cluster_centers_, self.cluster_centers_
        )
        d2 = np.maximum(x_sq[:, None] - 2.0 * cross + c_sq, 0.0)
        return np.argmin(d2, axis=1).astype(np.float64)


class ContinuousTrainer:
    """Drives model refreshes from a maintained change stream.

    Args:
        maintainer: the aggregate maintainer to drain and read.
        registry: where refreshed versions are registered.
        model_name: registry name for the regression model.
        l2: ridge penalty used at every refresh.
        refresh_every: refresh once at least this many new table
            versions have been applied since the last refresh.
        server / endpoint: when given, every refresh is promoted to the
            endpoint's stable alias (cache eagerly invalidated).
    """

    def __init__(
        self,
        maintainer: IncrementalMaintainer,
        registry: ModelRegistry,
        model_name: str = "incremental-ridge",
        l2: float = 0.0,
        refresh_every: int = 1,
        server=None,
        endpoint: str | None = None,
    ):
        self.maintainer = maintainer
        self.registry = registry
        self.model_name = model_name
        self.l2 = l2
        self.refresh_every = max(1, refresh_every)
        self.server = server
        self.endpoint = endpoint
        self.refreshes = 0
        self.last_refresh_version = maintainer.applied_version
        self.latest: ModelVersion | None = None
        self.centroids_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def step(self) -> ModelVersion | None:
        """Drain pending deltas; refresh + promote when due."""
        self.maintainer.drain()
        behind = self.maintainer.applied_version - self.last_refresh_version
        if behind >= self.refresh_every:
            return self.refresh()
        return None

    def refresh(self) -> ModelVersion:
        """Solve, register, and (when wired) promote a new version."""
        state = self.maintainer.gram_state
        weights = state.solve_ridge(self.l2)
        model = LinearRegression(
            solver="normal", l2=self.l2, fit_intercept=False
        )
        # Fitted attributes set directly from the maintained aggregates —
        # identical to what fit() on the full snapshot would produce.
        model.coef_ = weights
        model.intercept_ = 0.0
        entry = self.registry.register(
            self.model_name,
            model,
            params={
                "l2": self.l2,
                "table_version": self.maintainer.applied_version,
                "source": "incremental",
            },
            metrics={"n_rows": float(state.n_rows)},
            parent_version=(
                self.latest.version if self.latest is not None else None
            ),
        )
        if self.maintainer.centroid_state is not None:
            self.centroids_ = self.maintainer.centroid_state.centroids()
            self.registry.register(
                f"{self.model_name}-centroids",
                CentroidModel(self.centroids_),
                params={"table_version": self.maintainer.applied_version},
            )
        if self.server is not None and self.endpoint is not None:
            self.server.promote(self.endpoint, entry.version)
        self.latest = entry
        self.refreshes += 1
        self.last_refresh_version = self.maintainer.applied_version
        get_registry().inc("incremental.refreshes")
        return entry

"""Typed change streams over versioned dynamic tables.

The storage layer's tables are immutable; this module adds the one
mutable citizen the streaming workload needs. A :class:`DynamicTable`
is a :class:`~repro.storage.table.Table` whose rows can be inserted,
deleted, and updated — every mutation bumps a monotonic ``version``,
rebuilds the column arrays (copy-on-write: the previous arrays are
never touched, so fingerprints memoized on them stay valid), and emits
a typed :class:`Delta` to every subscribed :class:`ChangeStream`.

A delta carries enough payload to be *invertible*: deletes and updates
include the prior row values, so a downstream aggregate can subtract
exactly what was once added. Each delta is stamped with a CRC32
checksum over its payload; :meth:`Delta.verify` is how the maintainer
detects a corrupted delta and falls back to lineage recompute instead
of folding garbage into a model.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import IncrementalError
from ..storage.table import Table, _as_column_array

#: the three delta kinds a change stream carries.
DELTA_KINDS = ("insert", "delete", "update")


def _payload_crc(
    kind: str,
    version: int,
    row_ids: tuple[int, ...],
    rows: Table | None,
    old_rows: Table | None,
) -> int:
    """CRC32 over everything a delta's consumer will fold."""
    crc = zlib.crc32(f"{kind}:{version}".encode("utf-8"))
    crc = zlib.crc32(np.asarray(row_ids, dtype=np.int64).tobytes(), crc)
    for table in (rows, old_rows):
        if table is None:
            crc = zlib.crc32(b"<none>", crc)
            continue
        for name, arr in table.columns().items():
            crc = zlib.crc32(name.encode("utf-8"), crc)
            if arr.dtype == object:
                crc = zlib.crc32(repr(list(arr)).encode("utf-8"), crc)
            else:
                crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


@dataclass(frozen=True)
class Delta:
    """One typed change to a dynamic table.

    Attributes:
        kind: ``"insert"``, ``"delete"``, or ``"update"``.
        version: the table version *after* this delta applied — versions
            are consecutive, so a consumer that sees a gap knows a delta
            was dropped in transit.
        row_ids: stable row identities (never reused) the delta touches.
        rows: new row values (insert/update), aligned with ``row_ids``.
        old_rows: prior row values (delete/update), aligned with
            ``row_ids`` — what an incremental aggregate must subtract.
        checksum: CRC32 over the payload, stamped at emission time.
    """

    kind: str
    version: int
    row_ids: tuple[int, ...]
    rows: Table | None
    old_rows: Table | None
    checksum: int

    @property
    def num_rows(self) -> int:
        return len(self.row_ids)

    def verify(self) -> bool:
        """Does the payload still match the checksum stamped at emit?"""
        return (
            _payload_crc(
                self.kind, self.version, self.row_ids, self.rows, self.old_rows
            )
            == self.checksum
        )

    def corrupted(self) -> "Delta":
        """A copy with one payload value perturbed (checksum kept).

        This is what the ``"corrupt"`` chaos mode hands the maintainer:
        the bytes changed in transit but the stamp did not, so
        :meth:`verify` must catch it.
        """
        source = self.rows if self.rows is not None else self.old_rows
        if source is None or source.num_rows == 0:
            # No payload bytes to flip: corrupt the identity list instead.
            bad_ids = tuple(i + 1 for i in self.row_ids) or (0,)
            return replace(self, row_ids=bad_ids)
        name = source.schema.names[0]
        arr = source.column(name).copy()
        if arr.dtype == object:
            arr[0] = f"{arr[0]}<corrupt>"
        else:
            arr[0] = arr[0] + 1
        bad = source.with_column(name, arr)
        if self.rows is not None:
            return replace(self, rows=bad)
        return replace(self, old_rows=bad)


def _make_delta(
    kind: str,
    version: int,
    row_ids: Sequence[int],
    rows: Table | None,
    old_rows: Table | None,
) -> Delta:
    row_ids = tuple(int(i) for i in row_ids)
    return Delta(
        kind=kind,
        version=version,
        row_ids=row_ids,
        rows=rows,
        old_rows=old_rows,
        checksum=_payload_crc(kind, version, row_ids, rows, old_rows),
    )


class ChangeStream:
    """A thread-safe FIFO of deltas published by one dynamic table."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._deltas: list[Delta] = []
        self.published = 0

    def publish(self, delta: Delta) -> None:
        with self._lock:
            self._deltas.append(delta)
            self.published += 1

    def poll(self) -> Delta | None:
        """Pop the oldest pending delta (None when drained)."""
        with self._lock:
            return self._deltas.pop(0) if self._deltas else None

    def drain(self) -> list[Delta]:
        """Pop every pending delta, oldest first."""
        with self._lock:
            deltas, self._deltas = self._deltas, []
            return deltas

    def drop_next(self) -> Delta | None:
        """Discard the oldest pending delta (simulates a lost message)."""
        return self.poll()

    def pending(self) -> int:
        with self._lock:
            return len(self._deltas)


class DynamicTable(Table):
    """A versioned, mutable table that publishes typed deltas.

    Mutations are copy-on-write: each one rebuilds the backing column
    arrays and bumps :attr:`version`, so any array or :class:`Table`
    handed out earlier (snapshots, fingerprinted operands, cached query
    results) keeps the bytes it was created with. Rows carry stable
    ``row_id`` identities that are never reused, which is what lets a
    delta consumer subtract exactly the rows a delete removed.
    """

    def __init__(self, schema, columns, name: str = "dynamic"):
        super().__init__(schema, columns)
        self.name = name
        self.version = 0
        self._row_ids = np.arange(self._nrows, dtype=np.int64)
        self._next_row_id = self._nrows
        self._streams: list[ChangeStream] = []

    @classmethod
    def from_table(cls, table: Table, name: str = "dynamic") -> "DynamicTable":
        return cls(
            table.schema,
            [arr.copy() for arr in table.columns().values()],
            name=name,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def row_ids(self) -> np.ndarray:
        """Stable identities of the current rows (read-only view)."""
        return self._row_ids

    def snapshot(self) -> Table:
        """An immutable copy of the current state (fresh arrays)."""
        return Table(self._schema, [arr.copy() for arr in self._columns])

    def subscribe(self, stream: ChangeStream | None = None) -> ChangeStream:
        """Attach a stream that receives every future delta."""
        stream = stream if stream is not None else ChangeStream()
        self._streams.append(stream)
        return stream

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, rows: Table | Mapping[str, Sequence[Any]]) -> Delta:
        """Append rows; returns the published insert delta."""
        new = self._coerce_rows(rows)
        if new.num_rows == 0:
            raise IncrementalError("insert requires at least one row")
        ids = np.arange(
            self._next_row_id, self._next_row_id + new.num_rows, dtype=np.int64
        )
        self._next_row_id += new.num_rows
        incoming = new.columns()
        self._columns = [
            np.concatenate([col, incoming[c.name]])
            for c, col in zip(self._schema, self._columns)
        ]
        self._row_ids = np.concatenate([self._row_ids, ids])
        self._nrows += new.num_rows
        return self._emit("insert", ids, rows=new, old_rows=None)

    def delete(self, row_ids: Iterable[int]) -> Delta:
        """Remove rows by identity; returns the published delete delta."""
        ids = np.asarray(list(row_ids), dtype=np.int64)
        if ids.size == 0:
            raise IncrementalError("delete requires at least one row id")
        positions = self._positions(ids)
        old = Table(self._schema, [col[positions] for col in self._columns])
        keep = np.ones(self._nrows, dtype=bool)
        keep[positions] = False
        self._columns = [col[keep] for col in self._columns]
        self._row_ids = self._row_ids[keep]
        self._nrows = int(keep.sum())
        return self._emit("delete", ids, rows=None, old_rows=old)

    def update(
        self, row_ids: Iterable[int], rows: Table | Mapping[str, Sequence[Any]]
    ) -> Delta:
        """Replace rows by identity; returns the published update delta."""
        ids = np.asarray(list(row_ids), dtype=np.int64)
        new = self._coerce_rows(rows)
        if new.num_rows != ids.size or ids.size == 0:
            raise IncrementalError(
                f"update needs one row per id: {new.num_rows} rows "
                f"for {ids.size} ids"
            )
        positions = self._positions(ids)
        old = Table(self._schema, [col[positions] for col in self._columns])
        incoming = new.columns()
        fresh = []
        for c, col in zip(self._schema, self._columns):
            col = col.copy()
            col[positions] = incoming[c.name]
            fresh.append(col)
        self._columns = fresh
        return self._emit("update", ids, rows=new, old_rows=old)

    # ------------------------------------------------------------------
    def _coerce_rows(self, rows: Table | Mapping[str, Sequence[Any]]) -> Table:
        if not isinstance(rows, Table):
            rows = Table(
                self._schema,
                [_as_column_array(rows[c.name]) for c in self._schema],
            )
        if rows.schema != self._schema:
            raise IncrementalError(
                f"delta schema {rows.schema!r} != table schema {self._schema!r}"
            )
        return rows

    def _positions(self, ids: np.ndarray) -> np.ndarray:
        index = {int(rid): pos for pos, rid in enumerate(self._row_ids)}
        try:
            return np.asarray([index[int(i)] for i in ids], dtype=np.int64)
        except KeyError as exc:
            raise IncrementalError(
                f"row id {exc.args[0]} not present in table {self.name!r}"
            ) from None

    def _emit(
        self,
        kind: str,
        ids: np.ndarray,
        rows: Table | None,
        old_rows: Table | None,
    ) -> Delta:
        self.version += 1
        delta = _make_delta(kind, self.version, ids, rows, old_rows)
        for stream in self._streams:
            stream.publish(delta)
        return delta

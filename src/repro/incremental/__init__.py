"""Incremental ML over dynamic relational data (F-IVM-style).

The repo's first streaming workload: base tables accept typed
insert/delete/update deltas, the gram/cofactor and k-means aggregates
the factorized layer computes are maintained in O(|delta| * d^2), and a
continuous trainer hot-swaps refreshed models into the online server —
with bit-parity against full recomputation asserted at every
checkpoint, and lineage recompute (never silent staleness) when chaos
corrupts or drops a delta. See DESIGN.md, "Incremental maintenance";
gated by E25 (``benchmarks/bench_incremental.py``).
"""

from .aggregates import (
    GRID_BOUND,
    GRID_QUANTUM,
    CentroidState,
    GramCofactorState,
    snap_to_grid,
)
from .maintainer import DeltaConsumer, IncrementalMaintainer, MaintainerStats
from .stream import DELTA_KINDS, ChangeStream, Delta, DynamicTable
from .trainer import CentroidModel, ContinuousTrainer

__all__ = [
    "DELTA_KINDS",
    "GRID_BOUND",
    "GRID_QUANTUM",
    "CentroidModel",
    "CentroidState",
    "ChangeStream",
    "ContinuousTrainer",
    "Delta",
    "DeltaConsumer",
    "DynamicTable",
    "GramCofactorState",
    "IncrementalMaintainer",
    "MaintainerStats",
    "snap_to_grid",
]

"""Incrementally maintained ML aggregates (F-IVM for linear models).

The factorized-learning layer reduces ridge/linear training to three
aggregates — the gram matrix ``X'X``, the cofactor vector ``X'y``, and
``y'y`` — and k-means to per-cluster sums and counts. All four are
*commutative group* aggregates: a delta of rows contributes a term that
can be added on insert and subtracted on delete, so maintenance costs
O(|delta| * d^2) instead of O(n * d^2) per refresh.

Bit-parity discipline
---------------------
Floating-point addition is not associative, so a naively maintained sum
drifts from a full recomputation. Two mechanisms keep the parity gate
honest:

* **Grid data is exact.** :func:`snap_to_grid` quantizes inputs to the
  lattice ``{m * 2**-8 : |m| <= 2**12}``. Every pairwise product then
  needs at most 24 mantissa bits, and a sum of up to ``2**20`` of them
  at most 44 — under float64's 53. Every partial sum is exactly
  representable, so *any* accumulation order (incremental folds, one
  BLAS call, blocked, FMA) produces the identical bits, and a delete
  cancels its insert exactly. Tests and E25 assert **bitwise** equality
  on grid data.
* **Neumaier compensation bounds the general case.** Each accumulator
  is a (hi, comp) pair folded with the two-sum trick, so on arbitrary
  float data the maintained value stays within an ulp of the
  recomputed one. On grid data the compensation term is exactly zero,
  so it never perturbs the bitwise guarantee.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import IncrementalError
from ..storage.table import Table

#: lattice spacing of the exact-arithmetic grid (2**-8).
GRID_QUANTUM = 1.0 / 256.0
#: magnitude bound of the grid (2**4); with ``n <= 2**20`` rows every
#: partial sum of pairwise products fits in float64's 53-bit mantissa.
GRID_BOUND = 16.0


def snap_to_grid(
    X: np.ndarray,
    quantum: float = GRID_QUANTUM,
    bound: float = GRID_BOUND,
) -> np.ndarray:
    """Quantize values onto the exact-arithmetic lattice."""
    X = np.asarray(X, dtype=np.float64)
    return np.clip(np.round(X / quantum) * quantum, -bound, bound)


def _neumaier_fold(
    hi: np.ndarray, comp: np.ndarray, term: np.ndarray
) -> None:
    """Add ``term`` into the compensated accumulator pair, in place.

    Classic two-sum: whichever addend is smaller in magnitude donates
    the low-order bits the naive sum rounded away; they accumulate in
    ``comp``. When every sum is exact (grid data) ``comp`` stays 0.
    """
    total = hi + term
    big = np.abs(hi) >= np.abs(term)
    lost = np.where(big, (hi - total) + term, (term - total) + hi)
    comp += lost
    hi[...] = total


class GramCofactorState:
    """Maintained ``X'X`` / ``X'y`` / ``y'y`` over a dynamic table.

    The refresh path solves the identical expression
    ``solve(X'X + l2*I, X'y)`` that
    :class:`repro.ml.linreg.LinearRegression` (``solver="normal"``,
    ``fit_intercept=False``) evaluates, so on grid data a refreshed
    model is bit-identical to a from-scratch snapshot retrain.
    """

    def __init__(self, features: Sequence[str], label: str):
        self.features = list(features)
        self.label = label
        d = len(self.features)
        if d == 0:
            raise IncrementalError("at least one feature column required")
        self.d = d
        self.n_rows = 0
        self._gram_hi = np.zeros((d, d))
        self._gram_comp = np.zeros((d, d))
        self._cof_hi = np.zeros(d)
        self._cof_comp = np.zeros(d)
        self._ysq_hi = np.zeros(())
        self._ysq_comp = np.zeros(())

    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls, table: Table, features: Sequence[str], label: str
    ) -> "GramCofactorState":
        """Full recomputation from a base table (the lineage path)."""
        state = cls(features, label)
        X = table.to_matrix(state.features)
        y = table.column(label).astype(np.float64)
        state._gram_hi = X.T @ X
        state._cof_hi = X.T @ y
        state._ysq_hi = np.asarray(y @ y)
        state.n_rows = table.num_rows
        return state

    def _batch(self, rows: Table) -> tuple[np.ndarray, np.ndarray]:
        X = rows.to_matrix(self.features)
        y = rows.column(self.label).astype(np.float64)
        return X, y

    def fold_insert(self, rows: Table) -> int:
        """Add a batch of rows' contribution; returns rows folded."""
        X, y = self._batch(rows)
        _neumaier_fold(self._gram_hi, self._gram_comp, X.T @ X)
        _neumaier_fold(self._cof_hi, self._cof_comp, X.T @ y)
        _neumaier_fold(self._ysq_hi, self._ysq_comp, np.asarray(y @ y))
        self.n_rows += rows.num_rows
        return rows.num_rows

    def fold_delete(self, rows: Table) -> int:
        """Subtract a batch of rows' contribution; returns rows folded."""
        X, y = self._batch(rows)
        _neumaier_fold(self._gram_hi, self._gram_comp, -(X.T @ X))
        _neumaier_fold(self._cof_hi, self._cof_comp, -(X.T @ y))
        _neumaier_fold(self._ysq_hi, self._ysq_comp, -np.asarray(y @ y))
        self.n_rows -= rows.num_rows
        return rows.num_rows

    # ------------------------------------------------------------------
    def gram(self) -> np.ndarray:
        return self._gram_hi + self._gram_comp

    def cofactor(self) -> np.ndarray:
        return self._cof_hi + self._cof_comp

    def y_squared(self) -> float:
        return float(self._ysq_hi + self._ysq_comp)

    def solve_ridge(self, l2: float = 0.0) -> np.ndarray:
        """Weights from the maintained aggregates, matching the
        normal-equations solver expression bit for bit."""
        gram = self.gram() + l2 * np.eye(self.d)
        rhs = self.cofactor()
        try:
            return np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            return np.linalg.pinv(gram) @ rhs

    # ------------------------------------------------------------------
    def parity_exact(self, table: Table) -> bool:
        """Bitwise equality of maintained vs recomputed aggregates."""
        fresh = GramCofactorState.from_table(table, self.features, self.label)
        return (
            np.array_equal(self.gram(), fresh.gram())
            and np.array_equal(self.cofactor(), fresh.cofactor())
            and self.y_squared() == fresh.y_squared()
            and self.n_rows == fresh.n_rows
        )

    def parity_error(self, table: Table) -> float:
        """Max absolute deviation of maintained vs recomputed aggregates."""
        fresh = GramCofactorState.from_table(table, self.features, self.label)
        return float(
            max(
                np.max(np.abs(self.gram() - fresh.gram())),
                np.max(np.abs(self.cofactor() - fresh.cofactor())),
                abs(self.y_squared() - fresh.y_squared()),
            )
        )


class CentroidState:
    """Per-cluster sums/counts under *fixed reference centroids*.

    Assignment is a deterministic function of (row values, reference
    centroids) — the same clipped-distance expression
    :func:`repro.factorized.kmeans._assign` evaluates — and each row's
    cluster is remembered by ``row_id``, so a delete subtracts from
    exactly the cluster its insert added to. :meth:`centroids` is one
    Lloyd step from the maintained statistics; :meth:`rebase` adopts
    refreshed centroids as the new reference via full recomputation.
    """

    def __init__(self, features: Sequence[str], centers: np.ndarray):
        self.features = list(features)
        self.centers = np.asarray(centers, dtype=np.float64)
        if self.centers.ndim != 2 or self.centers.shape[1] != len(self.features):
            raise IncrementalError(
                f"centers shape {self.centers.shape} does not match "
                f"{len(self.features)} features"
            )
        k, d = self.centers.shape
        self.k = k
        self._sums_hi = np.zeros((k, d))
        self._sums_comp = np.zeros((k, d))
        self.counts = np.zeros(k, dtype=np.int64)
        self.assignments: dict[int, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls,
        table: Table,
        features: Sequence[str],
        centers: np.ndarray,
        row_ids: np.ndarray,
    ) -> "CentroidState":
        """Full recomputation from a base table (the lineage path)."""
        state = cls(features, centers)
        X = table.to_matrix(state.features)
        labels = state.assign(X)
        for cluster in range(state.k):
            members = labels == cluster
            state._sums_hi[cluster] = X[members].sum(axis=0)
            state.counts[cluster] = int(members.sum())
        state.assignments = {
            int(rid): int(lab) for rid, lab in zip(row_ids, labels)
        }
        return state

    def assign(self, X: np.ndarray) -> np.ndarray:
        """Deterministic nearest-reference-centroid labels."""
        x_sq = np.einsum("ij,ij->i", X, X)
        cross = X @ self.centers.T
        c_sq = np.einsum("ij,ij->i", self.centers, self.centers)
        d2 = np.maximum(x_sq[:, None] - 2.0 * cross + c_sq, 0.0)
        return np.argmin(d2, axis=1)

    # ------------------------------------------------------------------
    def fold_insert(self, row_ids: Sequence[int], rows: Table) -> int:
        X = rows.to_matrix(self.features)
        labels = self.assign(X)
        for rid, lab, x in zip(row_ids, labels, X):
            _neumaier_fold(
                self._sums_hi[lab], self._sums_comp[lab], x
            )
            self.counts[lab] += 1
            self.assignments[int(rid)] = int(lab)
        return rows.num_rows

    def fold_delete(self, row_ids: Sequence[int], rows: Table) -> int:
        X = rows.to_matrix(self.features)
        for rid, x in zip(row_ids, X):
            lab = self.assignments.pop(int(rid), None)
            if lab is None:
                raise IncrementalError(
                    f"delete of unknown row id {int(rid)} in centroid state"
                )
            _neumaier_fold(self._sums_hi[lab], self._sums_comp[lab], -x)
            self.counts[lab] -= 1
        return rows.num_rows

    # ------------------------------------------------------------------
    def sums(self) -> np.ndarray:
        return self._sums_hi + self._sums_comp

    def centroids(self) -> np.ndarray:
        """One Lloyd step: per-cluster means, empty clusters keeping
        their reference center."""
        fresh = self.centers.copy()
        nonempty = self.counts > 0
        fresh[nonempty] = (
            self.sums()[nonempty] / self.counts[nonempty, None]
        )
        return fresh

    def rebase(self, table: Table, row_ids: np.ndarray) -> None:
        """Adopt the refreshed centroids as the new reference frame."""
        fresh = CentroidState.from_table(
            table, self.features, self.centroids(), row_ids
        )
        self.centers = fresh.centers
        self._sums_hi = fresh._sums_hi
        self._sums_comp = fresh._sums_comp
        self.counts = fresh.counts
        self.assignments = fresh.assignments

    # ------------------------------------------------------------------
    def parity_exact(self, table: Table, row_ids: np.ndarray) -> bool:
        fresh = CentroidState.from_table(
            table, self.features, self.centers, row_ids
        )
        return (
            np.array_equal(self.sums(), fresh.sums())
            and np.array_equal(self.counts, fresh.counts)
            and self.assignments == fresh.assignments
        )

"""Delta application with chaos coverage and lineage recompute.

:class:`DeltaConsumer` is the reusable apply discipline between a
table's change stream and any derived state: every delta crosses the
consumer's fault site, so the resilience chaos harness can drop it
mid-apply (``"raise"``) or hand back corrupted bytes (``"corrupt"``).
In both cases — and whenever a version gap reveals a delta lost in
transit — the consumer falls back to *lineage recompute*: it rebuilds
the derived state from the base table under
:func:`~repro.resilience.no_chaos`, the same repair discipline the
blockstore and materialization store use. A fault can cost time; it can
never leave silently stale state.

:class:`IncrementalMaintainer` is the ML-aggregate consumer
(gram/cofactor + centroids, the F-IVM workload); the feature store's
view maintainer (:class:`repro.features.FeatureViewMaintainer`) is a
second subclass of the same discipline.

Every outcome lands in both the local :class:`MaintainerStats` ledger
and the consumer's ``<prefix>.*`` observability counters
(``incremental.*`` for the maintainer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import IncrementalError, InjectedFault
from ..obs import get_registry
from ..resilience import fault_point, no_chaos
from .aggregates import CentroidState, GramCofactorState
from .stream import ChangeStream, Delta, DynamicTable


@dataclass
class MaintainerStats:
    """Exact ledger of everything a delta consumer did."""

    deltas_applied: int = 0
    rows_folded: int = 0
    recomputes: int = 0
    corrupt_deltas: int = 0
    dropped_deltas: int = 0
    injected_faults: int = 0
    skipped_stale: int = 0
    parity_checks: int = 0


class DeltaConsumer:
    """Applies a change stream to derived state, or repairs by lineage.

    Subclasses set :attr:`FAULT_SITE` / :attr:`OBS_PREFIX` and implement
    :meth:`_fold` (apply one verified delta, return rows folded) and
    :meth:`_rebuild` (recompute the derived state from the base table —
    invoked under :func:`no_chaos`, so it must not cross fault sites
    that would re-inject forever).
    """

    FAULT_SITE = "incremental.apply"
    OBS_PREFIX = "incremental"

    def __init__(self, table: DynamicTable, stream: ChangeStream):
        self.table = table
        self.stream = stream
        self.stats = MaintainerStats()
        self.applied_version = table.version

    # ------------------------------------------------------------------
    @property
    def staleness(self) -> int:
        """How many table versions the derived state lags behind."""
        return self.table.version - self.applied_version

    def drain(self) -> int:
        """Apply every pending delta; returns deltas consumed."""
        consumed = 0
        while True:
            delta = self.stream.poll()
            if delta is None:
                break
            self.apply(delta)
            consumed += 1
        get_registry().set_gauge(f"{self.OBS_PREFIX}.staleness", self.staleness)
        return consumed

    def apply(self, delta: Delta) -> None:
        """Fold one delta — or recover by lineage recompute."""
        registry = get_registry()
        if delta.version <= self.applied_version:
            # Already covered by a recompute that read a newer base state.
            self.stats.skipped_stale += 1
            registry.inc(f"{self.OBS_PREFIX}.skipped_stale")
            return
        if delta.version != self.applied_version + 1:
            self.stats.dropped_deltas += 1
            registry.inc(f"{self.OBS_PREFIX}.dropped_deltas")
            self._recompute("version gap")
            return
        try:
            status = fault_point(self.FAULT_SITE, key=delta.version)
        except InjectedFault:
            self.stats.injected_faults += 1
            self._recompute("injected fault")
            return
        if status == "corrupt":
            delta = delta.corrupted()
        if not delta.verify():
            self.stats.corrupt_deltas += 1
            registry.inc(f"{self.OBS_PREFIX}.corrupt_deltas")
            self._recompute("checksum mismatch")
            return
        folded = self._fold(delta)
        self.stats.rows_folded += folded
        registry.inc(f"{self.OBS_PREFIX}.rows_folded", folded)
        self.applied_version = delta.version
        self.stats.deltas_applied += 1
        registry.inc(f"{self.OBS_PREFIX}.deltas_applied")
        registry.inc(f"{self.OBS_PREFIX}.deltas_applied.{delta.kind}")

    def _recompute(self, reason: str) -> None:
        """Lineage repair: rebuild the derived state from the base table.

        Runs under :func:`no_chaos` so the repair cannot itself be
        re-injected forever, and fast-forwards ``applied_version`` to
        the base table's current version — deltas still in flight below
        that version are skipped as stale when they arrive.
        """
        with no_chaos():
            self._rebuild()
        self.applied_version = self.table.version
        self.stats.recomputes += 1
        get_registry().inc(f"{self.OBS_PREFIX}.recomputes")

    # -- subclass surface ----------------------------------------------
    def _fold(self, delta: Delta) -> int:
        """Apply one verified, in-order delta; return rows folded."""
        raise NotImplementedError

    def _rebuild(self) -> None:
        """Recompute the derived state from ``self.table`` (chaos off)."""
        raise NotImplementedError


class IncrementalMaintainer(DeltaConsumer):
    """Keeps ML aggregates in lockstep with a dynamic table.

    Args:
        table: the mutable base table (also the lineage source).
        stream: the change stream to consume (subscribed by the caller).
        features / label: columns feeding the gram/cofactor state.
        centers: optional (k, d) reference centroids; when given, a
            :class:`CentroidState` is maintained alongside.
    """

    FAULT_SITE = "incremental.apply"
    OBS_PREFIX = "incremental"

    def __init__(
        self,
        table: DynamicTable,
        stream: ChangeStream,
        features: Sequence[str],
        label: str,
        centers: np.ndarray | None = None,
    ):
        super().__init__(table, stream)
        self.features = list(features)
        self.label = label
        self.gram_state = GramCofactorState.from_table(
            table, self.features, label
        )
        self.centroid_state = (
            CentroidState.from_table(
                table, self.features, centers, table.row_ids
            )
            if centers is not None
            else None
        )

    # ------------------------------------------------------------------
    def _fold(self, delta: Delta) -> int:
        folded = 0
        if delta.kind == "insert":
            folded += self.gram_state.fold_insert(delta.rows)
            if self.centroid_state is not None:
                self.centroid_state.fold_insert(delta.row_ids, delta.rows)
        elif delta.kind == "delete":
            folded += self.gram_state.fold_delete(delta.old_rows)
            if self.centroid_state is not None:
                self.centroid_state.fold_delete(delta.row_ids, delta.old_rows)
        elif delta.kind == "update":
            folded += self.gram_state.fold_delete(delta.old_rows)
            folded += self.gram_state.fold_insert(delta.rows)
            if self.centroid_state is not None:
                self.centroid_state.fold_delete(delta.row_ids, delta.old_rows)
                self.centroid_state.fold_insert(delta.row_ids, delta.rows)
        else:
            raise IncrementalError(f"unknown delta kind {delta.kind!r}")
        return folded

    def _rebuild(self) -> None:
        self.gram_state = GramCofactorState.from_table(
            self.table, self.features, self.label
        )
        if self.centroid_state is not None:
            self.centroid_state = CentroidState.from_table(
                self.table,
                self.features,
                self.centroid_state.centers,
                self.table.row_ids,
            )

    # ------------------------------------------------------------------
    def checkpoint_parity(self) -> bool:
        """Assert bitwise parity of every maintained aggregate against
        full recomputation on the current base table."""
        self.stats.parity_checks += 1
        get_registry().inc("incremental.parity_checks")
        if self.staleness != 0:
            raise IncrementalError(
                f"parity checkpoint with {self.staleness} unapplied "
                f"version(s); drain the stream first"
            )
        if not self.gram_state.parity_exact(self.table):
            raise IncrementalError(
                "maintained gram/cofactor aggregates diverged from full "
                f"recomputation (max err {self.gram_state.parity_error(self.table):.3e})"
            )
        if self.centroid_state is not None and not self.centroid_state.parity_exact(
            self.table, self.table.row_ids
        ):
            raise IncrementalError(
                "maintained centroid statistics diverged from full recomputation"
            )
        return True

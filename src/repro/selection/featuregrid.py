"""Feature-subset grid search over materialized fold statistics.

Columbus framed feature selection as a first-class workload: analysts
sweep feature *subsets* the way they sweep hyperparameters, and almost
all of the arithmetic repeats between iterations. This module runs the
full cross product (feature subset) x (l2 grid) x (CV fold) for ridge
regression, with every fold's sufficient statistics computed once as an
augmented self-product and every (subset, fold, lambda) model reduced
to a d x d solve — and, when a
:class:`~repro.materialize.MaterializationStore` is supplied, the fold
statistics are fingerprinted and materialized, so a *second* session
over the same data (tomorrow's run, another analyst's sweep, a wider
lambda grid) reuses them outright instead of recomputing. Warm results
are bit-identical to cold by the store's matching rule.

This is the E24 benchmark workload (``benchmarks/bench_reuse.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SelectionError
from .cv import KFold
from .foldreuse import fold_statistics


@dataclass
class FeatureGridResult:
    """Mean CV error per (subset, lambda), plus the winner."""

    subsets: list[tuple[int, ...]]
    lambdas: list[float]
    #: subset -> per-lambda mean RMSE (aligned with ``lambdas``)
    mean_rmse: dict[tuple[int, ...], list[float]] = field(
        default_factory=dict
    )
    #: solves actually performed: |subsets| x |folds| x |lambdas|
    solves: int = 0

    @property
    def best(self) -> tuple[tuple[int, ...], float, float]:
        """``(subset, lambda, rmse)`` with the lowest mean CV error."""
        best_subset, best_lambda, best_rmse = None, None, float("inf")
        for subset in self.subsets:
            rmses = self.mean_rmse[subset]
            i = int(np.argmin(rmses))
            if rmses[i] < best_rmse:
                best_subset, best_lambda, best_rmse = (
                    subset, self.lambdas[i], rmses[i]
                )
        return best_subset, best_lambda, float(best_rmse)

    @property
    def best_rmse(self) -> float:
        return self.best[2]


def ridge_feature_grid(
    X: np.ndarray,
    y: np.ndarray,
    subsets,
    lambdas,
    cv: KFold | int = 5,
    store=None,
) -> FeatureGridResult:
    """Grid-search ridge models over feature subsets x l2 penalties.

    Args:
        subsets: iterable of column-index tuples; each defines one
            candidate feature set ``X[:, subset]``.
        store: optional materialization store. Fold statistics for each
            (subset, fold) are computed through the DSL and offered to
            the store; a warm store serves them without touching rows.

    Every model is solved from ``total - fold`` statistics and scored
    from the held-out fold's own statistics (``w'Gw - 2w'b + y'y``), so
    the cost beyond the (possibly reused) statistics is |grid| d x d
    solves plus O(d^2) algebra — a warm run never reads a data row.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(y):
        raise SelectionError("X must be 2-D with one label per row")
    subsets = [tuple(int(j) for j in s) for s in subsets]
    if not subsets:
        raise SelectionError("subsets must be non-empty")
    for s in subsets:
        if not s or min(s) < 0 or max(s) >= X.shape[1]:
            raise SelectionError(f"subset {s} out of range for d={X.shape[1]}")
    lambdas = [float(l) for l in lambdas]
    if not lambdas or any(l < 0 for l in lambdas):
        raise SelectionError("lambdas must be non-empty and non-negative")
    if isinstance(cv, int):
        cv = KFold(cv)
    folds = cv.folds(len(X))

    result = FeatureGridResult(subsets=subsets, lambdas=lambdas)
    for subset in subsets:
        d = len(subset)
        fold_gram, fold_xty, fold_yty = fold_statistics(
            X, y, folds, store=store, columns=subset
        )
        total_gram = np.sum(fold_gram, axis=0)
        total_xty = np.sum(fold_xty, axis=0)
        eye = np.eye(d)
        errors = np.zeros((len(folds), len(lambdas)))
        for i, fold in enumerate(folds):
            train_gram = total_gram - fold_gram[i]
            train_xty = total_xty - fold_xty[i]
            n_test = len(fold)
            for j, l2 in enumerate(lambdas):
                try:
                    w = np.linalg.solve(train_gram + l2 * eye, train_xty)
                except np.linalg.LinAlgError:
                    w = np.linalg.pinv(train_gram + l2 * eye) @ train_xty
                # Held-out RSS straight from the fold's statistics:
                # ||X_f w - y_f||^2 = w'Gw - 2 w'b + y'y. No row access.
                rss = (
                    float(w @ fold_gram[i] @ w)
                    - 2.0 * float(w @ fold_xty[i])
                    + fold_yty[i]
                )
                errors[i, j] = float(np.sqrt(max(rss, 0.0) / n_test))
                result.solves += 1
        result.mean_rmse[subset] = [
            float(v) for v in errors.mean(axis=0)
        ]
    return result

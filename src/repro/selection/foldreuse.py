"""Cross-validation with shared sufficient statistics.

For ridge regression, k-fold CV over an l2 grid does not need k x |grid|
passes over the data: the Gram matrix and correlation vector are
*additive over rows*, so one pass per fold yields per-fold statistics,
and every training set's statistics are ``total - fold``. Each
(fold, lambda) evaluation then costs one d x d solve — independent of n
and of the grid size. This is model-selection computation sharing in its
purest form (the same structure Columbus exploits across feature
subsets, applied across folds and hyperparameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SelectionError
from .cv import KFold


@dataclass
class RidgeCVResult:
    """Mean CV error per lambda, plus the winner."""

    lambdas: list[float]
    mean_rmse: list[float]
    fold_rmse: dict[float, list[float]] = field(default_factory=dict)
    data_passes: int = 0  # full-data row scans performed

    @property
    def best_lambda(self) -> float:
        return self.lambdas[int(np.argmin(self.mean_rmse))]

    @property
    def best_rmse(self) -> float:
        return float(min(self.mean_rmse))


def _prepare(X, y, lambdas, cv):
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(y):
        raise SelectionError("X must be 2-D with one label per row")
    lambdas = [float(l) for l in lambdas]
    if not lambdas or any(l < 0 for l in lambdas):
        raise SelectionError("lambdas must be non-empty and non-negative")
    if isinstance(cv, int):
        cv = KFold(cv)
    return X, y, lambdas, cv


def ridge_cv_shared(
    X: np.ndarray,
    y: np.ndarray,
    lambdas,
    cv: KFold | int = 5,
) -> RidgeCVResult:
    """K-fold ridge CV from per-fold sufficient statistics.

    One pass over the data per fold; every (fold, lambda) model after
    that is an O(d^3) solve on cached statistics.
    """
    X, y, lambdas, cv = _prepare(X, y, lambdas, cv)
    d = X.shape[1]
    folds = cv.folds(len(X))

    # Per-fold statistics: one scan each (k passes total).
    fold_gram = []
    fold_xty = []
    for fold in folds:
        Xf = X[fold]
        fold_gram.append(Xf.T @ Xf)
        fold_xty.append(Xf.T @ y[fold])
    total_gram = np.sum(fold_gram, axis=0)
    total_xty = np.sum(fold_xty, axis=0)

    result = RidgeCVResult(
        lambdas=lambdas,
        mean_rmse=[],
        data_passes=len(folds),
    )
    errors: dict[float, list[float]] = {l: [] for l in lambdas}
    for i, fold in enumerate(folds):
        train_gram = total_gram - fold_gram[i]
        train_xty = total_xty - fold_xty[i]
        X_test, y_test = X[fold], y[fold]
        for l2 in lambdas:
            try:
                w = np.linalg.solve(
                    train_gram + l2 * np.eye(d), train_xty
                )
            except np.linalg.LinAlgError:
                w = np.linalg.pinv(train_gram + l2 * np.eye(d)) @ train_xty
            residual = X_test @ w - y_test
            errors[l2].append(float(np.sqrt(np.mean(residual**2))))
    result.fold_rmse = errors
    result.mean_rmse = [float(np.mean(errors[l])) for l in lambdas]
    return result


def ridge_cv_naive(
    X: np.ndarray,
    y: np.ndarray,
    lambdas,
    cv: KFold | int = 5,
) -> RidgeCVResult:
    """The no-sharing baseline: refit from raw rows per (fold, lambda)."""
    X, y, lambdas, cv = _prepare(X, y, lambdas, cv)
    d = X.shape[1]
    folds = cv.folds(len(X))

    result = RidgeCVResult(lambdas=lambdas, mean_rmse=[], data_passes=0)
    errors: dict[float, list[float]] = {l: [] for l in lambdas}
    for i, fold in enumerate(folds):
        mask = np.ones(len(X), dtype=bool)
        mask[fold] = False
        X_train, y_train = X[mask], y[mask]
        X_test, y_test = X[fold], y[fold]
        for l2 in lambdas:
            result.data_passes += 1  # full Gram recomputation from rows
            gram = X_train.T @ X_train + l2 * np.eye(d)
            try:
                w = np.linalg.solve(gram, X_train.T @ y_train)
            except np.linalg.LinAlgError:
                w = np.linalg.pinv(gram) @ (X_train.T @ y_train)
            residual = X_test @ w - y_test
            errors[l2].append(float(np.sqrt(np.mean(residual**2))))
    result.fold_rmse = errors
    result.mean_rmse = [float(np.mean(errors[l])) for l in lambdas]
    return result

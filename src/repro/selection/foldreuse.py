"""Cross-validation with shared sufficient statistics.

For ridge regression, k-fold CV over an l2 grid does not need k x |grid|
passes over the data: the Gram matrix and correlation vector are
*additive over rows*, so one pass per fold yields per-fold statistics,
and every training set's statistics are ``total - fold``. Each
(fold, lambda) evaluation then costs one d x d solve — independent of n
and of the grid size. This is model-selection computation sharing in its
purest form (the same structure Columbus exploits across feature
subsets, applied across folds and hyperparameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SelectionError
from .cv import KFold


@dataclass
class RidgeCVResult:
    """Mean CV error per lambda, plus the winner."""

    lambdas: list[float]
    mean_rmse: list[float]
    fold_rmse: dict[float, list[float]] = field(default_factory=dict)
    data_passes: int = 0  # full-data row scans performed

    @property
    def best_lambda(self) -> float:
        return self.lambdas[int(np.argmin(self.mean_rmse))]

    @property
    def best_rmse(self) -> float:
        return float(min(self.mean_rmse))


def _prepare(X, y, lambdas, cv):
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(y):
        raise SelectionError("X must be 2-D with one label per row")
    lambdas = [float(l) for l in lambdas]
    if not lambdas or any(l < 0 for l in lambdas):
        raise SelectionError("lambdas must be non-empty and non-negative")
    if isinstance(cv, int):
        cv = KFold(cv)
    return X, y, lambdas, cv


def fold_statistics(
    X: np.ndarray,
    y: np.ndarray,
    folds,
    store=None,
    columns=None,
) -> tuple[list[np.ndarray], list[np.ndarray], list[float]]:
    """Per-fold ``(gram, xty, yty)`` sufficient statistics, optionally reused.

    Each fold's statistics are one augmented self-product ``t(Z) %*% Z``
    with ``Z = [X_fold[:, columns] | y_fold]`` — a single fused tsmm
    executed through the DSL. With a
    :class:`~repro.materialize.MaterializationStore`, the statistic is
    identified by *derived-slice lineage*: it is a deterministic
    function of the full base operands and the slice specification, so
    its fingerprint hashes ``X`` and ``y`` once per session (content
    hashes are memoized on object identity) and encodes the fold's row
    indices and the column subset in the structural component. A warm
    store therefore serves every fold without touching — or re-hashing —
    the fold's bytes, and a hit is bit-identical to cold compute because
    equal base bytes plus an equal slice spec derive equal slices.
    """
    d = X.shape[1] if columns is None else len(columns)
    cols = None if columns is None else tuple(int(j) for j in columns)
    fold_gram: list[np.ndarray] = []
    fold_xty: list[np.ndarray] = []
    fold_yty: list[float] = []
    if store is None:
        for fold in folds:
            Xf = X[fold] if cols is None else X[np.asarray(fold)][:, cols]
            yf = y[fold]
            fold_gram.append(Xf.T @ Xf)
            fold_xty.append(Xf.T @ yf)
            fold_yty.append(float(yf @ yf))
        return fold_gram, fold_xty, fold_yty

    import hashlib

    from ..lang.dsl import matrix
    from ..materialize import Fingerprint, content_hash
    from ..runtime.executor import execute

    x_hash = content_hash(X)
    y_hash = content_hash(y)
    col_spec = "all" if cols is None else ",".join(map(str, cols))
    for fold in folds:
        rows = hashlib.sha256(
            np.ascontiguousarray(fold, dtype=np.int64).tobytes()
        ).hexdigest()[:24]
        spec = f"foldstats:aug_tsmm[rows={rows};cols={col_spec}]"
        fp = Fingerprint(
            structural=hashlib.sha256(spec.encode("utf-8")).hexdigest(),
            operands=(x_hash, y_hash),
            flags="",
        )
        aug = store.lookup(fp)
        if aug is None:
            Xf = X[fold] if cols is None else X[np.asarray(fold)][:, cols]
            Z = np.ascontiguousarray(
                np.hstack([Xf, y[fold].reshape(-1, 1)])
            )
            zvar = matrix("Z", Z.shape)
            aug = execute(zvar.T @ zvar, {"Z": Z})
            store.put(
                fp,
                aug,
                label=spec,
                flops=2.0 * Z.shape[0] * Z.shape[1] ** 2,
                structural=spec,
                children=(x_hash, y_hash),
            )
            for op_hash, value in ((x_hash, X), (y_hash, y)):
                if op_hash not in store.lineage:
                    store.lineage.record(
                        op_hash,
                        "operand:base",
                        op_hash,
                        shape=value.shape if value.ndim == 2 else None,
                        nbytes=int(value.nbytes),
                    )
        fold_gram.append(np.ascontiguousarray(aug[:d, :d]))
        fold_xty.append(np.ascontiguousarray(aug[:d, d]))
        fold_yty.append(float(aug[d, d]))
    return fold_gram, fold_xty, fold_yty


def ridge_cv_shared(
    X: np.ndarray,
    y: np.ndarray,
    lambdas,
    cv: KFold | int = 5,
    store=None,
) -> RidgeCVResult:
    """K-fold ridge CV from per-fold sufficient statistics.

    One pass over the data per fold; every (fold, lambda) model after
    that is an O(d^3) solve on cached statistics. Passing a
    :class:`~repro.materialize.MaterializationStore` routes the fold
    statistics through the materialization layer (see
    :func:`fold_statistics`), so repeated selection workloads over the
    same folds skip the data passes entirely.
    """
    X, y, lambdas, cv = _prepare(X, y, lambdas, cv)
    d = X.shape[1]
    folds = cv.folds(len(X))

    # Per-fold statistics: one scan each (k passes total).
    fold_gram, fold_xty, _ = fold_statistics(X, y, folds, store=store)
    total_gram = np.sum(fold_gram, axis=0)
    total_xty = np.sum(fold_xty, axis=0)

    result = RidgeCVResult(
        lambdas=lambdas,
        mean_rmse=[],
        data_passes=len(folds),
    )
    errors: dict[float, list[float]] = {l: [] for l in lambdas}
    for i, fold in enumerate(folds):
        train_gram = total_gram - fold_gram[i]
        train_xty = total_xty - fold_xty[i]
        X_test, y_test = X[fold], y[fold]
        for l2 in lambdas:
            try:
                w = np.linalg.solve(
                    train_gram + l2 * np.eye(d), train_xty
                )
            except np.linalg.LinAlgError:
                w = np.linalg.pinv(train_gram + l2 * np.eye(d)) @ train_xty
            residual = X_test @ w - y_test
            errors[l2].append(float(np.sqrt(np.mean(residual**2))))
    result.fold_rmse = errors
    result.mean_rmse = [float(np.mean(errors[l])) for l in lambdas]
    return result


def ridge_cv_naive(
    X: np.ndarray,
    y: np.ndarray,
    lambdas,
    cv: KFold | int = 5,
) -> RidgeCVResult:
    """The no-sharing baseline: refit from raw rows per (fold, lambda)."""
    X, y, lambdas, cv = _prepare(X, y, lambdas, cv)
    d = X.shape[1]
    folds = cv.folds(len(X))

    result = RidgeCVResult(lambdas=lambdas, mean_rmse=[], data_passes=0)
    errors: dict[float, list[float]] = {l: [] for l in lambdas}
    for i, fold in enumerate(folds):
        mask = np.ones(len(X), dtype=bool)
        mask[fold] = False
        X_train, y_train = X[mask], y[mask]
        X_test, y_test = X[fold], y[fold]
        for l2 in lambdas:
            result.data_passes += 1  # full Gram recomputation from rows
            gram = X_train.T @ X_train + l2 * np.eye(d)
            try:
                w = np.linalg.solve(gram, X_train.T @ y_train)
            except np.linalg.LinAlgError:
                w = np.linalg.pinv(gram) @ (X_train.T @ y_train)
            residual = X_test @ w - y_test
            errors[l2].append(float(np.sqrt(np.mean(residual**2))))
    result.fold_rmse = errors
    result.mean_rmse = [float(np.mean(errors[l])) for l in lambdas]
    return result

"""Grid and random hyperparameter search with cost accounting.

Searches return a :class:`SearchResult` that records, per configuration,
the score *and the training cost paid* (iterations/epochs where the
estimator exposes them) — model-selection management treats compute as a
first-class budget, not an afterthought.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Sequence

import numpy as np

from ..errors import SelectionError
from ..ml.base import Estimator
from ..obs import get_registry, span
from ..resilience.checkpoint import IterativeCheckpointer
from ..runtime.parallel import (
    PYTHON_CALL_FLOPS,
    ParallelContext,
    resolve_context,
)
from .cv import KFold


@dataclass
class Evaluation:
    """One configuration's outcome."""

    params: dict[str, Any]
    score: float
    fold_scores: list[float] = field(default_factory=list)
    cost: float = 0.0  # training iterations/epochs actually spent


@dataclass
class SearchResult:
    """All evaluations of a search, best-first helpers included."""

    evaluations: list[Evaluation]

    @property
    def best(self) -> Evaluation:
        if not self.evaluations:
            raise SelectionError("search produced no evaluations")
        return max(self.evaluations, key=lambda e: e.score)

    @property
    def best_params(self) -> dict[str, Any]:
        return self.best.params

    @property
    def best_score(self) -> float:
        return self.best.score

    @property
    def total_cost(self) -> float:
        return sum(e.cost for e in self.evaluations)

    @property
    def num_evaluated(self) -> int:
        return len(self.evaluations)


def expand_grid(grid: dict[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of a parameter grid, in deterministic order."""
    if not grid:
        raise SelectionError("parameter grid must be non-empty")
    names = list(grid)
    for name in names:
        if not list(grid[name]):
            raise SelectionError(f"grid entry {name!r} has no values")
    combos = itertools.product(*(list(grid[name]) for name in names))
    return [dict(zip(names, values)) for values in combos]


def _training_cost(model: Estimator) -> float:
    """Iterations actually spent fitting, if the estimator reports them."""
    result = getattr(model, "optim_result_", None)
    if result is not None:
        return float(result.iterations)
    n_iter = getattr(model, "n_iter_", None)
    if n_iter is not None:
        return float(n_iter)
    return 1.0


def _evaluate(
    estimator: Estimator,
    params: dict[str, Any],
    X: np.ndarray,
    y: np.ndarray,
    cv: KFold,
) -> Evaluation:
    scores = []
    cost = 0.0
    for train_idx, test_idx in cv.split(len(X)):
        model = estimator.clone().set_params(**params)
        model.fit(X[train_idx], y[train_idx])
        scores.append(model.score(X[test_idx], y[test_idx]))
        cost += _training_cost(model)
    return Evaluation(
        params=dict(params),
        score=float(np.mean(scores)),
        fold_scores=[float(s) for s in scores],
        cost=cost,
    )


def search_cost_hint(X: np.ndarray, cv: KFold, n_configs: int = 1) -> float:
    """Flops-equivalent estimate for CV-evaluating configurations."""
    return float(X.size) * cv.n_splits * n_configs * PYTHON_CALL_FLOPS


def _resume_evaluations(
    checkpointer: IterativeCheckpointer | None,
    configs: list[dict[str, Any]],
) -> list[Evaluation]:
    """Completed prefix of this exact search from the newest checkpoint.

    A checkpoint written by a *different* search (other configs) is
    ignored rather than resumed wrong.
    """
    if checkpointer is None:
        return []
    latest = checkpointer.load_latest()
    if latest is None:
        return []
    _, state = latest
    if state.get("configs") != configs:
        get_registry().inc("checkpoint.mismatched_skipped")
        return []
    return list(state["evaluations"])


def _evaluate_configs(
    estimator: Estimator,
    configs: list[dict[str, Any]],
    X: np.ndarray,
    y: np.ndarray,
    cv: KFold,
    ctx: ParallelContext | None,
    site: str,
    checkpointer: IterativeCheckpointer | None = None,
) -> list[Evaluation]:
    """Evaluate configurations, optionally through the shared pool.

    Order is preserved and each configuration's cost accounting is
    computed inside its own task, so serial and parallel runs produce
    identical evaluation lists (and therefore identical best configs).

    With a ``checkpointer``, the serial path persists after each
    configuration (the parallel path at the end of the batch) and a
    repeated call resumes after the completed prefix — evaluations are
    deterministic per configuration, so the resumed result is identical.
    """
    registry = get_registry()
    registry.inc("selection.searches")
    registry.inc("selection.configs_evaluated", len(configs))
    done = _resume_evaluations(checkpointer, configs)
    remaining = configs[len(done) :]
    with span(
        site, configs=len(configs), folds=cv.n_splits, parallel=ctx is not None
    ):
        if ctx is None or len(remaining) < 2:
            for params in remaining:
                done.append(_evaluate(estimator, params, X, y, cv))
                if checkpointer is not None and checkpointer.should_checkpoint(
                    len(done)
                ):
                    checkpointer.save(
                        len(done),
                        {"configs": configs, "evaluations": list(done)},
                    )
            return done
        # Materialize folds once up front: every task then reads the cached
        # plan instead of racing to build it.
        cv.folds(len(X))
        done = done + ctx.pmap(
            partial(_evaluate, estimator, X=X, y=y, cv=cv),
            remaining,
            cost_hint=search_cost_hint(X, cv, len(remaining)),
            site=site,
        )
        if checkpointer is not None:
            checkpointer.save(
                len(done), {"configs": configs, "evaluations": list(done)}
            )
        return done


def grid_search(
    estimator: Estimator,
    grid: dict[str, Sequence[Any]],
    X: np.ndarray,
    y: np.ndarray,
    cv: KFold | int = 3,
    parallel: bool | ParallelContext = False,
    context: ParallelContext | None = None,
    checkpointer: IterativeCheckpointer | None = None,
) -> SearchResult:
    """Exhaustive cross-validated search over a parameter grid.

    ``parallel=True`` evaluates configurations concurrently on the
    shared cost-gated worker pool; selection and cost accounting are
    identical to the serial path. ``checkpointer`` makes the search
    resumable after the already-evaluated prefix.
    """
    if isinstance(cv, int):
        cv = KFold(cv)
    X = np.asarray(X)
    y = np.asarray(y)
    evaluations = _evaluate_configs(
        estimator,
        expand_grid(grid),
        X,
        y,
        cv,
        resolve_context(parallel, context),
        site="selection.grid_search",
        checkpointer=checkpointer,
    )
    return SearchResult(evaluations)


def random_search(
    estimator: Estimator,
    space: dict[str, Any],
    X: np.ndarray,
    y: np.ndarray,
    n_samples: int = 20,
    cv: KFold | int = 3,
    seed: int | None = 0,
    parallel: bool | ParallelContext = False,
    context: ParallelContext | None = None,
    checkpointer: IterativeCheckpointer | None = None,
) -> SearchResult:
    """Randomized search.

    Space entries may be:
      * a list/tuple of discrete choices,
      * ``("uniform", low, high)`` for continuous uniform,
      * ``("loguniform", low, high)`` for log-scale continuous.

    All draws happen up front from the seeded generator, so parallel and
    serial runs evaluate the same configurations in the same order.
    """
    if isinstance(cv, int):
        cv = KFold(cv)
    if n_samples < 1:
        raise SelectionError("n_samples must be >= 1")
    rng = np.random.default_rng(seed)
    X = np.asarray(X)
    y = np.asarray(y)

    configs = [
        {name: _draw(rng, spec) for name, spec in space.items()}
        for _ in range(n_samples)
    ]
    evaluations = _evaluate_configs(
        estimator,
        configs,
        X,
        y,
        cv,
        resolve_context(parallel, context),
        site="selection.random_search",
        checkpointer=checkpointer,
    )
    return SearchResult(evaluations)


def _draw(rng: np.random.Generator, spec: Any) -> Any:
    if (
        isinstance(spec, tuple)
        and len(spec) == 3
        and spec[0] in ("uniform", "loguniform")
    ):
        kind, low, high = spec
        if not (low < high):
            raise SelectionError(f"invalid range ({low}, {high})")
        if kind == "uniform":
            return float(rng.uniform(low, high))
        if low <= 0:
            raise SelectionError("loguniform bounds must be positive")
        return float(math.exp(rng.uniform(math.log(low), math.log(high))))
    values = list(spec)
    if not values:
        raise SelectionError("discrete search space entry has no values")
    return values[rng.integers(len(values))]

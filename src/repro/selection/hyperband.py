"""Hyperband: bracketed successive halving.

Successive halving needs an up-front choice between 'many configs, tiny
budgets' and 'few configs, big budgets'. Hyperband hedges by running
several brackets that trade those off against each other under one total
budget, inheriting halving's early-stopping economics without committing
to one aggressiveness level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..errors import SelectionError
from ..ml.base import Estimator
from .halving import HalvingResult, successive_halving
from .search import Evaluation, SearchResult


@dataclass
class Bracket:
    """One successive-halving bracket inside a Hyperband run."""

    index: int
    num_configs: int
    min_budget: int
    result: HalvingResult


@dataclass
class HyperbandResult(SearchResult):
    brackets: list[Bracket] = field(default_factory=list)


def hyperband(
    estimator: Estimator,
    sample_config: Callable[[np.random.Generator], dict[str, Any]],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    max_budget: int = 32,
    eta: int = 3,
    budget_param: str = "max_iter",
    seed: int | None = 0,
) -> HyperbandResult:
    """Run Hyperband with configurations drawn from ``sample_config``.

    Args:
        sample_config: draws one hyperparameter dict given an RNG.
        max_budget: the largest per-config training budget (R).
        eta: the halving rate (configs and budgets scale by eta).
    """
    if eta < 2:
        raise SelectionError("eta must be >= 2")
    if max_budget < 1:
        raise SelectionError("max_budget must be >= 1")
    rng = np.random.default_rng(seed)

    s_max = int(math.floor(math.log(max_budget, eta)))
    brackets: list[Bracket] = []
    evaluations: list[Evaluation] = []
    for s in range(s_max, -1, -1):
        # Bracket s: n configs at initial budget R * eta^-s.
        n = int(math.ceil((s_max + 1) * eta**s / (s + 1)))
        r = max(1, int(max_budget * eta**-s))
        configs = [sample_config(rng) for _ in range(n)]
        result = successive_halving(
            estimator,
            configs,
            X_train,
            y_train,
            X_val,
            y_val,
            min_budget=r,
            max_budget=max_budget,
            eta=eta,
            budget_param=budget_param,
        )
        brackets.append(
            Bracket(index=s, num_configs=n, min_budget=r, result=result)
        )
        evaluations.extend(result.evaluations)
    return HyperbandResult(evaluations=evaluations, brackets=brackets)


def sample_from_space(space: dict[str, Any]) -> Callable:
    """Build a ``sample_config`` callable from a random-search space.

    Accepts the same spec format as :func:`repro.selection.random_search`
    (discrete lists, ``("uniform", lo, hi)``, ``("loguniform", lo, hi)``).
    """
    from .search import _draw

    def sample(rng: np.random.Generator) -> dict[str, Any]:
        return {name: _draw(rng, spec) for name, spec in space.items()}

    return sample

"""Cross-validation with fold-materialization reuse.

A :class:`KFold` plan materializes fold index arrays once; every
configuration evaluated in a search session reuses the same folds, which
both removes per-config split cost and makes scores comparable — the
computation-sharing discipline of model-selection management systems.
"""

from __future__ import annotations

from functools import partial
from typing import Iterator

import numpy as np

from ..errors import SelectionError
from ..ml.base import Estimator
from ..runtime.parallel import (
    PYTHON_CALL_FLOPS,
    ParallelContext,
    resolve_context,
)


class KFold:
    """Deterministic k-fold split plan over n rows."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int | None = 0):
        if n_splits < 2:
            raise SelectionError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed
        self._folds: dict[int, list[np.ndarray]] = {}

    def folds(self, n: int) -> list[np.ndarray]:
        """Materialized fold index arrays for a dataset of n rows (cached)."""
        if n < self.n_splits:
            raise SelectionError(
                f"cannot split {n} rows into {self.n_splits} folds"
            )
        cached = self._folds.get(n)
        if cached is not None:
            return cached
        order = (
            np.random.default_rng(self.seed).permutation(n)
            if self.shuffle
            else np.arange(n)
        )
        folds = [np.sort(chunk) for chunk in np.array_split(order, self.n_splits)]
        self._folds[n] = folds
        return folds

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) per fold."""
        folds = self.folds(n)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class StratifiedKFold:
    """K-fold that preserves label proportions in every fold.

    Essential when classes are imbalanced: plain random folds can leave
    a fold without minority examples, making scores incomparable.
    """

    def __init__(self, n_splits: int = 5, seed: int | None = 0):
        if n_splits < 2:
            raise SelectionError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def folds(self, y: np.ndarray) -> list[np.ndarray]:
        """Fold index arrays stratified by the labels ``y``."""
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        buckets: list[list[int]] = [[] for _ in range(self.n_splits)]
        for cls in np.unique(y):
            members = np.nonzero(y == cls)[0]
            if len(members) < self.n_splits:
                raise SelectionError(
                    f"class {cls!r} has {len(members)} rows; "
                    f"need >= n_splits ({self.n_splits})"
                )
            members = rng.permutation(members)
            for i, chunk in enumerate(np.array_split(members, self.n_splits)):
                buckets[i].extend(chunk.tolist())
        return [np.sort(np.asarray(b, dtype=np.int64)) for b in buckets]

    def split(self, y: np.ndarray):
        """Yield (train_indices, test_indices) per stratified fold."""
        folds = self.folds(y)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield np.sort(train), test


def _fit_fold(
    estimator: Estimator,
    X: np.ndarray,
    y: np.ndarray,
    split: tuple[np.ndarray, np.ndarray],
) -> float:
    """Fit a fresh clone on one (train, test) split and score it."""
    train_idx, test_idx = split
    model = estimator.clone()
    model.fit(X[train_idx], y[train_idx])
    return float(model.score(X[test_idx], y[test_idx]))


def cross_val_score(
    estimator: Estimator,
    X: np.ndarray,
    y: np.ndarray,
    cv: KFold | int = 5,
    parallel: bool | ParallelContext = False,
    context: ParallelContext | None = None,
) -> np.ndarray:
    """Per-fold scores for a fresh clone of the estimator on each fold.

    ``parallel=True`` fits the folds concurrently on the shared
    cost-gated pool; fold order (and thus the returned array) is
    identical to the serial path.
    """
    if isinstance(cv, int):
        cv = KFold(cv)
    X = np.asarray(X)
    y = np.asarray(y)
    splits = list(cv.split(len(X)))
    ctx = resolve_context(parallel, context)
    if ctx is not None and len(splits) > 1:
        scores = ctx.pmap(
            partial(_fit_fold, estimator, X, y),
            splits,
            cost_hint=float(X.size) * len(splits) * PYTHON_CALL_FLOPS,
            site="selection.cross_val_score",
        )
    else:
        scores = [_fit_fold(estimator, X, y, split) for split in splits]
    return np.asarray(scores)

"""Warm-started regularization paths.

When sweeping a hyperparameter that changes the optimum *smoothly*
(e.g. the L2 strength), the solution for one value is an excellent
starting point for the next. Warm starting turns a path of k cold
optimizations into one cold plus k-1 short refinements — a staple
computation-sharing optimization in model-selection management
(experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import SelectionError
from ..ml.logreg import LogisticRegression


@dataclass
class PathPoint:
    """One lambda on the path."""

    l2: float
    coef: np.ndarray
    intercept: float
    iterations: int
    train_score: float


@dataclass
class PathResult:
    """A fitted regularization path with iteration accounting."""

    points: list[PathPoint] = field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        return sum(p.iterations for p in self.points)

    def coefficients(self) -> np.ndarray:
        """Stacked (k, d) coefficient matrix along the path."""
        return np.vstack([p.coef for p in self.points])


def fit_logistic_path(
    X: np.ndarray,
    y: np.ndarray,
    lambdas: Sequence[float],
    warm_start: bool = True,
    max_iter: int = 500,
    tol: float = 1e-7,
) -> PathResult:
    """Fit a logistic-regression L2 path, warm or cold.

    Lambdas are visited from largest to smallest (the heavily regularized
    optimum is closest to zero, so it is the cheapest anchor), matching
    standard path-following practice.
    """
    lambdas = sorted(set(float(l) for l in lambdas), reverse=True)
    if not lambdas:
        raise SelectionError("need at least one lambda")
    if any(l < 0 for l in lambdas):
        raise SelectionError("lambdas must be non-negative")

    model = LogisticRegression(
        solver="gd", max_iter=max_iter, tol=tol, warm_start=warm_start
    )
    result = PathResult()
    for l2 in lambdas:
        if not warm_start:
            model = LogisticRegression(
                solver="gd", max_iter=max_iter, tol=tol, warm_start=False
            )
        model.set_params(l2=l2)
        model.fit(X, y)
        result.points.append(
            PathPoint(
                l2=l2,
                coef=model.coef_.copy(),
                intercept=model.intercept_,
                iterations=model.optim_result_.iterations,
                train_score=model.score(X, y),
            )
        )
    return result

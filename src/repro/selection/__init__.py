"""Model-selection management.

Grid/random search with cost accounting, successive halving, warm-started
regularization paths, shared-fold cross-validation, and cache-aware
selection sessions.
"""

from .cv import KFold, StratifiedKFold, cross_val_score
from .featuregrid import FeatureGridResult, ridge_feature_grid
from .foldreuse import (
    RidgeCVResult,
    fold_statistics,
    ridge_cv_naive,
    ridge_cv_shared,
)
from .halving import (
    HalvingResult,
    Rung,
    full_budget_baseline,
    successive_halving,
)
from .hyperband import Bracket, HyperbandResult, hyperband, sample_from_space
from .search import (
    Evaluation,
    SearchResult,
    expand_grid,
    grid_search,
    random_search,
)
from .session import SelectionSession, SessionLedger
from .warmstart import PathPoint, PathResult, fit_logistic_path

__all__ = [
    "Bracket",
    "Evaluation",
    "FeatureGridResult",
    "HalvingResult",
    "HyperbandResult",
    "KFold",
    "PathPoint",
    "PathResult",
    "RidgeCVResult",
    "Rung",
    "SearchResult",
    "SelectionSession",
    "SessionLedger",
    "StratifiedKFold",
    "cross_val_score",
    "expand_grid",
    "fit_logistic_path",
    "fold_statistics",
    "full_budget_baseline",
    "grid_search",
    "hyperband",
    "random_search",
    "ridge_cv_naive",
    "ridge_cv_shared",
    "ridge_feature_grid",
    "sample_from_space",
    "successive_halving",
]

"""Model-selection sessions: the MSMS facade.

A :class:`SelectionSession` is the unit of model-selection management:
it owns the dataset split and the shared CV plan, runs searches through a
single entry point, accumulates a global cost ledger across searches, and
remembers every evaluation so repeated configurations are served from
cache instead of retrained — the three MSMS pillars (declarative
specification, computation sharing, provenance).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..errors import SelectionError
from ..ml.base import Estimator
from .cv import KFold
from .search import Evaluation, SearchResult, _evaluate, expand_grid


def _freeze(params: dict[str, Any]) -> str:
    """Canonical cache key for a configuration."""
    return json.dumps(params, sort_keys=True, default=repr)


@dataclass
class SessionLedger:
    """Cumulative accounting across all searches in a session."""

    configs_requested: int = 0
    configs_trained: int = 0
    configs_cached: int = 0
    total_cost: float = 0.0

    @property
    def cache_hit_ratio(self) -> float:
        if self.configs_requested == 0:
            return 0.0
        return self.configs_cached / self.configs_requested


class SelectionSession:
    """Shared-state driver for iterative model selection."""

    def __init__(
        self,
        estimator: Estimator,
        X: np.ndarray,
        y: np.ndarray,
        cv: KFold | int = 3,
    ):
        self.estimator = estimator
        self.X = np.asarray(X)
        self.y = np.asarray(y)
        self.cv = KFold(cv) if isinstance(cv, int) else cv
        self.ledger = SessionLedger()
        self._cache: dict[str, Evaluation] = {}
        self.history: list[Evaluation] = []

    def evaluate(self, params: dict[str, Any]) -> Evaluation:
        """Score one configuration, reusing a cached result if present."""
        key = _freeze(params)
        self.ledger.configs_requested += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.ledger.configs_cached += 1
            return cached
        evaluation = _evaluate(self.estimator, params, self.X, self.y, self.cv)
        self._cache[key] = evaluation
        self.history.append(evaluation)
        self.ledger.configs_trained += 1
        self.ledger.total_cost += evaluation.cost
        return evaluation

    def run_grid(self, grid: dict[str, Sequence[Any]]) -> SearchResult:
        """Grid search through the session (cache-aware)."""
        return SearchResult([self.evaluate(p) for p in expand_grid(grid)])

    def refine(
        self, around: dict[str, Any], param: str, factors: Sequence[float]
    ) -> SearchResult:
        """Zoom a numeric hyperparameter around a known-good value.

        The typical second step of an interactive session: multiply the
        current best value of ``param`` by each factor and re-search.
        """
        if param not in around:
            raise SelectionError(f"{param!r} is not in the base configuration")
        base = around[param]
        if not isinstance(base, (int, float)):
            raise SelectionError(f"{param!r} is not numeric; cannot refine")
        evaluations = []
        for factor in factors:
            params = dict(around)
            params[param] = type(base)(base * factor)
            evaluations.append(self.evaluate(params))
        return SearchResult(evaluations)

    @property
    def best(self) -> Evaluation:
        if not self.history:
            raise SelectionError("no configurations evaluated yet")
        return max(self.history, key=lambda e: e.score)

    def top_k(self, k: int = 5) -> list[Evaluation]:
        return sorted(self.history, key=lambda e: e.score, reverse=True)[:k]

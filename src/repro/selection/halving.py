"""Successive halving over iteration budgets (the TuPAQ/Hyperband idea).

All candidate configurations start with a small training budget
(iterations); after each rung only the top 1/eta survive with an
eta-times larger budget. Poor configurations are abandoned after paying
only the minimum budget, so the total cost is a fraction of training
every configuration to completion — the headline economics of
model-selection management (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..errors import SelectionError
from ..ml.base import Estimator
from .search import Evaluation, SearchResult


@dataclass
class Rung:
    """One round of successive halving."""

    budget: int
    survivors: list[dict[str, Any]]
    scores: list[float]


@dataclass
class HalvingResult(SearchResult):
    """Search result plus per-rung history."""

    rungs: list[Rung] = field(default_factory=list)


def successive_halving(
    estimator: Estimator,
    configs: Sequence[dict[str, Any]],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    min_budget: int = 2,
    max_budget: int = 64,
    eta: int = 2,
    budget_param: str = "max_iter",
) -> HalvingResult:
    """Run successive halving over explicit configurations.

    Args:
        budget_param: the estimator hyperparameter that caps training
            iterations (``max_iter`` for the GLMs here). The cost of one
            evaluation equals the budget it was trained with.
    """
    if eta < 2:
        raise SelectionError("eta must be >= 2")
    if min_budget < 1 or max_budget < min_budget:
        raise SelectionError(
            f"invalid budgets: min={min_budget}, max={max_budget}"
        )
    configs = [dict(c) for c in configs]
    if not configs:
        raise SelectionError("need at least one configuration")

    evaluations: list[Evaluation] = []
    rungs: list[Rung] = []
    survivors = configs
    budget = min_budget
    while True:
        scored: list[tuple[float, dict[str, Any]]] = []
        for params in survivors:
            full = dict(params)
            full[budget_param] = budget
            model = estimator.clone().set_params(**full)
            model.fit(X_train, y_train)
            score = model.score(X_val, y_val)
            scored.append((score, params))
            evaluations.append(
                Evaluation(params=full, score=score, cost=float(budget))
            )
        scored.sort(key=lambda pair: pair[0], reverse=True)
        rungs.append(
            Rung(
                budget=budget,
                survivors=[p for _, p in scored],
                scores=[s for s, _ in scored],
            )
        )
        if budget >= max_budget or len(scored) == 1:
            break
        keep = max(1, len(scored) // eta)
        survivors = [p for _, p in scored[:keep]]
        budget = min(budget * eta, max_budget)

    return HalvingResult(evaluations=evaluations, rungs=rungs)


def full_budget_baseline(
    estimator: Estimator,
    configs: Sequence[dict[str, Any]],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    budget: int = 64,
    budget_param: str = "max_iter",
) -> SearchResult:
    """Train every configuration at full budget (the naive comparator)."""
    evaluations = []
    for params in configs:
        full = dict(params)
        full[budget_param] = budget
        model = estimator.clone().set_params(**full)
        model.fit(X_train, y_train)
        evaluations.append(
            Evaluation(
                params=full,
                score=model.score(X_val, y_val),
                cost=float(budget),
            )
        )
    return SearchResult(evaluations)

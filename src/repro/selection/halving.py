"""Successive halving over iteration budgets (the TuPAQ/Hyperband idea).

All candidate configurations start with a small training budget
(iterations); after each rung only the top 1/eta survive with an
eta-times larger budget. Poor configurations are abandoned after paying
only the minimum budget, so the total cost is a fraction of training
every configuration to completion — the headline economics of
model-selection management (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Sequence

import numpy as np

from ..errors import SelectionError
from ..ml.base import Estimator
from ..obs import get_registry
from ..resilience.checkpoint import IterativeCheckpointer
from ..runtime.parallel import (
    PYTHON_CALL_FLOPS,
    ParallelContext,
    resolve_context,
)
from .search import Evaluation, SearchResult


def _fit_scored(
    estimator: Estimator,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    budget_param: str,
    budget: int,
    params: "dict[str, Any]",
) -> tuple[float, dict[str, Any], dict[str, Any]]:
    """Train one configuration at one budget; returns (score, params, full)."""
    full = dict(params)
    full[budget_param] = budget
    model = estimator.clone().set_params(**full)
    model.fit(X_train, y_train)
    return model.score(X_val, y_val), params, full


def _rung_cost_hint(X_train: np.ndarray, budget: int, n_configs: int) -> float:
    return float(X_train.size) * budget * n_configs * PYTHON_CALL_FLOPS


@dataclass
class Rung:
    """One round of successive halving."""

    budget: int
    survivors: list[dict[str, Any]]
    scores: list[float]


@dataclass
class HalvingResult(SearchResult):
    """Search result plus per-rung history."""

    rungs: list[Rung] = field(default_factory=list)


def successive_halving(
    estimator: Estimator,
    configs: Sequence[dict[str, Any]],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    min_budget: int = 2,
    max_budget: int = 64,
    eta: int = 2,
    budget_param: str = "max_iter",
    parallel: bool | ParallelContext = False,
    context: ParallelContext | None = None,
    checkpointer: IterativeCheckpointer | None = None,
) -> HalvingResult:
    """Run successive halving over explicit configurations.

    Args:
        budget_param: the estimator hyperparameter that caps training
            iterations (``max_iter`` for the GLMs here). The cost of one
            evaluation equals the budget it was trained with.
        parallel: evaluate each rung's survivors concurrently on the
            shared cost-gated pool. Rung boundaries are synchronization
            points, scores and survivor sets are identical to serial.
        checkpointer: persists completed rungs; a repeated call resumes
            at the first unfinished rung and ends with an identical
            result (rungs are deterministic in their survivors/budget).
    """
    if eta < 2:
        raise SelectionError("eta must be >= 2")
    if min_budget < 1 or max_budget < min_budget:
        raise SelectionError(
            f"invalid budgets: min={min_budget}, max={max_budget}"
        )
    configs = [dict(c) for c in configs]
    if not configs:
        raise SelectionError("need at least one configuration")

    ctx = resolve_context(parallel, context)
    evaluations: list[Evaluation] = []
    rungs: list[Rung] = []
    survivors = configs
    budget = min_budget
    done = False
    if checkpointer is not None:
        latest = checkpointer.load_latest()
        if latest is not None:
            _, state = latest
            if state.get("configs") == configs:
                evaluations = list(state["evaluations"])
                rungs = list(state["rungs"])
                survivors = list(state["survivors"])
                budget = state["budget"]
                done = state["done"]
            else:
                get_registry().inc("checkpoint.mismatched_skipped")
    while not done:
        fit = partial(
            _fit_scored,
            estimator,
            X_train,
            y_train,
            X_val,
            y_val,
            budget_param,
            budget,
        )
        if ctx is not None and len(survivors) > 1:
            results = ctx.pmap(
                fit,
                survivors,
                cost_hint=_rung_cost_hint(X_train, budget, len(survivors)),
                site="selection.halving",
            )
        else:
            results = [fit(params) for params in survivors]
        scored: list[tuple[float, dict[str, Any]]] = []
        for score, params, full in results:
            scored.append((score, params))
            evaluations.append(
                Evaluation(params=full, score=score, cost=float(budget))
            )
        scored.sort(key=lambda pair: pair[0], reverse=True)
        rungs.append(
            Rung(
                budget=budget,
                survivors=[p for _, p in scored],
                scores=[s for s, _ in scored],
            )
        )
        done = budget >= max_budget or len(scored) == 1
        if not done:
            keep = max(1, len(scored) // eta)
            survivors = [p for _, p in scored[:keep]]
            budget = min(budget * eta, max_budget)
        if checkpointer is not None:
            checkpointer.save(
                len(rungs),
                {
                    "configs": configs,
                    "evaluations": list(evaluations),
                    "rungs": list(rungs),
                    "survivors": list(survivors),
                    "budget": budget,
                    "done": done,
                },
            )

    return HalvingResult(evaluations=evaluations, rungs=rungs)


def full_budget_baseline(
    estimator: Estimator,
    configs: Sequence[dict[str, Any]],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    budget: int = 64,
    budget_param: str = "max_iter",
    parallel: bool | ParallelContext = False,
    context: ParallelContext | None = None,
) -> SearchResult:
    """Train every configuration at full budget (the naive comparator)."""
    ctx = resolve_context(parallel, context)
    fit = partial(
        _fit_scored,
        estimator,
        X_train,
        y_train,
        X_val,
        y_val,
        budget_param,
        budget,
    )
    configs = [dict(c) for c in configs]
    if ctx is not None and len(configs) > 1:
        results = ctx.pmap(
            fit,
            configs,
            cost_hint=_rung_cost_hint(X_train, budget, len(configs)),
            site="selection.full_budget",
        )
    else:
        results = [fit(params) for params in configs]
    return SearchResult(
        [
            Evaluation(params=full, score=score, cost=float(budget))
            for score, _, full in results
        ]
    )

"""Content-hashed plan fingerprints.

A fingerprint identifies *what a sub-plan computes*, independent of the
incidental names it computes it over: two workloads that evaluate the
same expression shape over byte-identical operands under the same
optimizer flags get the same fingerprint — that is the matching rule
the materialization store reuses intermediates by, and the reason a hit
is always bit-identical to cold execution.

Three components, hashed separately so provenance stays inspectable:

* **structural** — a canonical serialization of the sub-plan in which
  every :class:`~repro.lang.ast.Data` leaf is replaced by a positional
  placeholder (``$0``, ``$1``, ... in first-occurrence order of a
  deterministic left-to-right walk). Renaming an input cannot change
  it; any change to an operator, shape, axis, fused kind, Convert
  target, or embedded constant does.
* **operands** — one content hash per placeholder, in placeholder
  order: the storage kind tag plus a SHA-256 over the operand's dense
  bytes. Binding different data (or the same data in a different
  representation, whose kernels may round differently) changes the
  fingerprint, so stale entries can never match.
* **flags** — the compiler pass list the plan was produced under, so a
  plan compiled with e.g. fusion disabled never matches a fused run.

Everything is derived from content via SHA-256 — no ``id()``, no
``hash()`` — so fingerprints are stable across process restarts and
under ``PYTHONHASHSEED`` (property-tested).

Operand hashing is the per-execution cost of matching, so content
hashes are memoized on object identity through weak references: an
operand held across a driver's iterations is hashed once. Operands are
treated as immutable while a store is active (the same contract the
executor's own memoization already assumes).
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass

import numpy as np

from ..errors import MaterializationError
from ..lang.ast import Aggregate, Binary, Constant, Convert, Data, Fused, \
    MatMul, Node, Transpose, Unary
from ..runtime import repops


# ----------------------------------------------------------------------
# Canonical structural serialization
# ----------------------------------------------------------------------
#: canonical strings memoized per live root node (id -> (ref, canon, order))
_CANON_CACHE: dict[int, tuple] = {}


def canonical_plan(node: Node) -> tuple[str, tuple[str, ...]]:
    """Canonical serialization plus the Data-name placeholder order.

    The serialization is pure content: operator tags, shapes, constant
    digests, and ``$i`` placeholders. Two nodes serialize identically
    iff they compute the same function of their positional inputs.
    """
    cached = _CANON_CACHE.get(id(node))
    if cached is not None and cached[0]() is node:
        return cached[1], cached[2]
    order: list[str] = []
    positions: dict[str, int] = {}
    canon = _render(node, positions, order)
    result = (canon, tuple(order))
    try:
        ref = weakref.ref(node, lambda _, i=id(node): _CANON_CACHE.pop(i, None))
        _CANON_CACHE[id(node)] = (ref, canon, tuple(order))
    except TypeError:
        pass
    return result


def _render(node: Node, positions: dict[str, int], order: list[str]) -> str:
    shape = f"{node.shape[0]}x{node.shape[1]}"
    if isinstance(node, Data):
        idx = positions.get(node.name)
        if idx is None:
            idx = positions[node.name] = len(positions)
            order.append(node.name)
        return f"data(${idx}:{shape})"
    if isinstance(node, Constant):
        digest = hashlib.sha256(
            np.ascontiguousarray(node.value, dtype=np.float64).tobytes()
        ).hexdigest()[:16]
        return f"const({shape}:{digest})"
    children = ",".join(_render(c, positions, order) for c in node.children)
    if isinstance(node, Binary):
        tag = f"binary:{node.op}"
    elif isinstance(node, Unary):
        tag = f"unary:{node.op}"
    elif isinstance(node, MatMul):
        tag = "matmul"
    elif isinstance(node, Transpose):
        tag = "transpose"
    elif isinstance(node, Aggregate):
        tag = f"agg:{node.op}:{node.axis}"
    elif isinstance(node, Convert):
        tag = f"convert:{node.target}"
    elif isinstance(node, Fused):
        tag = f"fused:{node.kind}"
    else:
        raise MaterializationError(
            f"cannot fingerprint node type {type(node).__name__}"
        )
    return f"{tag}({shape};{children})"


def structural_key(node: Node) -> str:
    """SHA-256 hexdigest of the canonical serialization."""
    canon, _ = canonical_plan(node)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Operand content hashing (memoized on object identity)
# ----------------------------------------------------------------------
_CONTENT_CACHE: dict[int, tuple] = {}


def content_hash(value) -> str:
    """``kind:sha256`` over an operand's dense bytes.

    The kind tag keeps representations apart: a CLA-bound operand only
    matches a CLA-bound operand with the same dense content, because
    each kind's kernels have their own floating-point rounding. (Each
    kind's conversion is a deterministic function of the dense content,
    so equal tags plus equal bytes implies bit-equal kernel behavior.)
    """
    cached = _CONTENT_CACHE.get(id(value))
    if cached is not None and cached[0]() is value:
        return cached[1]
    kind = repops.kind_of(value)
    dense = repops.densify(value)
    arr = np.ascontiguousarray(dense, dtype=np.float64)
    h = hashlib.sha256()
    h.update(kind.encode("utf-8"))
    h.update(f":{arr.shape[0]}x{arr.shape[1] if arr.ndim > 1 else 1}:".encode())
    h.update(arr.tobytes())
    digest = f"{kind}:{h.hexdigest()}"
    try:
        ref = weakref.ref(
            value, lambda _, i=id(value): _CONTENT_CACHE.pop(i, None)
        )
        _CONTENT_CACHE[id(value)] = (ref, digest)
    except TypeError:
        pass
    return digest


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fingerprint:
    """Identity of one executed sub-plan: structure x operands x flags."""

    structural: str
    operands: tuple[str, ...]
    flags: str

    @property
    def key(self) -> str:
        """The store key: SHA-256 over all three components."""
        h = hashlib.sha256()
        h.update(self.structural.encode("utf-8"))
        for op in self.operands:
            h.update(b"|")
            h.update(op.encode("utf-8"))
        h.update(b"||")
        h.update(self.flags.encode("utf-8"))
        return h.hexdigest()


def fingerprint_node(
    node: Node, bindings: dict[str, object], flags: str = ""
) -> Fingerprint:
    """Fingerprint one (sub-)plan against its bound operands."""
    canon, order = canonical_plan(node)
    try:
        operands = tuple(content_hash(bindings[name]) for name in order)
    except KeyError as exc:
        raise MaterializationError(
            f"cannot fingerprint: no binding for input {exc.args[0]!r}"
        ) from None
    structural = hashlib.sha256(canon.encode("utf-8")).hexdigest()
    return Fingerprint(structural=structural, operands=operands, flags=flags)

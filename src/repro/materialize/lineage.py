"""Lineage graph over materialized intermediates.

Every entry the store admits gets a lineage record: what it computes (a
human-readable label and the canonical structural digest), what it was
computed *from* (the keys of the nearest materialized sub-plans beneath
it, or table fingerprints for relational operators), and how expensive
it is to rebuild. The graph serves two purposes:

* **Repair** — a corrupted or lost entry is never an error: its record
  says the value is a deterministic function of the plan below it, so
  the store reports a miss, the executor re-derives the value from the
  (possibly still-materialized) children, and the fresh result is
  re-admitted. This is the blockstore's recompute-from-lineage model
  lifted from single blocks to whole sub-plans.
* **Provenance** — ``describe()`` renders the reuse web: which
  workloads' intermediates feed which, and what a pinned entry shields
  from recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class LineageRecord:
    """One materialized value's provenance."""

    key: str
    label: str
    structural: str
    shape: tuple[int, int] | None = None
    nbytes: int = 0
    flops: float = 0.0
    children: tuple[str, ...] = ()
    source: str = "plan"  # "plan" (DSL sub-plan) or "table" (relational op)

    def as_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "structural": self.structural,
            "shape": list(self.shape) if self.shape else None,
            "nbytes": self.nbytes,
            "flops": self.flops,
            "children": list(self.children),
            "source": self.source,
        }


class LineageGraph:
    """Directed acyclic graph of materialized-entry provenance."""

    def __init__(self) -> None:
        self._records: dict[str, LineageRecord] = {}
        self._parents: dict[str, set[str]] = {}

    def record(
        self,
        key: str,
        label: str,
        structural: str,
        shape=None,
        nbytes: int = 0,
        flops: float = 0.0,
        children: Iterable[str] = (),
        source: str = "plan",
    ) -> LineageRecord:
        rec = LineageRecord(
            key=key,
            label=label,
            structural=structural,
            shape=tuple(shape) if shape else None,
            nbytes=int(nbytes),
            flops=float(flops),
            children=tuple(children),
            source=source,
        )
        self._records[key] = rec
        for child in rec.children:
            self._parents.setdefault(child, set()).add(key)
        return rec

    def get(self, key: str) -> LineageRecord | None:
        return self._records.get(key)

    def children(self, key: str) -> tuple[str, ...]:
        rec = self._records.get(key)
        return rec.children if rec else ()

    def parents(self, key: str) -> tuple[str, ...]:
        """Entries derived (directly) from this one, sorted for determinism."""
        return tuple(sorted(self._parents.get(key, ())))

    def ancestry(self, key: str) -> list[str]:
        """All transitive inputs of one entry (depth-first, deduplicated)."""
        seen: list[str] = []
        stack = list(self.children(key))
        while stack:
            k = stack.pop()
            if k in seen:
                continue
            seen.append(k)
            stack.extend(self.children(k))
        return seen

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def as_dict(self) -> dict[str, Any]:
        return {k: self._records[k].as_dict() for k in sorted(self._records)}

    def describe(self) -> str:
        lines = []
        for key in sorted(self._records):
            rec = self._records[key]
            deps = (
                f" <- {len(rec.children)} dep(s)" if rec.children else ""
            )
            lines.append(
                f"{key[:12]} [{rec.source}] {rec.label} "
                f"({rec.nbytes}B, {rec.flops:.3g} flops){deps}"
            )
        return "\n".join(lines) if lines else "(empty lineage)"

"""The persistent materialization store.

Columbus showed that model selection's real cost structure is
*lifecycle* cost: feature exploration, grid search, and CV re-derive
the same intermediates — gram matrices, compressed operands, fold
statistics — run after run. A :class:`MaterializationStore` is the
system-level answer: every executed sub-plan is identified by its
content-hashed :class:`~repro.materialize.fingerprint.Fingerprint`, and
any later workload that evaluates a matching sub-plan (same structure,
byte-identical operands, same optimizer flags) transparently reuses the
stored value instead of recomputing. Because the fingerprint pins
structure *and* operand bytes *and* flags, a hit is bit-identical to
cold execution by construction — the store can go stale-silent (miss),
never stale-wrong (hit on changed data).

Two tiers:

* **Memory** — a :class:`~repro.runtime.bufferpool.BufferPool` in
  object mode, so admission, LRU eviction, pinning, and the byte ledger
  are the bufferpool's own accounting (one eviction discipline for the
  whole runtime). Pinned materializations are never evicted.
* **Disk** — one file per entry in the store directory, written through
  :mod:`repro.persist` (atomic replace, schema ``repro.mat/v1``, CRC32
  over the pickled payload). An entry evicted from memory is re-read
  and re-admitted on its next hit. A corrupted file (bit rot, or chaos
  injected at fault site ``"materialize.read"``) fails its checksum,
  is counted and unlinked, and the lookup reports a miss — the executor
  then *recomputes the value from its lineage* (the plan beneath the
  node) and re-admits it, so repair is recompute, exactly the
  blockstore's recovery model.

Admission is cost-based: an intermediate earns persistence when its
estimated recompute cost clears ``min_flops`` and its flops-per-byte
density clears ``min_flops_per_byte`` — cheap-to-recompute or
bloated-for-their-cost values are not worth their storage. ``pin=True``
bypasses admission (an explicit pin is the operator's override) and
shields the entry from memory-tier eviction.

The store is **off by default**: the executor consults
:func:`active_store`, which costs one attribute read when nothing is
installed, so the disabled path stays within the <3% overhead budget
and plans are byte-identical to a build without the store (compilation
is never touched).
"""

from __future__ import annotations

import os
import pickle
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from ..errors import MaterializationError
from ..obs import get_registry
from ..persist import read_verified, write_atomic
from ..resilience.faults import fault_point
from ..runtime import repops
from ..runtime.bufferpool import BufferPool
from .fingerprint import Fingerprint
from .lineage import LineageGraph

SCHEMA = "repro.mat/v1"

#: default byte budget of the in-memory tier.
DEFAULT_CAPACITY_BYTES = 256 << 20
#: default admission floor on estimated recompute flops.
DEFAULT_MIN_FLOPS = 100_000.0
_TRUTHY = ("1", "true", "yes", "on")


class EntryMeta:
    """Book-keeping for one materialized entry."""

    __slots__ = ("key", "label", "kind", "shape", "nbytes", "flops",
                 "pinned", "hits")

    def __init__(self, key, label, kind, shape, nbytes, flops, pinned):
        self.key = key
        self.label = label
        self.kind = kind
        self.shape = shape
        self.nbytes = int(nbytes)
        self.flops = float(flops)
        self.pinned = bool(pinned)
        self.hits = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "shape": list(self.shape) if self.shape else None,
            "nbytes": self.nbytes,
            "flops": self.flops,
            "pinned": self.pinned,
            "hits": self.hits,
        }


class MaterializationStore:
    """Fingerprint-keyed, two-tier store of executed sub-plan values.

    Args:
        directory: persistence root (created if missing). ``None`` keeps
            the store memory-only — entries die with eviction.
        capacity_bytes: byte budget of the in-memory tier.
        min_flops: admission floor on estimated recompute cost.
        min_flops_per_byte: admission floor on recompute-cost density —
            a value must be at least this expensive per stored byte.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        min_flops: float = DEFAULT_MIN_FLOPS,
        min_flops_per_byte: float = 0.0,
    ):
        if min_flops < 0 or min_flops_per_byte < 0:
            raise MaterializationError("admission floors must be >= 0")
        self.directory = Path(directory) if directory is not None else None
        self.min_flops = float(min_flops)
        self.min_flops_per_byte = float(min_flops_per_byte)
        self.pool = BufferPool(None, capacity_bytes)
        self.lineage = LineageGraph()
        self._meta: dict[str, EntryMeta] = {}
        self._seen: set[str] = set()
        self._lock = threading.RLock()
        # local ledger (the obs registry accumulates across stores)
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.puts = 0
        self.rejected = 0
        self.recomputes = 0
        self.corrupt_entries = 0
        self.bytes_materialized = 0
        self.bytes_reused = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._scan_directory()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if self.directory is None:
            raise MaterializationError("store has no persistence directory")
        return self.directory / f"{key}.mat"

    def _scan_directory(self) -> None:
        """Index persisted entries (headers only; payload verified on read)."""
        import json

        for path in sorted(self.directory.glob("*.mat")):
            try:
                with open(path, "rb") as fh:
                    first = fh.readline()
                header = json.loads(first.decode("utf-8"))
            except (OSError, UnicodeDecodeError, ValueError):
                continue
            if header.get("schema") != SCHEMA:
                continue
            key = header.get("key") or path.stem
            shape = header.get("shape")
            meta = EntryMeta(
                key=key,
                label=header.get("label", ""),
                kind=header.get("kind", "dense"),
                shape=tuple(shape) if shape else None,
                nbytes=header.get("nbytes", 0),
                flops=header.get("flops", 0.0),
                pinned=header.get("pinned", False),
            )
            self._meta[key] = meta
            self._seen.add(key)
            children = header.get("children") or ()
            self.lineage.record(
                key,
                meta.label,
                header.get("structural", ""),
                shape=meta.shape,
                nbytes=meta.nbytes,
                flops=meta.flops,
                children=children,
            )

    @staticmethod
    def _key_of(fp: Fingerprint | str) -> str:
        return fp if isinstance(fp, str) else fp.key

    # -- admission ------------------------------------------------------
    def should_admit(self, flops: float, nbytes: int) -> bool:
        """Cost-based admission: recompute cost must pay for the bytes."""
        if flops < self.min_flops:
            return False
        if nbytes > 0 and flops / nbytes < self.min_flops_per_byte:
            return False
        return True

    # -- write path -----------------------------------------------------
    def put(
        self,
        fp: Fingerprint | str,
        value,
        label: str = "",
        flops: float = 0.0,
        structural: str = "",
        children: Iterable[str] = (),
        pin: bool = False,
        source: str = "plan",
        nbytes: int | None = None,
    ) -> bool:
        """Offer one computed value; returns whether it was admitted.

        Dense arrays are stored as private copies so later caller-side
        mutation cannot reach the store. Re-admitting a key the store
        has seen before (after corruption or loss) counts as a lineage
        recompute. ``nbytes`` overrides the sizing for values
        :func:`~repro.runtime.repops.operand_bytes` cannot measure
        (e.g. relational tables).
        """
        key = self._key_of(fp)
        if nbytes is None:
            nbytes = repops.operand_bytes(value)
        registry = get_registry()
        with self._lock:
            if key in self._meta:
                return True  # already materialized; nothing to do
            if not pin and not self.should_admit(flops, nbytes):
                self.rejected += 1
                registry.inc("materialize.rejected")
                return False
            if isinstance(value, np.ndarray):
                value = np.array(value, dtype=np.float64, copy=True)
            kind = repops.kind_of(value)
            shape = tuple(getattr(value, "shape", ())) or None
            if key in self._seen:
                self.recomputes += 1
                registry.inc("materialize.recomputes")
            meta = EntryMeta(key, label, kind, shape, nbytes, flops, pin)
            if self.directory is not None:
                self._persist(meta, value, structural, tuple(children))
            self._meta[key] = meta
            self._seen.add(key)
            self.pool.put_object(key, value, nbytes, pin=pin)
            self.lineage.record(
                key,
                label,
                structural,
                shape=shape,
                nbytes=nbytes,
                flops=flops,
                children=children,
                source=source,
            )
            self.puts += 1
            self.bytes_materialized += nbytes
            registry.inc("materialize.puts")
            registry.inc("materialize.bytes_materialized", nbytes)
            return True

    def _persist(
        self, meta: EntryMeta, value, structural: str,
        children: tuple[str, ...],
    ) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        write_atomic(
            self._path(meta.key),
            payload,
            SCHEMA,
            extra={
                "key": meta.key,
                "label": meta.label,
                "kind": meta.kind,
                "shape": list(meta.shape) if meta.shape else None,
                "nbytes": meta.nbytes,
                "flops": meta.flops,
                "pinned": meta.pinned,
                "structural": structural,
                "children": list(children),
            },
            error_cls=MaterializationError,
            what="materialized entry",
            tmp_prefix=".mat-",
        )

    # -- read path ------------------------------------------------------
    def contains(self, fp: Fingerprint | str) -> bool:
        with self._lock:
            return self._key_of(fp) in self._meta

    def lookup(self, fp: Fingerprint | str):
        """The stored value, or ``None`` (miss — caller recomputes).

        Misses cover never-seen fingerprints, entries lost to memory
        eviction in a directory-less store, and entries whose persisted
        bytes failed their CRC — the last are unlinked so the caller's
        recompute can re-materialize them cleanly.
        """
        key = self._key_of(fp)
        registry = get_registry()
        with self._lock:
            meta = self._meta.get(key)
            if meta is None:
                self.misses += 1
                registry.inc("materialize.misses")
                return None
            value = self.pool.lookup(key)
            if value is None and self.directory is not None:
                value = self._load_disk(key, meta)
                if value is not None:
                    self.disk_hits += 1
                    registry.inc("materialize.disk_hits")
                    self.pool.put_object(
                        key, value, meta.nbytes, pin=meta.pinned
                    )
            if value is None:
                # lost (evicted with no disk tier, or corrupt on disk)
                del self._meta[key]
                self.misses += 1
                registry.inc("materialize.misses")
                return None
            meta.hits += 1
            self.hits += 1
            self.bytes_reused += meta.nbytes
            registry.inc("materialize.hits")
            registry.inc("materialize.bytes_reused", meta.nbytes)
            return value

    def _load_disk(self, key: str, meta: EntryMeta):
        path = self._path(key)
        if not path.exists():
            return None
        if fault_point("materialize.read", key=key) == "corrupt":
            self.corrupt(key)
        try:
            _, payload = read_verified(
                path,
                SCHEMA,
                error_cls=MaterializationError,
                what="materialized entry",
            )
        except MaterializationError:
            self.corrupt_entries += 1
            get_registry().inc("materialize.corrupt_entries")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return pickle.loads(payload)

    # -- pinning --------------------------------------------------------
    def pin(self, fp: Fingerprint | str) -> None:
        """Pin an entry: admission override + never evicted from memory."""
        key = self._key_of(fp)
        with self._lock:
            meta = self._meta.get(key)
            if meta is None:
                raise MaterializationError(f"cannot pin unknown entry {key!r}")
            meta.pinned = True
            if key in self.pool:
                self.pool.pin(key)

    def unpin(self, fp: Fingerprint | str) -> None:
        key = self._key_of(fp)
        with self._lock:
            meta = self._meta.get(key)
            if meta is not None:
                meta.pinned = False
            self.pool.unpin(key)

    # -- maintenance / introspection -----------------------------------
    def corrupt(self, fp: Fingerprint | str) -> None:
        """Flip one byte of a persisted entry (test/chaos hook).

        The flipped position derives from the key, so injected
        corruption is deterministic — the same idiom as
        :meth:`repro.runtime.bufferpool.BlockStore.corrupt`.
        """
        import zlib

        key = self._key_of(fp)
        path = self._path(key)
        raw = path.read_bytes()
        newline = raw.find(b"\n")
        body = raw[newline + 1 :]
        if not body:
            return
        pos = newline + 1 + zlib.crc32(key.encode("utf-8")) % len(body)
        mutated = raw[:pos] + bytes([raw[pos] ^ 0xFF]) + raw[pos + 1 :]
        path.write_bytes(mutated)
        # drop the memory copy so the next lookup exercises the disk tier
        with self._lock:
            self.pool.remove(key)

    def drop(self, fp: Fingerprint | str) -> bool:
        """Forget one entry everywhere (memory, meta, disk)."""
        key = self._key_of(fp)
        with self._lock:
            existed = key in self._meta
            self._meta.pop(key, None)
            self.pool.remove(key)
            if self.directory is not None:
                try:
                    self._path(key).unlink()
                except OSError:
                    pass
            return existed

    def entries(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                self._meta[k].as_dict() for k in sorted(self._meta)
            ]

    def __len__(self) -> int:
        return len(self._meta)

    def ledger(self) -> dict[str, Any]:
        """Exact reuse accounting (the E24 gates check these)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "puts": self.puts,
                "rejected": self.rejected,
                "recomputes": self.recomputes,
                "corrupt_entries": self.corrupt_entries,
                "bytes_materialized": self.bytes_materialized,
                "bytes_reused": self.bytes_reused,
                "entries": len(self._meta),
                "resident_bytes": self.pool.used_bytes,
                "capacity_bytes": self.pool.capacity_bytes,
                "evictions": self.pool.stats.evictions,
                "pinned": sum(1 for m in self._meta.values() if m.pinned),
            }

    def describe(self) -> str:
        led = self.ledger()
        lines = [
            f"materialization store ({led['entries']} entries, "
            f"{led['resident_bytes']}/{led['capacity_bytes']}B resident)",
            f"  hits {led['hits']} (disk {led['disk_hits']}) / "
            f"misses {led['misses']} / evictions {led['evictions']}",
            f"  bytes reused {led['bytes_reused']} / "
            f"materialized {led['bytes_materialized']}",
        ]
        if len(self.lineage):
            lines.append(self.lineage.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-global enablement (the executor's hook)
# ----------------------------------------------------------------------
_global_lock = threading.Lock()
_active: MaterializationStore | None = None


def active_store() -> MaterializationStore | None:
    """The store the executor should consult, or ``None`` when disabled.

    This is the hot-path gate: disabled cost is one module-attribute
    read. ``REPRO_MATERIALIZE_DIR`` is only consulted by
    :func:`get_materialization_store` — an env-configured store still
    requires one explicit ``get`` (or an installed store) to activate.
    """
    return _active


def set_materialization_store(store: MaterializationStore | None) -> None:
    """Install (or clear) the process-global store — the explicit opt-in."""
    global _active
    with _global_lock:
        _active = store


def get_materialization_store() -> MaterializationStore:
    """The process-global store, created (and installed) on first use.

    ``REPRO_MATERIALIZE_DIR`` names the persistence directory; unset
    keeps the store memory-only.
    """
    global _active
    with _global_lock:
        if _active is None:
            directory = (
                os.environ.get("REPRO_MATERIALIZE_DIR", "").strip() or None
            )
            _active = MaterializationStore(directory=directory)
        return _active


def reset_materialization() -> None:
    """Drop the global store (test/benchmark hygiene)."""
    global _active
    with _global_lock:
        _active = None


@contextmanager
def materialization_scope(store: MaterializationStore | None):
    """Temporarily install ``store`` as the active global store.

    ``None`` is a no-op scope, so drivers can thread an optional store
    without branching.
    """
    if store is None:
        yield None
        return
    global _active
    with _global_lock:
        previous = _active
        _active = store
    try:
        yield store
    finally:
        with _global_lock:
            _active = previous

"""Per-execution reuse context: the executor's view of the store.

Built once per :func:`repro.runtime.executor.execute` call when a
materialization store is active, a :class:`ReuseContext` decides which
nodes of the compiled plan are *candidates* (non-leaf operators whose
estimated flops clear the store's admission floor — fingerprinting the
rest would cost more than it saves), fingerprints each candidate against
the prepared bindings, and then answers two questions on the hot path:

* :meth:`lookup` — is this node's value already materialized? A hit
  returns a private copy and the executor skips the whole subtree; the
  skipped work is exactly the entry's lineage, which is why a corrupted
  entry needs no special repair path — the miss it degrades to *is* the
  lineage recompute.
* :meth:`offer` — a candidate was just computed cold; hand the value to
  the store (admission may still reject it). Lineage children are the
  nearest candidate descendants, so the provenance graph mirrors the
  materialized granularity rather than every AST node.
"""

from __future__ import annotations

import numpy as np

from ..compiler.cost import node_flops
from ..lang.ast import Constant, Convert, Data, Node
from .fingerprint import Fingerprint, canonical_plan, fingerprint_node
from .store import MaterializationStore


class ReuseContext:
    """Fingerprint table for one plan execution against one store."""

    def __init__(
        self,
        plan,
        bindings: dict[str, object],
        store: MaterializationStore,
    ):
        self.store = store
        self.flags = "|".join(plan.passes)
        self._fps: dict[int, Fingerprint] = {}
        self._canon: dict[int, str] = {}
        self._collect(plan.root, bindings, set())

    def _collect(self, node: Node, bindings, seen: set[int]) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children:
            self._collect(child, bindings, seen)
        if isinstance(node, (Data, Constant, Convert)):
            return
        if node_flops(node) < self.store.min_flops:
            return
        self._fps[id(node)] = fingerprint_node(node, bindings, self.flags)
        self._canon[id(node)] = canonical_plan(node)[0]

    @property
    def candidates(self) -> int:
        return len(self._fps)

    def is_candidate(self, node: Node) -> bool:
        return id(node) in self._fps

    def fingerprint(self, node: Node) -> Fingerprint | None:
        return self._fps.get(id(node))

    def lookup(self, node: Node):
        """The materialized value for this node, or ``None``.

        Dense hits are returned as copies so downstream in-place use can
        never reach the store's resident bytes.
        """
        fp = self._fps.get(id(node))
        if fp is None:
            return None
        value = self.store.lookup(fp)
        if isinstance(value, np.ndarray):
            return value.copy()
        return value

    def offer(self, node: Node, value, label: str = "") -> bool:
        """Hand one cold-computed candidate value to the store."""
        fp = self._fps.get(id(node))
        if fp is None:
            return False
        return self.store.put(
            fp,
            value,
            label=label,
            flops=float(node_flops(node)),
            structural=self._canon.get(id(node), ""),
            children=self._child_keys(node),
        )

    def _child_keys(self, node: Node) -> tuple[str, ...]:
        """Keys of the nearest candidate descendants (lineage children)."""
        keys: list[str] = []
        stack = list(node.children)
        while stack:
            child = stack.pop()
            fp = self._fps.get(id(child))
            if fp is not None:
                keys.append(fp.key)
            else:
                stack.extend(child.children)
        return tuple(sorted(set(keys)))

"""Lineage-aware materialization with cross-workload sub-plan reuse.

Model selection re-derives the same intermediates run after run: every
grid point recomputes the gram matrix, every CV repeat recomputes fold
statistics, every feature-subset exploration shares most of its
sub-expressions with the last one. This package makes those
intermediates a managed resource:

* :mod:`~repro.materialize.fingerprint` — content-hashed identities for
  executed sub-plans (structure x operand bytes x optimizer flags), so
  matching is by *what is computed*, never by variable name, and a hit
  is bit-identical to cold execution by construction.
* :mod:`~repro.materialize.store` — the two-tier
  :class:`MaterializationStore` (bufferpool-charged memory + atomic
  CRC-checked disk files) with cost-based admission, pinning, and a
  corruption path that degrades to lineage recompute.
* :mod:`~repro.materialize.lineage` — provenance records linking each
  entry to the materialized sub-plans it was derived from.
* :mod:`~repro.materialize.reuse` — the per-execution
  :class:`ReuseContext` the executor consults.

Activation is explicit (:func:`set_materialization_store` /
:func:`materialization_scope`); with no store installed the executor's
behavior and plans are byte-identical to a build without this package.
"""

from .fingerprint import (
    Fingerprint,
    canonical_plan,
    content_hash,
    fingerprint_node,
    structural_key,
)
from .lineage import LineageGraph, LineageRecord
from .reuse import ReuseContext
from .store import (
    MaterializationStore,
    active_store,
    get_materialization_store,
    materialization_scope,
    reset_materialization,
    set_materialization_store,
)

__all__ = [
    "Fingerprint",
    "canonical_plan",
    "content_hash",
    "fingerprint_node",
    "structural_key",
    "LineageGraph",
    "LineageRecord",
    "ReuseContext",
    "MaterializationStore",
    "active_store",
    "get_materialization_store",
    "materialization_scope",
    "reset_materialization",
    "set_materialization_store",
]

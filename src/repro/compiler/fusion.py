"""Operator fusion.

Pattern-matches subtrees whose straightforward evaluation would
materialize a large intermediate, and replaces them with
:class:`~repro.lang.ast.Fused` nodes bound to single-pass kernels in
:mod:`repro.runtime.ops`:

* ``sum(X * Y)``          -> ``dot_sum``    (no n x d product matrix)
* ``sum(X ^ 2)``          -> ``sq_sum``
* ``sum((X - Y) ^ 2)``    -> ``diff_sq_sum``
* ``t(X) %*% X``          -> ``tsmm``       (transpose-self matmul / syrk)
* ``t(X) %*% (X %*% v)``  -> ``mvchain``    (the GLM gradient core)

These are the hand-written fused operators of SystemML (wsloss, tsmm,
mapmmchain) specialized to the dense single-node case.
"""

from __future__ import annotations

from ..lang.ast import Aggregate, Binary, Constant, Fused, MatMul, Node, Transpose


def apply_fusion(root: Node) -> Node:
    """Replace fusable patterns bottom-up; returns a new root."""
    new_children = [apply_fusion(c) for c in root.children]
    if any(nc is not oc for nc, oc in zip(new_children, root.children)):
        root = root.with_children(new_children)
    fused = _match(root)
    return fused if fused is not None else root


def _match(node: Node) -> Fused | None:
    if isinstance(node, Aggregate) and node.op == "sum" and node.axis is None:
        return _match_sum(node.child)
    if isinstance(node, MatMul):
        return _match_matmul(node)
    return None


def _match_sum(inner: Node) -> Fused | None:
    # sum(X ^ 2)
    if (
        isinstance(inner, Binary)
        and inner.op == "^"
        and isinstance(inner.right, Constant)
        and inner.right.is_scalar
        and inner.right.scalar_value == 2.0
    ):
        base = inner.left
        # sum((X - Y) ^ 2)
        if (
            isinstance(base, Binary)
            and base.op == "-"
            and base.left.shape == base.right.shape
        ):
            return Fused("diff_sq_sum", [base.left, base.right], (1, 1))
        return Fused("sq_sum", [base], (1, 1))
    # sum(X * Y) with equal shapes (broadcasting would change semantics)
    if (
        isinstance(inner, Binary)
        and inner.op == "*"
        and inner.left.shape == inner.right.shape
        and not inner.left.is_scalar
    ):
        return Fused("dot_sum", [inner.left, inner.right], (1, 1))
    return None


def _match_matmul(node: MatMul) -> Fused | None:
    left, right = node.left, node.right
    # t(X) %*% (X %*% v): evaluate as two matrix-vector products without
    # forming t(X) explicitly.
    if (
        isinstance(left, Transpose)
        and isinstance(right, MatMul)
        and left.child.key() == right.left.key()
        and right.right.shape[1] == 1
    ):
        return Fused(
            "mvchain",
            [left.child, right.right],
            (left.child.shape[1], 1),
        )
    # t(X) %*% X: symmetric rank-k update.
    if isinstance(left, Transpose) and left.child.key() == right.key():
        d = right.shape[1]
        return Fused("tsmm", [right], (d, d))
    return None


def fused_kinds(root: Node) -> list[str]:
    """Kinds of all fused nodes in the DAG (for tests and explain)."""
    from ..lang.ast import walk

    return [n.kind for n in walk(root) if isinstance(n, Fused)]

"""Plan caching.

Iterative ML drivers compile the same expression shape thousands of
times (one gradient per iteration, one distance matrix per Lloyd step).
A :class:`PlanCache` memoizes compiled plans on the expression's
structural key plus the optimizer flags, LRU-bounded — the plan-cache
component of declarative ML compilers.

Per-instance :class:`CacheStats` stay the caller's view; hits, misses,
and evictions are dual-written to the global :mod:`repro.obs` registry
as ``plancache.*`` so run reports see compilation caching next to
bufferpool and materialization behavior.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..lang.ast import Node
from ..lang.dsl import MExpr
from ..obs import get_registry
from .planner import CompiledPlan, compile_expr


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """LRU cache of compiled plans keyed by structure + flags."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._plans: OrderedDict[tuple, CompiledPlan] = OrderedDict()
        self.stats = CacheStats()

    def get_or_compile(
        self,
        expr: MExpr | Node,
        rewrites: bool = True,
        mmchain: bool = True,
        fusion: bool = True,
        cse: bool = True,
    ) -> CompiledPlan:
        node = expr.node if isinstance(expr, MExpr) else expr
        key = (node.key(), rewrites, mmchain, fusion, cse)
        cached = self._plans.get(key)
        if cached is not None:
            self.stats.hits += 1
            get_registry().inc("plancache.hits")
            self._plans.move_to_end(key)
            return cached
        self.stats.misses += 1
        get_registry().inc("plancache.misses")
        plan = compile_expr(
            node, rewrites=rewrites, mmchain=mmchain, fusion=fusion, cse=cse
        )
        self._plans[key] = plan
        if len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.stats.evictions += 1
            get_registry().inc("plancache.evictions")
        return plan

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)


#: process-wide default cache used by :func:`compile_expr_cached`
default_plan_cache = PlanCache()


def compile_expr_cached(expr: MExpr | Node, **flags: bool) -> CompiledPlan:
    """Compile through the process-wide plan cache."""
    return default_plan_cache.get_or_compile(expr, **flags)

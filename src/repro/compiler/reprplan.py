"""Compile-time representation planning (the ``reprplan`` pass).

Given a compiled plan and the operands it will run over, decide the
cheapest physical representation for each Data input — dense, CSR, CLA
column groups, or stay-factorized — the way SystemML's compression
planner and Morpheus's operator rewriter do: estimate how many FLOPs the
program spends touching each input, scale that by what the candidate
representation would actually execute (nnz for CSR, dictionary-sized
work for CLA, attribute-table-sized work for factorized), and disqualify
candidates the program would force to densify. Decisions are surfaced in
``explain`` and materialized as :class:`~repro.lang.ast.Convert` nodes
wrapping the Data inputs, so the physical plan names every conversion.

Sizing uses the sampling estimators already in
:mod:`repro.compression.estimators` (via ``plan_matrix``) and the FLOP
model in :mod:`repro.compiler.cost`; the runtime side lives in
:mod:`repro.runtime.repops`.

When a :class:`~repro.compiler.feedback.FeedbackStore` is active (or
passed via ``feedback=``), compile-time estimates are *blended* with
observed evidence — realized densities and CLA ratios EMA'd by the
executor, confidence-weighted so a cold store reduces to the pure
estimate — and a representation whose observed densify-fallback rate
crossed the demotion threshold is disqualified outright. Every
:class:`ReprChoice` carries the evidence behind it (``estimated`` vs
``observed``, with the blended confidence) and ``describe()`` prints
it, so a mis-planned input is debuggable from the plan text alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import CompilerError
from ..lang.ast import (
    Aggregate,
    Binary,
    Constant,
    Convert,
    Data,
    Fused,
    MatMul,
    Node,
    Transpose,
    Unary,
)
from ..lang.dsl import MExpr
from .cost import node_flops
from .feedback import BlendedEstimate, FeedbackStore, active_store, input_key
from .planner import CompiledPlan, compile_expr

#: inputs smaller than this (or vectors) are not worth re-representing
MIN_PLANNING_CELLS = 4096
#: CLA must promise at least this compression ratio to leave dense
MIN_CLA_RATIO = 1.2
#: a non-dense candidate must beat dense by at least 5% predicted flops
DENSE_ADVANTAGE = 0.95
#: index-chasing multiplier on CSR's nnz-proportional work
CSR_OVERHEAD = 2.0
#: floor on CLA's work fraction (gather cost never fully vanishes)
CLA_MIN_WORK_FRACTION = 0.05

_ZERO_PRESERVING_UNARY = {"neg", "sqrt", "abs", "sign", "round"}
_REP_KINDS = ("csr", "cla", "factorized")


@dataclass
class ReprChoice:
    """The planner's decision for one Data input."""

    input: str
    representation: str
    current: str
    reason: str
    est_flops: dict[str, float] = field(default_factory=dict)
    est_bytes: dict[str, int] = field(default_factory=dict)
    #: evidence behind the decision: per-quantity blended estimates
    #: (``"density"``, ``"cla_ratio"`` -> BlendedEstimate.as_dict())
    #: plus ``"demoted"`` (kind -> observed fallback count).
    evidence: dict[str, dict] = field(default_factory=dict)

    @property
    def needs_convert(self) -> bool:
        return self.representation != self.current

    def evidence_summary(self) -> str:
        """One-line provenance: estimated vs observed, with confidence."""
        parts = []
        for label in ("density", "cla_ratio"):
            ev = self.evidence.get(label)
            if not ev:
                continue
            blend = BlendedEstimate(**ev)
            parts.append(blend.describe(label))
        demoted = self.evidence.get("demoted")
        if demoted:
            parts.append(
                "demoted "
                + ", ".join(
                    f"{kind} ({count} observed fallbacks)"
                    for kind, count in sorted(demoted.items())
                )
            )
        return "; ".join(parts)


@dataclass
class RepresentationPlan:
    """All per-input decisions for one compiled plan."""

    choices: dict[str, ReprChoice]
    sample_fraction: float = 0.05

    def convert_bindings(self, bindings: dict) -> dict:
        """One-time conversion of bindings to their planned forms.

        Drivers call this before an iteration loop so the Convert nodes
        in the plan become per-iteration no-ops.
        """
        from ..runtime import repops

        out = dict(bindings)
        for name, choice in self.choices.items():
            value = out.get(name)
            if value is None:
                continue
            if repops.kind_of(value) != choice.representation:
                out[name] = repops.convert_value(
                    value, choice.representation, self.sample_fraction
                )
        return out

    def describe(self) -> str:
        lines = []
        for name in sorted(self.choices):
            c = self.choices[name]
            line = f"repr   : {name} -> {c.representation} ({c.reason})"
            summary = c.evidence_summary()
            if summary:
                line += f" [{summary}]"
            lines.append(line)
        return "\n".join(lines)


@dataclass
class _Profile:
    """How the program touches one input, from the compiled DAG."""

    touch_flops: float = 0.0
    unsupported: dict[str, set] = field(
        default_factory=lambda: {k: set() for k in _REP_KINDS}
    )

    def mark(self, label: str, *kinds: str) -> None:
        for kind in kinds:
            self.unsupported[kind].add(label)


def plan_representations(
    plan: CompiledPlan | MExpr | Node,
    bindings: dict,
    force: str | dict[str, str] | None = None,
    sample_fraction: float = 0.05,
    feedback: "FeedbackStore | bool | None" = None,
) -> CompiledPlan:
    """Annotate a plan with per-input representation decisions.

    Args:
        plan: a compiled plan (raw expressions are compiled first).
        bindings: the operands the plan will execute over — shapes,
            sparsity, and compressibility are estimated from them.
        force: ``"dense"`` pins every input dense (the materialize-
            then-dense baseline); a dict pins individual inputs.
        sample_fraction: row fraction for the compression estimators.
        feedback: observed-cost evidence to blend with the estimates.
            ``None`` uses the active global store (usually none —
            feedback is opt-in), ``False`` ignores feedback entirely,
            and a :class:`~repro.compiler.feedback.FeedbackStore` is
            consulted directly.

    Returns:
        A new :class:`CompiledPlan` with Convert nodes wrapping inputs
        whose planned form differs from their bound form, and
        ``repr_plan`` carrying the :class:`RepresentationPlan`.
    """
    from ..runtime import repops

    if isinstance(plan, (MExpr, Node)):
        plan = compile_expr(plan)
    if isinstance(force, str) and force != "dense":
        raise CompilerError(
            f"force must be 'dense' or a per-input dict, got {force!r}"
        )
    if feedback is None:
        store = active_store()
    elif feedback is False:
        store = None
    else:
        store = feedback

    profiles = _profile_inputs(plan.root)
    choices: dict[str, ReprChoice] = {}
    for name, shape in plan.inputs.items():
        if name not in bindings:
            raise CompilerError(
                f"cannot plan representations without a binding for {name!r}"
            )
        value = bindings[name]
        current = repops.kind_of(value)
        pinned = force if isinstance(force, str) else (force or {}).get(name)
        choices[name] = _choose(
            name,
            shape,
            value,
            current,
            profiles.get(name, _Profile()),
            pinned,
            sample_fraction,
            store,
        )

    targets = {
        name: c.representation
        for name, c in choices.items()
        if c.needs_convert
    }
    root = _wrap_converts(plan.root, targets)
    rp = RepresentationPlan(choices=choices, sample_fraction=sample_fraction)
    return replace(
        plan,
        root=root,
        passes=[*plan.passes, "reprplan"],
        repr_plan=rp,
    )


# ----------------------------------------------------------------------
# DAG profiling: per-input touch flops + native-servability per kind
# ----------------------------------------------------------------------
def _unwrap(node: Node) -> Node:
    while isinstance(node, (Transpose, Convert)):
        node = node.children[0]
    return node


def _direct_data(node: Node) -> Data | None:
    target = _unwrap(node)
    return target if isinstance(target, Data) else None


def _scalar_const(node: Node) -> float | None:
    if isinstance(node, Constant) and node.is_scalar:
        return node.scalar_value
    return None


def _profile_inputs(root: Node) -> dict[str, _Profile]:
    profiles: dict[str, _Profile] = {}
    seen: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.children)
        _profile_node(node, profiles)
    return profiles


def _touch(profiles: dict[str, _Profile], name: str) -> _Profile:
    profile = profiles.get(name)
    if profile is None:
        profile = profiles[name] = _Profile()
    return profile


def _profile_node(node: Node, profiles: dict[str, _Profile]) -> None:
    flops = float(node_flops(node))
    if isinstance(node, MatMul):
        for side in (node.left, node.right):
            data = _direct_data(side)
            if data is not None:
                _touch(profiles, data.name).touch_flops += flops
        return
    if isinstance(node, Fused):
        for child in node.children:
            data = _direct_data(child)
            if data is None:
                continue
            profile = _touch(profiles, data.name)
            profile.touch_flops += flops
            if node.kind == "dot_sum":
                profile.mark(f"fused:{node.kind}", "cla", "factorized")
            elif node.kind == "diff_sq_sum":
                profile.mark(f"fused:{node.kind}", *_REP_KINDS)
        return
    if isinstance(node, Binary):
        for side, other in (
            (node.left, node.right),
            (node.right, node.left),
        ):
            data = _direct_data(side)
            if data is None:
                continue
            profile = _touch(profiles, data.name)
            profile.touch_flops += flops
            scalar = _scalar_const(other)
            label = f"binary:{node.op}"
            if scalar is not None:
                if not _zero_preserving_scalar(
                    node.op, scalar, side is node.left
                ):
                    profile.mark(label, "csr")
            elif node.op == "*":
                profile.mark(label, "cla", "factorized")
            else:
                profile.mark(label, *_REP_KINDS)
        return
    if isinstance(node, Unary):
        data = _direct_data(node.child)
        if data is not None:
            profile = _touch(profiles, data.name)
            profile.touch_flops += flops
            if node.op not in _ZERO_PRESERVING_UNARY:
                profile.mark(f"unary:{node.op}", "csr")
        return
    if isinstance(node, Aggregate):
        data = _direct_data(node.child)
        if data is not None:
            profile = _touch(profiles, data.name)
            profile.touch_flops += flops
            if node.op not in ("sum", "mean"):
                profile.mark(f"agg:{node.op}", *_REP_KINDS)


def _zero_preserving_scalar(op: str, scalar: float, data_is_left: bool) -> bool:
    from ..runtime.ops import apply_binary

    with np.errstate(all="ignore"):
        zero = np.zeros(1)
        out = (
            apply_binary(op, zero, scalar)
            if data_is_left
            else apply_binary(op, scalar, zero)
        )
    return bool(np.all(out == 0.0))


# ----------------------------------------------------------------------
# Per-input decision
# ----------------------------------------------------------------------
def _measured(value: float) -> BlendedEstimate:
    """Evidence wrapper for a property read off the bound operand itself."""
    return BlendedEstimate(value, value, value, 1.0, "observed")


def _choose(
    name: str,
    shape: tuple[int, int],
    value,
    current: str,
    profile: _Profile,
    pinned: str | None,
    sample_fraction: float,
    store=None,
) -> ReprChoice:
    cells = shape[0] * shape[1]
    dense_bytes = cells * 8
    est_flops = {"dense": profile.touch_flops}
    est_bytes = {"dense": dense_bytes}
    evidence: dict[str, dict] = {}
    key = input_key(name, shape)

    if pinned is not None:
        return ReprChoice(
            name, pinned, current, "forced", est_flops, est_bytes
        )
    if min(shape) == 1 or cells < MIN_PLANNING_CELLS:
        return ReprChoice(
            name,
            current,
            current,
            "below planning threshold",
            est_flops,
            est_bytes,
        )

    candidates: dict[str, str] = {}  # representation -> reason

    if current == "factorized":
        ratio_ev = _measured(float(value.redundancy_ratio))
        evidence["cla_ratio"] = ratio_ev.as_dict()
        ratio = ratio_ev.value
        est_flops["factorized"] = profile.touch_flops / max(ratio, 1.0)
        est_bytes["factorized"] = int(value.memory_bytes)
        if not profile.unsupported["factorized"]:
            candidates["factorized"] = (
                f"stay factorized, redundancy {ratio:.1f}x"
            )
    elif current == "csr":
        density_ev = _measured(float(value.density))
        evidence["density"] = density_ev.as_dict()
        density = density_ev.value
        est_flops["csr"] = profile.touch_flops * min(
            1.0, density * CSR_OVERHEAD
        )
        est_bytes["csr"] = int(value.memory_bytes)
        if not profile.unsupported["csr"]:
            candidates["csr"] = f"stay sparse, density {density:.3f}"
    elif current == "cla":
        ratio_ev = _measured(float(value.compression_ratio))
        evidence["cla_ratio"] = ratio_ev.as_dict()
        ratio = ratio_ev.value
        est_flops["cla"] = profile.touch_flops * max(
            CLA_MIN_WORK_FRACTION, 1.0 / max(ratio, 1e-9)
        )
        est_bytes["cla"] = int(value.memory_bytes)
        if ratio >= MIN_CLA_RATIO and not profile.unsupported["cla"]:
            candidates["cla"] = f"stay compressed, ratio {ratio:.1f}x"
    else:  # dense binding: consider CSR and CLA
        arr = np.asarray(value, dtype=np.float64)
        sampled_density = _estimate_density(arr)
        if store is not None:
            density_ev = store.blended_density(key, sampled_density)
        else:
            density_ev = BlendedEstimate(
                sampled_density, sampled_density, None, 0.0, "estimated"
            )
        evidence["density"] = density_ev.as_dict()
        density = density_ev.value
        est_flops["csr"] = profile.touch_flops * min(
            1.0, density * CSR_OVERHEAD
        )
        est_bytes["csr"] = int(
            round(cells * density * 16 + (shape[0] + 1) * 8)
        )
        if not profile.unsupported["csr"]:
            candidates["csr"] = f"sparse, est density {density:.3f}"
        sampled_ratio = _estimate_cla_ratio(arr, sample_fraction)
        if store is not None:
            ratio_ev = store.blended_ratio(key, sampled_ratio)
        else:
            ratio_ev = BlendedEstimate(
                sampled_ratio, sampled_ratio, None, 0.0, "estimated"
            )
        evidence["cla_ratio"] = ratio_ev.as_dict()
        ratio = ratio_ev.value
        est_flops["cla"] = profile.touch_flops * max(
            CLA_MIN_WORK_FRACTION, 1.0 / max(ratio, 1e-9)
        )
        est_bytes["cla"] = int(round(dense_bytes / max(ratio, 1e-9)))
        if ratio >= MIN_CLA_RATIO and not profile.unsupported["cla"]:
            candidates["cla"] = f"compressible, est ratio {ratio:.1f}x"

    demoted = store.demoted_kinds(key) if store is not None else {}
    demoted_hits = {
        kind: count for kind, count in demoted.items() if kind in candidates
    }
    if demoted_hits:
        evidence["demoted"] = demoted_hits
        for kind in demoted_hits:
            candidates.pop(kind)

    best_rep, best_reason = None, ""
    for rep, reason in candidates.items():
        if est_flops[rep] >= DENSE_ADVANTAGE * est_flops["dense"]:
            continue
        if best_rep is None or est_flops[rep] < est_flops[best_rep]:
            best_rep, best_reason = rep, reason
    if best_rep is None:
        if demoted_hits:
            reason = (
                ", ".join(sorted(demoted_hits))
                + " demoted by observed densify fallbacks"
            )
        else:
            blocked = sorted(
                op
                for kind in _REP_KINDS
                for op in profile.unsupported[kind]
                if kind in est_flops
            )
            reason = (
                f"dense; non-dense blocked by {', '.join(blocked)}"
                if blocked
                else "dense is cheapest"
            )
        return ReprChoice(
            name, "dense", current, reason, est_flops, est_bytes, evidence
        )
    return ReprChoice(
        name,
        best_rep,
        current,
        f"{best_reason}; est flops "
        f"{est_flops[best_rep]:.2e} vs dense {est_flops['dense']:.2e}",
        est_flops,
        est_bytes,
        evidence,
    )


def _estimate_density(arr: np.ndarray, max_sample_rows: int = 65536) -> float:
    n = arr.shape[0]
    if n <= max_sample_rows:
        sample = arr
    else:
        # Deterministic strided sample spanning the whole row range,
        # first and last row included. A contiguous-prefix (or naive
        # floor-stride) sample is biased for row-sorted data — e.g. a
        # matrix whose dense rows all sit at the tail would look empty.
        idx = np.linspace(0, n - 1, num=max_sample_rows).astype(np.intp)
        sample = arr[idx]
    cells = sample.size or 1
    return float(np.count_nonzero(sample)) / cells


def _estimate_cla_ratio(arr: np.ndarray, sample_fraction: float) -> float:
    from ..compression.planner import plan_matrix

    plan = plan_matrix(arr, sample_fraction=sample_fraction)
    est = sum(c.estimated_bytes for c in plan.columns)
    dense = sum(c.dense_bytes for c in plan.columns)
    return dense / max(est, 1)


# ----------------------------------------------------------------------
# Convert insertion (preserves DAG sharing)
# ----------------------------------------------------------------------
def _wrap_converts(root: Node, targets: dict[str, str]) -> Node:
    if not targets:
        return root
    memo: dict[int, Node] = {}

    def visit(node: Node) -> Node:
        hit = memo.get(id(node))
        if hit is not None:
            return hit
        if isinstance(node, Data):
            target = targets.get(node.name)
            new = Convert(node, target) if target else node
        elif node.children:
            new_children = [visit(c) for c in node.children]
            if any(a is not b for a, b in zip(new_children, node.children)):
                new = node.with_children(new_children)
            else:
                new = node
        else:
            new = node
        memo[id(node)] = new
        return new

    return visit(root)

"""Static algebraic rewrites.

Bottom-up, to fixpoint: constant folding, arithmetic identities,
transpose elimination, aggregate push-down, scalar pull-out of matrix
multiplication, and the classic trace rewrite
``trace(A %*% B) -> sum(A * t(B))`` that turns an O(m*k*m) product into an
O(m*k) element-wise form. These mirror the static HOP-DAG rewrites of
SystemML's compiler.
"""

from __future__ import annotations

import numpy as np

from ..lang.ast import (
    Aggregate,
    Binary,
    Constant,
    Data,
    MatMul,
    Node,
    Transpose,
    Unary,
)

_MAX_PASSES = 25
#: constants larger than this many cells are not materialized by folding
_FOLD_CELL_LIMIT = 1_000_000


def apply_rewrites(root: Node) -> Node:
    """Rewrite the tree to fixpoint; returns a new root."""
    current = root
    for _ in range(_MAX_PASSES):
        rewritten, changed = _rewrite(current)
        current = rewritten
        if not changed:
            break
    return current


def _rewrite(node: Node) -> tuple[Node, bool]:
    # Rewrite children first (bottom-up).
    changed = False
    new_children = []
    for child in node.children:
        new_child, child_changed = _rewrite(child)
        new_children.append(new_child)
        changed = changed or child_changed
    if changed:
        node = node.with_children(new_children)

    replacement = _rewrite_one(node)
    if replacement is not None:
        return replacement, True
    return node, changed


def _rewrite_one(node: Node) -> Node | None:
    """Apply the first matching rule at this node, or None."""
    folded = _fold_constants(node)
    if folded is not None:
        return folded

    if isinstance(node, Transpose):
        return _rewrite_transpose(node)
    if isinstance(node, Binary):
        return _rewrite_binary(node)
    if isinstance(node, Unary):
        return _rewrite_unary(node)
    if isinstance(node, MatMul):
        return _rewrite_matmul(node)
    if isinstance(node, Aggregate):
        return _rewrite_aggregate(node)
    return None


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------
def _fold_constants(node: Node) -> Node | None:
    if isinstance(node, (Data, Constant)) or not node.children:
        return None
    if not all(isinstance(c, Constant) for c in node.children):
        return None
    if node.shape[0] * node.shape[1] > _FOLD_CELL_LIMIT:
        return None
    values = [c.value for c in node.children]  # type: ignore[union-attr]
    result = _evaluate_on_constants(node, values)
    if result is None:
        return None
    return Constant(result)


def _evaluate_on_constants(node: Node, values: list[np.ndarray]):
    if isinstance(node, Binary):
        a, b = values
        ops = {
            "+": np.add,
            "-": np.subtract,
            "*": np.multiply,
            "/": np.divide,
            "^": np.power,
            "min": np.minimum,
            "max": np.maximum,
        }
        with np.errstate(all="ignore"):
            return np.broadcast_to(ops[node.op](a, b), node.shape).copy()
    if isinstance(node, Unary):
        from ..runtime.ops import apply_unary

        with np.errstate(all="ignore"):
            return apply_unary(node.op, values[0])
    if isinstance(node, Transpose):
        return values[0].T.copy()
    if isinstance(node, MatMul):
        return values[0] @ values[1]
    if isinstance(node, Aggregate):
        from ..runtime.ops import apply_aggregate

        return apply_aggregate(node.op, values[0], node.axis)
    return None


# ----------------------------------------------------------------------
# Per-type rules
# ----------------------------------------------------------------------
def _rewrite_transpose(node: Transpose) -> Node | None:
    # t(t(X)) -> X
    if isinstance(node.child, Transpose):
        return node.child.child
    # t(scalar) -> scalar
    if node.child.is_scalar:
        return node.child
    # t(c * X) -> c * t(X): hoist scalars through transpose so matmul
    # scalar pull-out (and tsmm fusion) can see through it.
    if isinstance(node.child, Binary) and node.child.op == "*":
        scalar, mat = _split_scalar_product(node.child)
        if scalar is not None and mat.shape == node.child.shape:
            return Binary("*", scalar, Transpose(mat))
    return None


def _scalar_of(node: Node) -> float | None:
    if isinstance(node, Constant) and node.is_scalar:
        return node.scalar_value
    return None


def _zeros_like(node: Node) -> Constant:
    return Constant(np.zeros(node.shape))


def _rewrite_binary(node: Binary) -> Node | None:
    left_scalar = _scalar_of(node.left)
    right_scalar = _scalar_of(node.right)

    if node.op == "+":
        if right_scalar == 0.0 and node.shape == node.left.shape:
            return node.left
        if left_scalar == 0.0 and node.shape == node.right.shape:
            return node.right
    elif node.op == "-":
        if right_scalar == 0.0 and node.shape == node.left.shape:
            return node.left
    elif node.op == "*":
        if right_scalar == 1.0 and node.shape == node.left.shape:
            return node.left
        if left_scalar == 1.0 and node.shape == node.right.shape:
            return node.right
        if right_scalar == 0.0 or left_scalar == 0.0:
            if node.shape[0] * node.shape[1] <= _FOLD_CELL_LIMIT:
                return _zeros_like(node)
    elif node.op == "/":
        if right_scalar == 1.0 and node.shape == node.left.shape:
            return node.left
    elif node.op == "^":
        if right_scalar == 1.0:
            return node.left
        if right_scalar == 0.0:
            if node.shape[0] * node.shape[1] <= _FOLD_CELL_LIMIT:
                return Constant(np.ones(node.shape))
    return None


def _rewrite_unary(node: Unary) -> Node | None:
    # neg(neg(X)) -> X
    if node.op == "neg" and isinstance(node.child, Unary) and node.child.op == "neg":
        return node.child.child
    # log(exp(X)) -> X (exact)
    if node.op == "log" and isinstance(node.child, Unary) and node.child.op == "exp":
        return node.child.child
    return None


def _rewrite_matmul(node: MatMul) -> Node | None:
    # Pull scalars out of matmul: (c*X) %*% Y -> c * (X %*% Y).
    # The scalar multiply then runs on the (usually much smaller) product.
    for side in ("left", "right"):
        operand = getattr(node, side)
        if isinstance(operand, Binary) and operand.op == "*":
            scalar, mat = _split_scalar_product(operand)
            if scalar is not None:
                other = node.right if side == "left" else node.left
                inner = (
                    MatMul(mat, other) if side == "left" else MatMul(other, mat)
                )
                return Binary("*", scalar, inner)
    return None


def _split_scalar_product(node: Binary) -> tuple[Node | None, Node]:
    """For X*Y where one side is scalar, return (scalar, matrix)."""
    if node.left.is_scalar and not node.right.is_scalar:
        return node.left, node.right
    if node.right.is_scalar and not node.left.is_scalar:
        return node.right, node.left
    return None, node


def _rewrite_aggregate(node: Aggregate) -> Node | None:
    child = node.child

    # trace(A %*% B) -> sum(A * t(B)): avoids materializing the m x m product.
    if node.op == "trace" and isinstance(child, MatMul):
        return Aggregate("sum", Binary("*", child.left, Transpose(child.right)))

    if node.op == "sum" and node.axis is None:
        # sum(t(X)) -> sum(X)
        if isinstance(child, Transpose):
            return Aggregate("sum", child.child)
        # sum(A +/- B) -> sum(A) +/- sum(B) (only when shapes match exactly;
        # broadcasting would change the effective multiplicity).
        if (
            isinstance(child, Binary)
            and child.op in ("+", "-")
            and child.left.shape == child.right.shape
        ):
            return Binary(
                child.op,
                Aggregate("sum", child.left),
                Aggregate("sum", child.right),
            )
        # sum(c * X) -> c * sum(X) for scalar c
        if isinstance(child, Binary) and child.op == "*":
            scalar, mat = _split_scalar_product(child)
            if scalar is not None:
                return Binary("*", scalar, Aggregate("sum", mat))

    # mean(X) -> sum(X) / cells (normalizes aggregates to one kind)
    if node.op == "mean" and node.axis is None:
        cells = child.shape[0] * child.shape[1]
        return Binary("/", Aggregate("sum", child), Constant(float(cells)))
    return None

"""Analytical cost model for expression DAGs.

Costs are estimated exactly the way HOP-level optimizers do it: FLOPs from
shapes (matmul dominates) and intermediate memory from output sizes. The
model does not try to be cycle-accurate — it only needs to *rank* plans,
which is what the mmchain optimizer and the explain output use it for.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import (
    Aggregate,
    Binary,
    Constant,
    Convert,
    Data,
    Fused,
    MatMul,
    Node,
    Transpose,
    Unary,
)

BYTES_PER_CELL = 8  # float64


def _cells(shape: tuple[int, int]) -> int:
    return shape[0] * shape[1]


def node_flops(node: Node) -> int:
    """Estimated floating-point operations to evaluate one node
    (children assumed already available)."""
    if isinstance(node, (Data, Constant)):
        return 0
    if isinstance(node, MatMul):
        m, k = node.left.shape
        n = node.right.shape[1]
        return 2 * m * k * n
    if isinstance(node, (Binary, Unary)):
        return _cells(node.shape) if isinstance(node, Unary) else _cells(node.shape)
    if isinstance(node, Transpose):
        return _cells(node.shape)
    if isinstance(node, Convert):
        # One pass over the operand; free once bindings are pre-converted.
        return _cells(node.shape)
    if isinstance(node, Aggregate):
        return _cells(node.child.shape)
    if isinstance(node, Fused):
        return _fused_flops(node)
    return _cells(node.shape)


def _fused_flops(node: Fused) -> int:
    """Arithmetic cost of each fused kernel (same math, fewer passes)."""
    if node.kind == "tsmm":
        n, d = node.children[0].shape
        return 2 * n * d * d
    if node.kind == "mvchain":
        n, d = node.children[0].shape
        return 4 * n * d  # two matrix-vector products
    # Streaming reductions: one multiply-add per input cell.
    return sum(_cells(c.shape) for c in node.children) * 2


def node_output_bytes(node: Node) -> int:
    """Memory for one node's materialized output."""
    if isinstance(node, (Data, Constant)):
        return 0  # inputs are not intermediates
    return _cells(node.shape) * BYTES_PER_CELL


@dataclass
class CostEstimate:
    """Aggregate cost of evaluating an expression DAG once."""

    flops: int
    intermediate_bytes: int
    num_ops: int

    def __str__(self) -> str:
        return (
            f"flops={self.flops:,} intermediates={self.intermediate_bytes:,}B "
            f"ops={self.num_ops}"
        )


def estimate(root: Node) -> CostEstimate:
    """Cost of the DAG reachable from ``root``.

    Shared subexpressions (the same node object reached twice) are counted
    once, which is exactly the benefit CSE buys.
    """
    seen: set[int] = set()
    flops = 0
    mem = 0
    ops = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        flops += node_flops(node)
        mem += node_output_bytes(node)
        if not isinstance(node, (Data, Constant)):
            ops += 1
        stack.extend(node.children)
    return CostEstimate(flops=flops, intermediate_bytes=mem, num_ops=ops)

"""Sparsity propagation through expression DAGs.

Declarative ML compilers track an nnz estimate per intermediate so they
can pick sparse kernels and size memory budgets. This module implements
the standard worst-case propagation rules over the AST (the same rules
SystemML's HOP-level size propagation uses) and a sparsity-aware FLOP
estimate built on them.
"""

from __future__ import annotations

import numpy as np

from ..lang.ast import (
    Aggregate,
    Binary,
    Constant,
    Convert,
    Data,
    Fused,
    MatMul,
    Node,
    Transpose,
    Unary,
)

#: unary ops with f(0) == 0: they preserve zeros
_ZERO_PRESERVING_UNARY = {"neg", "sqrt", "abs", "sign", "round"}


def propagate_sparsity(
    root: Node, input_sparsity: dict[str, float] | None = None
) -> dict[int, float]:
    """Estimated nonzero fraction for every node, keyed by ``id(node)``.

    Args:
        input_sparsity: sparsity of each Data input by name; inputs not
            listed are assumed dense (1.0).
    """
    input_sparsity = input_sparsity or {}
    out: dict[int, float] = {}

    def visit(node: Node) -> float:
        cached = out.get(id(node))
        if cached is not None:
            return cached
        child_s = [visit(c) for c in node.children]
        s = _rule(node, child_s, input_sparsity)
        out[id(node)] = s
        return s

    visit(root)
    return out


def _rule(node: Node, child_s: list[float], inputs: dict[str, float]) -> float:
    if isinstance(node, Data):
        return float(np.clip(inputs.get(node.name, 1.0), 0.0, 1.0))
    if isinstance(node, Constant):
        cells = node.value.size or 1
        return float(np.count_nonzero(node.value)) / cells
    if isinstance(node, Transpose):
        return child_s[0]
    if isinstance(node, Convert):
        return child_s[0]  # physical-only: the logical value is unchanged
    if isinstance(node, Unary):
        if node.op in _ZERO_PRESERVING_UNARY:
            return child_s[0]
        return 1.0  # exp/log/sigmoid map 0 to a nonzero
    if isinstance(node, Binary):
        s1, s2 = child_s
        if node.op == "*":
            # Worst-case independence: nonzero only where both are.
            return min(s1, s2) if _either_scalar(node) else s1 * s2
        if node.op in ("+", "-", "min", "max"):
            return min(1.0, s1 + s2)
        if node.op == "/":
            return s1  # zeros of the numerator survive
        if node.op == "^":
            exponent = node.right
            if (
                isinstance(exponent, Constant)
                and exponent.is_scalar
                and exponent.scalar_value == 0.0
            ):
                return 1.0  # x^0 == 1 everywhere
            return s1
        return 1.0
    if isinstance(node, MatMul):
        s1, s2 = child_s
        k = node.left.shape[1]
        # P(output cell nonzero) = 1 - P(every product term zero).
        return float(1.0 - (1.0 - s1 * s2) ** k)
    if isinstance(node, (Aggregate, Fused)):
        return 1.0
    return 1.0


def _either_scalar(node: Binary) -> bool:
    return node.left.is_scalar or node.right.is_scalar


def sparse_aware_flops(
    root: Node, input_sparsity: dict[str, float] | None = None
) -> int:
    """FLOP estimate where matmul cost scales with operand sparsity.

    Used to quantify how much work a sparse kernel would actually do —
    the number a format-aware optimizer compares against the dense cost
    from :func:`repro.compiler.cost.estimate`.
    """
    sparsity = propagate_sparsity(root, input_sparsity)
    seen: set[int] = set()
    flops = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.children)
        if isinstance(node, MatMul):
            m, k = node.left.shape
            n = node.right.shape[1]
            s = min(sparsity[id(node.left)], sparsity[id(node.right)])
            flops += max(1, int(2 * m * k * n * s))
        elif isinstance(node, (Binary, Unary, Transpose)):
            flops += node.shape[0] * node.shape[1]
        elif isinstance(node, Aggregate):
            flops += node.child.shape[0] * node.child.shape[1]
        elif isinstance(node, Fused):
            flops += sum(c.shape[0] * c.shape[1] for c in node.children)
    return flops

"""Common-subexpression elimination via hash-consing.

The rewritten tree is converted into a DAG: structurally identical
subtrees become the *same* Python object, so the executor (which memoizes
on object identity) evaluates each distinct subexpression exactly once.
"""

from __future__ import annotations

from ..lang.ast import Node


def eliminate_common_subexpressions(root: Node) -> Node:
    """Hash-cons the tree into a DAG of unique nodes."""
    interned: dict[tuple, Node] = {}

    def intern(node: Node) -> Node:
        new_children = [intern(c) for c in node.children]
        if any(nc is not oc for nc, oc in zip(new_children, node.children)):
            node = node.with_children(new_children)
        key = node.key()
        existing = interned.get(key)
        if existing is not None:
            return existing
        interned[key] = node
        return node

    return intern(root)


def count_unique_ops(root: Node) -> int:
    """Distinct operator nodes in the DAG (inputs excluded)."""
    from ..lang.ast import Constant, Data

    seen: set[int] = set()
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if not isinstance(node, (Data, Constant)):
            count += 1
        stack.extend(node.children)
    return count


def count_tree_ops(root: Node) -> int:
    """Operator nodes counted with repetition (i.e. without CSE)."""
    from ..lang.ast import Constant, Data

    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if not isinstance(node, (Data, Constant)):
            count += 1
        stack.extend(node.children)
    return count

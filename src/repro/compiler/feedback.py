"""Adaptive re-optimization: the observed-cost feedback store.

SystemML's signature runtime trick is *dynamic recompilation*: when the
sizes, sparsity, or costs observed while running diverge from what the
compiler assumed, the plan is corrected mid-flight instead of trusted to
the end. This module is that loop's memory. A :class:`FeedbackStore`
aggregates what the runtime actually measured — realized densities and
compression ratios per input, densify-fallback outcomes per
representation kind, per-op wall costs, and per-site pmap speedups — and
the planners read it back:

* :func:`repro.compiler.reprplan.plan_representations` blends observed
  density/ratio evidence with its sampled estimates and demotes a
  representation that keeps densifying;
* :class:`repro.runtime.parallel.ParallelContext` consults
  :meth:`FeedbackStore.site_policy` so a call site whose measured
  speedup is below 1 stops fanning out and a winning site earns a lower
  threshold;
* the iterative drivers (``glm.logreg_gd``, ``kmeans_dsl``) re-plan
  between epochs when the store disagrees with the current plan.

Evidence is an exponential moving average with a confidence weight
``count / (count + CONFIDENCE_HALFWAY)``: cold sections blend to the
pure compile-time estimate, and confidence saturates as observations
accumulate. A ``frozen`` store ignores new observations, pinning every
consumer's decision for deterministic replay.

The store is **off by default**. :func:`active_store` returns ``None``
unless ``REPRO_FEEDBACK`` is truthy, a store was installed with
:func:`set_feedback_store` / :func:`feedback_scope`, or
:func:`set_feedback` forced it on — so the disabled hot path costs one
function call and a dict lookup (E23 bounds it below 3%).

Persistence goes through :mod:`repro.persist` (the same atomic
header+CRC file format the checkpointer uses): a JSON header carrying
the schema (``repro.feedback/v1``) and the payload's CRC32, written to
a temp file in the target directory and ``os.replace``d into place. :meth:`FeedbackStore.load` rejects schema mismatches and corrupt
bytes; :meth:`FeedbackStore.load_or_cold` falls back to an empty store
(pure estimates) instead, counting the failure in the obs registry.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import ReproError
from ..obs import get_registry
from ..persist import read_verified, write_atomic

SCHEMA = "repro.feedback/v1"

#: weight of the newest observation in every moving average.
EMA_DECAY = 0.3
#: observation count at which blended confidence reaches 0.5.
CONFIDENCE_HALFWAY = 2.0
#: fallbacks per observed execution (of a kind) that demote the kind.
DEMOTION_FALLBACK_RATE = 0.5
#: paired serial/parallel observations needed before a site policy fires.
MIN_SITE_OBSERVATIONS = 1
#: measured speedup below this turns a site serial.
SITE_LOSS_SPEEDUP = 1.0
#: measured speedup above this lowers the site's cost threshold.
SITE_WIN_SPEEDUP = 1.2

_TRUTHY = ("1", "true", "yes", "on")


class FeedbackError(ReproError):
    """Feedback-store persistence or schema validation failed."""


# ----------------------------------------------------------------------
# EMA + confidence primitives (stored as plain dicts: JSON round-trips)
# ----------------------------------------------------------------------
def _ema_update(stat: dict, value: float) -> None:
    count = stat.get("count", 0)
    if count == 0:
        stat["ema"] = float(value)
    else:
        stat["ema"] = EMA_DECAY * float(value) + (1.0 - EMA_DECAY) * stat["ema"]
    stat["count"] = count + 1
    stat["last"] = float(value)


def _confidence(count: int) -> float:
    return count / (count + CONFIDENCE_HALFWAY)


@dataclass(frozen=True)
class BlendedEstimate:
    """One quantity after mixing compile-time and observed evidence."""

    value: float
    estimated: float
    observed: float | None
    confidence: float
    source: str  # "estimated" (cold) or "observed" (evidence blended in)

    def describe(self, label: str) -> str:
        if self.source == "estimated":
            return f"{label} est {self.estimated:.3g}"
        return (
            f"{label} {self.value:.3g} "
            f"(est {self.estimated:.3g}, obs {self.observed:.3g}, "
            f"conf {self.confidence:.2f})"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "estimated": self.estimated,
            "observed": self.observed,
            "confidence": self.confidence,
            "source": self.source,
        }


def _blend(stat: dict | None, estimated: float) -> BlendedEstimate:
    if not stat or stat.get("count", 0) == 0:
        return BlendedEstimate(
            float(estimated), float(estimated), None, 0.0, "estimated"
        )
    conf = _confidence(stat["count"])
    value = conf * stat["ema"] + (1.0 - conf) * float(estimated)
    return BlendedEstimate(
        value, float(estimated), stat["ema"], conf, "observed"
    )


@dataclass(frozen=True)
class SitePolicy:
    """A learned dispatch decision for one pmap call site."""

    site: str
    speedup: float
    observations: int
    confidence: float
    #: "serial" — stop fanning out; "boost" — divide the static cost
    #: threshold by ``speedup``; anything in between yields no policy.
    action: str


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class FeedbackStore:
    """Thread-safe, versioned memory of what the runtime measured.

    Sections (all keyed by strings so they JSON round-trip):

    ``inputs``
        ``"name@RxC"`` -> per-kind execution/fallback counts plus
        density and CLA-ratio moving averages.
    ``ops``
        op label (e.g. ``"matmul"``) -> wall-seconds moving averages,
        attributed from each execution's flop shares or span durations.
    ``sites``
        pmap site -> dispatch counts plus per-task wall moving averages
        for the serial and parallel paths (their ratio is the realized
        speedup) and the work/wall ratio as a fallback signal.

    Args:
        path: default location for :meth:`save`/:meth:`load`.
        frozen: ignore all ``observe_*`` calls — consumers see a pinned,
            deterministic model.
    """

    def __init__(self, path: str | os.PathLike | None = None,
                 frozen: bool = False):
        self.path = os.fspath(path) if path is not None else None
        self.frozen = frozen
        self.updates = 0
        self._lock = threading.Lock()
        self._inputs: dict[str, dict] = {}
        self._ops: dict[str, dict] = {}
        self._sites: dict[str, dict] = {}

    # -- observers ------------------------------------------------------
    def observe_input(
        self,
        key: str,
        kind: str,
        density: float | None = None,
        cla_ratio: float | None = None,
        fallbacks: int = 0,
    ) -> None:
        """Record one execution's realized view of a bound input."""
        if self.frozen:
            return
        with self._lock:
            entry = self._inputs.setdefault(
                key,
                {"executions": {}, "fallbacks": {}, "density": {},
                 "cla_ratio": {}},
            )
            entry["executions"][kind] = entry["executions"].get(kind, 0) + 1
            if fallbacks:
                entry["fallbacks"][kind] = (
                    entry["fallbacks"].get(kind, 0) + fallbacks
                )
            if density is not None:
                _ema_update(entry["density"], density)
            if cla_ratio is not None:
                _ema_update(entry["cla_ratio"], cla_ratio)
            self.updates += 1

    def observe_op(self, label: str, seconds: float,
                   flops: float | None = None) -> None:
        """Record one op's attributed wall cost (and cost per flop)."""
        if self.frozen:
            return
        with self._lock:
            entry = self._ops.setdefault(
                label, {"seconds": {}, "seconds_per_flop": {}}
            )
            _ema_update(entry["seconds"], seconds)
            if flops:
                _ema_update(entry["seconds_per_flop"], seconds / flops)
            self.updates += 1

    def observe_site(
        self, site: str, tasks: int, parallel: bool, wall: float, work: float
    ) -> None:
        """Record one pmap dispatch outcome (called by ``_record``)."""
        if self.frozen or tasks <= 0:
            return
        per_task = wall / tasks
        with self._lock:
            entry = self._sites.setdefault(
                site,
                {"parallel_calls": 0, "serial_calls": 0,
                 "parallel_per_task": {}, "serial_per_task": {},
                 "work_speedup": {}},
            )
            if parallel:
                entry["parallel_calls"] += 1
                _ema_update(entry["parallel_per_task"], per_task)
                if wall > 0:
                    _ema_update(entry["work_speedup"], work / wall)
            else:
                entry["serial_calls"] += 1
                _ema_update(entry["serial_per_task"], per_task)
            self.updates += 1

    def observe_execution(self, bindings: dict, stats, wall_seconds: float
                          ) -> None:
        """Digest one ``execute()`` call: inputs, fallbacks, op costs.

        ``bindings`` are the executor's prepared operands; ``stats`` is
        its :class:`~repro.runtime.executor.ExecutionStats`. Fallbacks
        are attributed per representation *kind* (the stats tally them
        by kind), so every input bound in a kind that densified this
        run accumulates demotion evidence.
        """
        if self.frozen:
            return
        from ..runtime import repops

        fallback_kinds = getattr(stats, "fallback_kinds", {})
        for name, value in bindings.items():
            kind = repops.kind_of(value)
            shape = getattr(value, "shape", None)
            if not shape or len(shape) != 2:
                continue
            key = input_key(name, shape)
            density = None
            ratio = None
            if kind == "csr":
                density = float(value.density)
            elif kind == "cla":
                ratio = float(value.compression_ratio)
            elif kind == "factorized":
                ratio = float(value.redundancy_ratio)
            else:
                density = _array_density(value)
            self.observe_input(
                key,
                kind,
                density=density,
                cla_ratio=ratio,
                fallbacks=int(fallback_kinds.get(kind, 0)),
            )
        op_flops = getattr(stats, "op_flops", {})
        total = sum(op_flops.values())
        if wall_seconds > 0 and total > 0:
            for label, flops in op_flops.items():
                self.observe_op(
                    label, wall_seconds * flops / total, flops=flops
                )
        get_registry().inc("feedback.updates")

    def ingest_spans(self, roots: Iterable) -> int:
        """Harvest ``executor.op`` span durations into the op section.

        Accepts :class:`~repro.obs.trace.Span` objects or their
        ``as_dict`` forms; returns how many op spans were consumed.
        """
        if self.frozen:
            return 0
        consumed = 0
        stack = list(roots)
        while stack:
            node = stack.pop()
            if isinstance(node, dict):
                name = node.get("name")
                duration = node.get("duration_s", 0.0)
                attrs = node.get("attrs", {}) or {}
                stack.extend(node.get("children", ()))
            else:
                name = node.name
                duration = node.duration
                attrs = node.attrs
                stack.extend(node.children)
            if name == "executor.op":
                label = attrs.get("op")
                if label:
                    self.observe_op(str(label), float(duration))
                    consumed += 1
        return consumed

    # -- consumers ------------------------------------------------------
    def blended_density(self, key: str, estimated: float) -> BlendedEstimate:
        with self._lock:
            stat = self._inputs.get(key, {}).get("density")
            return _blend(stat, estimated)

    def blended_ratio(self, key: str, estimated: float) -> BlendedEstimate:
        with self._lock:
            stat = self._inputs.get(key, {}).get("cla_ratio")
            return _blend(stat, estimated)

    def demoted_kinds(self, key: str) -> dict[str, int]:
        """Kinds whose observed densify-fallback rate disqualifies them."""
        with self._lock:
            entry = self._inputs.get(key)
            if entry is None:
                return {}
            out = {}
            for kind, count in entry.get("fallbacks", {}).items():
                runs = entry.get("executions", {}).get(kind, 0)
                if runs > 0 and count >= DEMOTION_FALLBACK_RATE * runs:
                    out[kind] = count
            return out

    def op_cost(self, label: str) -> float | None:
        """Observed wall-seconds EMA for one op label, if any."""
        with self._lock:
            stat = self._ops.get(label, {}).get("seconds")
            return stat.get("ema") if stat else None

    def site_policy(self, site: str) -> SitePolicy | None:
        """The learned dispatch decision for one site, if any.

        Prefers the *paired* signal — serial vs parallel per-task wall —
        which stays honest for GIL-bound thread work where summed task
        time over wall would overcount. Falls back to the work/wall
        ratio when the site has never run serially.
        """
        with self._lock:
            entry = self._sites.get(site)
            if entry is None:
                return None
            par = entry.get("parallel_per_task", {})
            ser = entry.get("serial_per_task", {})
            if (
                par.get("count", 0) >= MIN_SITE_OBSERVATIONS
                and ser.get("count", 0) >= MIN_SITE_OBSERVATIONS
            ):
                count = min(par["count"], ser["count"])
                speedup = ser["ema"] / max(par["ema"], 1e-12)
            else:
                work = entry.get("work_speedup", {})
                if work.get("count", 0) < MIN_SITE_OBSERVATIONS:
                    return None
                count = work["count"]
                speedup = work["ema"]
        if speedup < SITE_LOSS_SPEEDUP:
            action = "serial"
        elif speedup >= SITE_WIN_SPEEDUP:
            action = "boost"
        else:
            return None
        return SitePolicy(
            site=site,
            speedup=speedup,
            observations=count,
            confidence=_confidence(count),
            action=action,
        )

    # -- lifecycle ------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._inputs.clear()
            self._ops.clear()
            self._sites.clear()
            self.updates = 0

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "schema": SCHEMA,
                "updates": self.updates,
                "inputs": json.loads(json.dumps(self._inputs)),
                "ops": json.loads(json.dumps(self._ops)),
                "sites": json.loads(json.dumps(self._sites)),
            }

    # -- persistence ----------------------------------------------------
    def save(self, path: str | os.PathLike | None = None) -> str:
        """Atomically persist the store (tempfile + ``os.replace``)."""
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise FeedbackError("no path given and store has no default path")
        snapshot = self.as_dict()
        payload = json.dumps(
            {k: snapshot[k] for k in ("updates", "inputs", "ops", "sites")},
            sort_keys=True,
        ).encode("utf-8")
        write_atomic(
            target,
            payload,
            SCHEMA,
            error_cls=FeedbackError,
            what="feedback store",
            tmp_prefix=".feedback-",
        )
        get_registry().inc("feedback.saves")
        return target

    @classmethod
    def load(cls, path: str | os.PathLike) -> "FeedbackStore":
        """Load and verify a persisted store; raises on any corruption."""
        target = os.fspath(path)
        _, payload = read_verified(
            target, SCHEMA, error_cls=FeedbackError, what="feedback store"
        )
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FeedbackError(
                f"feedback store {target} payload unreadable"
            ) from exc
        store = cls(path=target)
        store.updates = int(body.get("updates", 0))
        store._inputs = dict(body.get("inputs", {}))
        store._ops = dict(body.get("ops", {}))
        store._sites = dict(body.get("sites", {}))
        get_registry().inc("feedback.loads")
        return store

    @classmethod
    def load_or_cold(cls, path: str | os.PathLike) -> "FeedbackStore":
        """Load if valid, else an empty store — cold estimates, not a crash."""
        try:
            return cls.load(path)
        except FeedbackError:
            get_registry().inc("feedback.load_failures")
            return cls(path=path)


def input_key(name: str, shape) -> str:
    """The store key for one bound input: ``name@RxC``."""
    return f"{name}@{shape[0]}x{shape[1]}"


def _array_density(value) -> float | None:
    """Strided-sample density of a dense ndarray (None if not array-like)."""
    import numpy as np

    arr = np.asarray(value)
    if arr.ndim != 2 or arr.size == 0:
        return None
    from .reprplan import _estimate_density

    return _estimate_density(np.asarray(arr, dtype=np.float64))


# ----------------------------------------------------------------------
# Process-global enablement
# ----------------------------------------------------------------------
_global_lock = threading.Lock()
_active_store: FeedbackStore | None = None
_override: bool | None = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_FEEDBACK", "").strip().lower() in _TRUTHY


def feedback_enabled() -> bool:
    """Whether consumers should read (and observers write) the store."""
    return _env_enabled() if _override is None else _override


def set_feedback(enabled: bool | None) -> None:
    """Force feedback on/off; ``None`` restores the env-var default."""
    global _override
    _override = enabled


def get_feedback_store() -> FeedbackStore:
    """The process-global store, created (or loaded) on first use.

    ``REPRO_FEEDBACK_PATH`` names a persistence file: it is loaded if
    present (corruption falls back to cold) and becomes the default
    :meth:`FeedbackStore.save` target.
    """
    global _active_store
    with _global_lock:
        if _active_store is None:
            path = os.environ.get("REPRO_FEEDBACK_PATH", "").strip() or None
            if path and os.path.exists(path):
                _active_store = FeedbackStore.load_or_cold(path)
            else:
                _active_store = FeedbackStore(path=path)
        return _active_store


def set_feedback_store(store: FeedbackStore | None) -> None:
    """Install (or clear) the process-global store.

    Installing a store makes it active regardless of ``REPRO_FEEDBACK``
    — an explicit install is the opt-in.
    """
    global _active_store
    with _global_lock:
        _active_store = store


def active_store() -> FeedbackStore | None:
    """The store consumers/observers should use, or ``None`` if disabled.

    This is the hot-path gate: when feedback is off it is one function
    call, two attribute reads, and (at most) one env lookup.
    """
    if _override is False:
        return None
    store = _active_store
    if store is not None:
        return store
    if _override or _env_enabled():
        return get_feedback_store()
    return None


def reset_feedback() -> None:
    """Drop the global store and any override (test/benchmark hygiene)."""
    global _active_store, _override
    with _global_lock:
        _active_store = None
    _override = None


@contextmanager
def feedback_scope(store: FeedbackStore | None):
    """Temporarily install ``store`` as the active global store.

    Drivers use this so an explicitly passed store also receives the
    executor's and parallel engine's observations for the duration of
    their loop. ``None`` is a no-op scope.
    """
    if store is None:
        yield None
        return
    global _active_store
    with _global_lock:
        previous = _active_store
        _active_store = store
    try:
        yield store
    finally:
        with _global_lock:
            _active_store = previous


def resolve_store(adaptive) -> FeedbackStore | None:
    """Normalize a driver's ``adaptive=`` argument.

    ``None`` -> the active global store (or ``None`` when feedback is
    disabled); ``False`` -> never adapt; ``True`` -> the global store,
    created if needed; a :class:`FeedbackStore` -> itself.
    """
    if adaptive is None:
        return active_store()
    if adaptive is False:
        return None
    if adaptive is True:
        return get_feedback_store()
    if isinstance(adaptive, FeedbackStore):
        return adaptive
    raise FeedbackError(
        f"adaptive must be None, a bool, or a FeedbackStore, "
        f"got {type(adaptive).__name__}"
    )

"""Optimizing compiler for the linear-algebra DSL.

Passes (each independently toggleable for ablation):

* algebraic rewrites and constant folding (:mod:`.rewrites`)
* matrix-multiplication-chain re-parenthesization (:mod:`.mmchain`)
* operator fusion into single-pass kernels (:mod:`.fusion`)
* common-subexpression elimination (:mod:`.cse`)

with an analytical FLOP/memory cost model (:mod:`.cost`).
"""

from .cache import (
    CacheStats,
    PlanCache,
    compile_expr_cached,
    default_plan_cache,
)
from .cost import CostEstimate, estimate, node_flops, node_output_bytes
from .feedback import (
    BlendedEstimate,
    FeedbackStore,
    SitePolicy,
    active_store,
    feedback_scope,
    get_feedback_store,
    reset_feedback,
    set_feedback,
    set_feedback_store,
)
from .cse import (
    count_tree_ops,
    count_unique_ops,
    eliminate_common_subexpressions,
)
from .fusion import apply_fusion, fused_kinds
from .mmchain import chain_cost, optimize_mmchains
from .planner import CompiledPlan, compile_expr
from .program import ProgramPlan, compile_program, execute_program
from .reprplan import (
    ReprChoice,
    RepresentationPlan,
    plan_representations,
)
from .rewrites import apply_rewrites
from .sparsity import propagate_sparsity, sparse_aware_flops

__all__ = [
    "BlendedEstimate",
    "CacheStats",
    "CompiledPlan",
    "FeedbackStore",
    "SitePolicy",
    "active_store",
    "feedback_scope",
    "get_feedback_store",
    "reset_feedback",
    "set_feedback",
    "set_feedback_store",
    "PlanCache",
    "ProgramPlan",
    "compile_expr_cached",
    "default_plan_cache",
    "CostEstimate",
    "ReprChoice",
    "RepresentationPlan",
    "plan_representations",
    "apply_fusion",
    "apply_rewrites",
    "chain_cost",
    "compile_expr",
    "compile_program",
    "execute_program",
    "count_tree_ops",
    "count_unique_ops",
    "eliminate_common_subexpressions",
    "estimate",
    "fused_kinds",
    "node_flops",
    "node_output_bytes",
    "optimize_mmchains",
    "propagate_sparsity",
    "sparse_aware_flops",
]

"""Compilation pipeline: rewrites -> mmchain -> fusion -> CSE.

:func:`compile_expr` takes a DSL expression and produces a
:class:`CompiledPlan` whose root DAG the runtime interprets. Each pass can
be toggled off, which is how the benchmark suite ablates the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import Node, collect_inputs, pretty
from ..lang.dsl import MExpr
from .cost import CostEstimate, estimate
from .cse import count_unique_ops, eliminate_common_subexpressions
from .fusion import apply_fusion
from .mmchain import optimize_mmchains
from .rewrites import apply_rewrites


@dataclass
class CompiledPlan:
    """An executable DAG plus compilation metadata."""

    root: Node
    source: Node
    inputs: dict[str, tuple[int, int]]
    passes: list[str] = field(default_factory=list)
    cost_before: CostEstimate | None = None
    cost_after: CostEstimate | None = None
    #: set by repro.compiler.reprplan.plan_representations
    repr_plan: object | None = None

    @property
    def output_shape(self) -> tuple[int, int]:
        return self.root.shape

    @property
    def num_ops(self) -> int:
        return count_unique_ops(self.root)

    def explain(self) -> str:
        """Human-readable plan summary (source, passes, costs, plan)."""
        lines = [
            f"source : {pretty(self.source)}",
            f"passes : {', '.join(self.passes) if self.passes else '(none)'}",
        ]
        if self.cost_before is not None:
            lines.append(f"before : {self.cost_before}")
        if self.cost_after is not None:
            lines.append(f"after  : {self.cost_after}")
        if self.repr_plan is not None:
            lines.extend(self.repr_plan.describe().splitlines())
        lines.append(f"plan   : {pretty(self.root)}")
        return "\n".join(lines)


def compile_expr(
    expr: MExpr | Node,
    rewrites: bool = True,
    mmchain: bool = True,
    fusion: bool = True,
    cse: bool = True,
) -> CompiledPlan:
    """Compile a DSL expression into an optimized plan.

    Pass order matters: algebraic rewrites expose chains, chain
    optimization fixes association before fusion pattern-matches shapes,
    and CSE runs last so every pass's output is deduplicated.
    """
    source = expr.node if isinstance(expr, MExpr) else expr
    inputs = collect_inputs(source)
    before = estimate(eliminate_common_subexpressions(source))

    root = source
    passes = []
    if rewrites:
        root = apply_rewrites(root)
        passes.append("rewrites")
    if mmchain:
        root = optimize_mmchains(root)
        passes.append("mmchain")
    if fusion:
        root = apply_fusion(root)
        passes.append("fusion")
    if cse:
        root = eliminate_common_subexpressions(root)
        passes.append("cse")

    after = estimate(eliminate_common_subexpressions(root))
    return CompiledPlan(
        root=root,
        source=source,
        inputs=inputs,
        passes=passes,
        cost_before=before,
        cost_after=after,
    )

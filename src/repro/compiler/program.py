"""Multi-output programs: several expressions, one shared DAG.

An iterative algorithm usually needs multiple values per step — the loss
*and* its gradient, the distance matrix *and* its row minima. Compiling
them as one program lets CSE share work *across* outputs: ``X %*% w``
inside the loss and inside the gradient becomes a single node evaluated
once per execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CompilerError
from ..lang.ast import Node, collect_inputs
from ..lang.dsl import MExpr
from .cost import CostEstimate
from .fusion import apply_fusion
from .mmchain import optimize_mmchains
from .rewrites import apply_rewrites


@dataclass
class ProgramPlan:
    """Named output roots over one shared, deduplicated DAG."""

    outputs: dict[str, Node]
    inputs: dict[str, tuple[int, int]]
    passes: list[str] = field(default_factory=list)
    cost: CostEstimate | None = None

    @property
    def num_ops(self) -> int:
        """Distinct operators across all outputs (shared counted once)."""
        seen: set[int] = set()
        count = 0
        from ..lang.ast import Constant, Data

        stack = list(self.outputs.values())
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if not isinstance(node, (Data, Constant)):
                count += 1
            stack.extend(node.children)
        return count


def compile_program(
    expressions: dict[str, MExpr | Node],
    rewrites: bool = True,
    mmchain: bool = True,
    fusion: bool = True,
    cse: bool = True,
) -> ProgramPlan:
    """Compile named expressions into one shared-DAG program.

    Per-expression passes run first; the final hash-consing pass interns
    all outputs into one node universe so identical subexpressions are
    shared across outputs.
    """
    if not expressions:
        raise CompilerError("program needs at least one output expression")
    roots: dict[str, Node] = {}
    for name, expr in expressions.items():
        node = expr.node if isinstance(expr, MExpr) else expr
        if rewrites:
            node = apply_rewrites(node)
        if mmchain:
            node = optimize_mmchains(node)
        if fusion:
            node = apply_fusion(node)
        roots[name] = node

    passes = [
        p
        for p, on in (
            ("rewrites", rewrites),
            ("mmchain", mmchain),
            ("fusion", fusion),
            ("cse", cse),
        )
        if on
    ]

    if cse:
        # One interning table across every output.
        interned: dict[tuple, Node] = {}

        def intern(node: Node) -> Node:
            new_children = [intern(c) for c in node.children]
            if any(nc is not oc for nc, oc in zip(new_children, node.children)):
                node = node.with_children(new_children)
            key = node.key()
            existing = interned.get(key)
            if existing is not None:
                return existing
            interned[key] = node
            return node

        roots = {name: intern(node) for name, node in roots.items()}

    # Combined input map (validated for shape conflicts across outputs).
    inputs: dict[str, tuple[int, int]] = {}
    for node in roots.values():
        for name, shape in collect_inputs(node).items():
            existing = inputs.get(name)
            if existing is not None and existing != shape:
                raise CompilerError(
                    f"input {name!r} used with conflicting shapes "
                    f"{existing} and {shape} across outputs"
                )
            inputs[name] = shape

    # Cost over the union DAG (shared nodes once).
    cost = _union_cost(list(roots.values()))
    return ProgramPlan(outputs=roots, inputs=inputs, passes=passes, cost=cost)


def _union_cost(roots: list[Node]) -> CostEstimate:
    from .cost import node_flops, node_output_bytes
    from ..lang.ast import Constant, Data

    seen: set[int] = set()
    flops = mem = ops = 0
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        flops += node_flops(node)
        mem += node_output_bytes(node)
        if not isinstance(node, (Data, Constant)):
            ops += 1
        stack.extend(node.children)
    return CostEstimate(flops=flops, intermediate_bytes=mem, num_ops=ops)


def execute_program(
    plan: ProgramPlan,
    bindings: dict[str, np.ndarray],
    collect_stats: bool = False,
):
    """Evaluate every output over one shared memo table.

    Returns a dict of results (scalars as floats); with
    ``collect_stats``, also the combined :class:`ExecutionStats`.
    """
    from ..runtime import repops
    from ..runtime.executor import ExecutionStats, _eval, _prepare_bindings

    # Reuse the single-output binding validation via a shim plan.
    shim = _BindingShim(plan.inputs)
    prepared = _prepare_bindings(shim, bindings, force_dense=False)

    stats = ExecutionStats()
    memo: dict[int, np.ndarray] = {}
    dense_cache: dict[int, np.ndarray] = {}
    results = {}
    for name, root in plan.outputs.items():
        value = _eval(root, prepared, memo, stats, dense_cache, False)
        if repops.is_representation(value):
            value = repops.densify(value)
        results[name] = float(value[0, 0]) if root.is_scalar else value
    if collect_stats:
        return results, stats
    return results


class _BindingShim:
    """Minimal object exposing .inputs for _prepare_bindings."""

    def __init__(self, inputs: dict[str, tuple[int, int]]):
        self.inputs = inputs

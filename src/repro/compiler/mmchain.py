"""Matrix-multiplication chain optimization.

Flattens maximal ``A %*% B %*% C %*% ...`` chains and re-parenthesizes
them with the classic O(k^3) dynamic program over operand dimensions.
This is the single most valuable rewrite for GLM-style programs: the
gradient ``t(X) %*% (X %*% w)`` is quadratic in the feature count if
evaluated left-to-right as ``(t(X) %*% X) %*% w`` but linear when the
chain order is optimized.
"""

from __future__ import annotations

from ..lang.ast import MatMul, Node


def optimize_mmchains(root: Node) -> Node:
    """Re-parenthesize every maximal matmul chain optimally."""
    return _visit(root)


def _visit(node: Node) -> Node:
    if isinstance(node, MatMul):
        operands = _flatten_chain(node)
        # Optimize each operand's own subtree first.
        operands = [_visit(op) for op in operands]
        if len(operands) <= 2:
            return node.with_children(operands)
        return _rebuild_optimal(operands)
    if not node.children:
        return node
    return node.with_children([_visit(c) for c in node.children])


def _flatten_chain(node: Node) -> list[Node]:
    """The maximal multiplication chain rooted at this node, in order."""
    if isinstance(node, MatMul):
        return _flatten_chain(node.left) + _flatten_chain(node.right)
    return [node]


def _rebuild_optimal(operands: list[Node]) -> Node:
    """Optimal parenthesization via the standard interval DP."""
    k = len(operands)
    # dims[i] = rows of operand i; dims[k] = cols of the last operand.
    dims = [op.shape[0] for op in operands] + [operands[-1].shape[1]]

    cost = [[0.0] * k for _ in range(k)]
    split = [[0] * k for _ in range(k)]
    for length in range(2, k + 1):
        for i in range(k - length + 1):
            j = i + length - 1
            best = float("inf")
            best_s = i
            for s in range(i, j):
                c = (
                    cost[i][s]
                    + cost[s + 1][j]
                    + dims[i] * dims[s + 1] * dims[j + 1]
                )
                if c < best:
                    best = c
                    best_s = s
            cost[i][j] = best
            split[i][j] = best_s

    def build(i: int, j: int) -> Node:
        if i == j:
            return operands[i]
        s = split[i][j]
        return MatMul(build(i, s), build(s + 1, j))

    return build(0, k - 1)


def chain_cost(shapes: list[tuple[int, int]], order: str = "left") -> int:
    """Multiplication cost (scalar multiply count) of a chain evaluated
    left-to-right or right-to-left — used by tests and the explain output
    to quantify the DP's win."""
    if order not in ("left", "right"):
        raise ValueError(f"order must be 'left' or 'right', got {order!r}")
    total = 0
    if order == "left":
        rows, cols = shapes[0]
        for r, c in shapes[1:]:
            total += rows * cols * c
            cols = c
    else:
        rows, cols = shapes[-1]
        for r, c in reversed(shapes[:-1]):
            total += r * c * cols
            rows = r
    return total

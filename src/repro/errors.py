"""Exception hierarchy shared across all repro subsystems.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch the whole family with one handler while still being able
to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is malformed or an operation violates the schema."""


class StorageError(ReproError):
    """A storage-level operation (scan, join, group-by, I/O) failed."""


class CompilerError(ReproError):
    """A linear-algebra program could not be compiled."""


class ShapeError(CompilerError):
    """Operand shapes are incompatible for the requested operation."""


class ExecutionError(ReproError):
    """Plan execution failed at runtime."""


class CompressionError(ReproError):
    """Compressed-matrix construction or a compressed kernel failed."""


class FactorizationError(ReproError):
    """Normalized-matrix construction or a factorized rewrite failed."""


class ConvergenceWarning(UserWarning):
    """An iterative solver hit its iteration cap before converging."""


class ModelError(ReproError):
    """An ML estimator was misused (e.g. predict before fit)."""


class NotFittedError(ModelError):
    """Estimator method requiring a fitted model was called before fit."""


class SelectionError(ReproError):
    """Model-selection search was configured inconsistently."""


class LifecycleError(ReproError):
    """Model-registry or experiment-tracking operation failed."""


class ResilienceError(ReproError):
    """A fault-tolerance mechanism (retry, checkpoint, chaos) failed."""


class InjectedFault(ResilienceError):
    """A fault deliberately raised by an active :class:`ChaosContext`.

    Carries the registered site name, the caller-supplied key (task
    index, worker id, block id, ...) and the site's invocation count at
    injection time, so chaos tests can assert exactly which invocation
    failed.
    """

    def __init__(self, site: str, key: object = None, invocation: int = 0):
        self.site = site
        self.key = key
        self.invocation = invocation
        super().__init__(
            f"injected fault at {site!r} (key={key!r}, "
            f"invocation {invocation})"
        )


class WorkerFailure(ResilienceError):
    """A simulated cluster worker died (or its RPC was lost)."""


class RetryExhaustedError(ResilienceError):
    """Every retry attempt failed; the last cause is ``__cause__``.

    Attributes mirror :class:`ParallelTaskError` so callers can treat
    both recovery-failure shapes uniformly.
    """

    def __init__(self, site: str, key: object, attempts: int):
        self.site = site
        self.key = key
        self.attempts = attempts
        super().__init__(
            f"retry exhausted at {site!r} (key={key!r}) "
            f"after {attempts} attempt(s)"
        )


class ServingError(ReproError):
    """An online-serving operation (endpoint, batcher, cache) failed."""


def _request_context(
    endpoint: str | None, tenant: object, shard: str | None
) -> dict:
    """Structured attribution carried by admission/deadline failures."""
    context: dict = {"endpoint": endpoint}
    if tenant is not None:
        context["tenant"] = tenant
    if shard is not None:
        context["shard"] = shard
    return context


def _context_suffix(context: dict) -> str:
    extras = {k: v for k, v in context.items() if k != "endpoint"}
    if not extras:
        return ""
    rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(extras.items()))
    return f" [{rendered}]"


class LoadShedError(ServingError):
    """A request was rejected by admission control (queue or quota).

    Carries the endpoint name and the queue depth at rejection time so
    load tests can assert exactly how many requests were shed and why,
    plus a structured ``context`` (endpoint/tenant/shard) so sheds are
    attributable in logs and fleet ledgers. ``reason`` distinguishes a
    full queue (``"queue"``) from a per-tenant quota (``"quota"``) and
    injected admission chaos (``"chaos"``).
    """

    def __init__(
        self,
        endpoint: str,
        queue_depth: int,
        capacity: int,
        *,
        tenant: object = None,
        shard: str | None = None,
        reason: str = "queue",
    ):
        self.endpoint = endpoint
        self.queue_depth = queue_depth
        self.capacity = capacity
        self.tenant = tenant
        self.shard = shard
        self.reason = reason
        self.context = _request_context(endpoint, tenant, shard)
        super().__init__(
            f"endpoint {endpoint!r} shed a request ({reason}): depth "
            f"{queue_depth} at capacity {capacity}"
            + _context_suffix(self.context)
        )


class DeadlineExceededError(ServingError):
    """A request's deadline elapsed before its prediction was ready.

    Like :class:`LoadShedError`, carries a structured ``context``
    (endpoint/tenant/shard) so deadline misses are attributable.
    """

    def __init__(
        self,
        endpoint: str,
        deadline_ms: float,
        *,
        tenant: object = None,
        shard: str | None = None,
    ):
        self.endpoint = endpoint
        self.deadline_ms = deadline_ms
        self.tenant = tenant
        self.shard = shard
        self.context = _request_context(endpoint, tenant, shard)
        super().__init__(
            f"endpoint {endpoint!r} missed a {deadline_ms:g} ms deadline"
            + _context_suffix(self.context)
        )


class PromotionHeldError(ServingError):
    """A promotion gate refused a rollout (held, or rolled back).

    Carries the endpoint, the gate's reasons (a feature-fingerprint
    mismatch, drifted features, ...), the per-feature drift scores at
    decision time, and whether the gate auto-rolled the canary back —
    so a blocked rollout is fully attributable from the exception alone.
    """

    def __init__(
        self,
        endpoint: str,
        reasons: list[str],
        scores: dict | None = None,
        rolled_back: bool = False,
    ):
        self.endpoint = endpoint
        self.reasons = list(reasons)
        self.scores = dict(scores or {})
        self.rolled_back = rolled_back
        action = "rolled back" if rolled_back else "held"
        super().__init__(
            f"promotion of {endpoint!r} {action} by gate: "
            + "; ".join(self.reasons)
        )


class NoLiveReplicaError(ServingError):
    """Every replica of an endpoint was dead or failed its attempt."""

    def __init__(self, endpoint: str, attempted: tuple[str, ...]):
        self.endpoint = endpoint
        self.attempted = attempted
        super().__init__(
            f"endpoint {endpoint!r} has no live replica "
            f"(attempted {list(attempted)})"
        )


class ParallelTaskError(ExecutionError):
    """A ``pmap`` task failed after all recovery attempts.

    Preserves the failing site, the task index within the call, and how
    many attempts were made; the original exception is ``__cause__``.
    """

    def __init__(self, site: str, index: int, attempts: int):
        self.site = site
        self.index = index
        self.attempts = attempts
        super().__init__(
            f"task {index} at site {site!r} failed after "
            f"{attempts} attempt(s)"
        )


class MaterializationError(ReproError):
    """Materialization-store persistence, admission, or lookup failed."""


class IncrementalError(ReproError):
    """A change-stream delta or maintained aggregate is inconsistent."""


class FeatureStoreError(ReproError):
    """A feature view, its materialization, or an online serve failed."""


class CheckpointError(ResilienceError):
    """A checkpoint could not be written, read, or verified."""


class CorruptedBlockError(ExecutionError):
    """A block's stored bytes no longer match their CRC32 checksum."""

    def __init__(self, block_id: str):
        self.block_id = block_id
        super().__init__(
            f"block {block_id!r} failed its checksum and has no "
            f"registered lineage to recompute from"
        )

"""Exception hierarchy shared across all repro subsystems.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch the whole family with one handler while still being able
to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is malformed or an operation violates the schema."""


class StorageError(ReproError):
    """A storage-level operation (scan, join, group-by, I/O) failed."""


class CompilerError(ReproError):
    """A linear-algebra program could not be compiled."""


class ShapeError(CompilerError):
    """Operand shapes are incompatible for the requested operation."""


class ExecutionError(ReproError):
    """Plan execution failed at runtime."""


class CompressionError(ReproError):
    """Compressed-matrix construction or a compressed kernel failed."""


class FactorizationError(ReproError):
    """Normalized-matrix construction or a factorized rewrite failed."""


class ConvergenceWarning(UserWarning):
    """An iterative solver hit its iteration cap before converging."""


class ModelError(ReproError):
    """An ML estimator was misused (e.g. predict before fit)."""


class NotFittedError(ModelError):
    """Estimator method requiring a fitted model was called before fit."""


class SelectionError(ReproError):
    """Model-selection search was configured inconsistently."""


class LifecycleError(ReproError):
    """Model-registry or experiment-tracking operation failed."""

"""repro: data management in machine learning.

Reproduction of the techniques surveyed by the SIGMOD 2017 tutorial
"Data Management in Machine Learning: Challenges, Techniques, and
Systems" (Kumar, Boehm, Yang). See DESIGN.md for the system inventory
and EXPERIMENTS.md for the experiment index.

Subpackages:

* ``repro.storage``      — column-store relational engine substrate
* ``repro.indb``         — in-RDBMS ML (MADlib / Bismarck UDA architecture)
* ``repro.lang``         — declarative linear-algebra DSL
* ``repro.compiler``     — rewrites, CSE, mmchain, fusion, cost model
* ``repro.runtime``      — plan executor, blocked matrices, buffer pool
* ``repro.compression``  — compressed linear algebra (OLE/RLE/DDC)
* ``repro.factorized``   — learning over normalized data (Orion/Morpheus/Hamlet)
* ``repro.ml``           — ML algorithm library (GLMs, k-means, NB, PCA, SVM)
* ``repro.selection``    — model-selection management (grid, halving, warm start)
* ``repro.feateng``      — feature-engineering management (Columbus)
* ``repro.lifecycle``    — model registry and experiment tracking
* ``repro.data``         — synthetic workload generators
* ``repro.sparse``       — CSR sparse linear-algebra substrate
* ``repro.algorithms``   — algorithm scripts authored in the DSL
* ``repro.distributed``  — simulated data-parallel / parameter-server training
* ``repro.materialize``  — lineage-aware materialization store, sub-plan reuse
* ``repro.incremental``  — change streams + F-IVM aggregate maintenance
* ``repro.obs``          — unified tracing + metrics (spans, registry, reports)
* ``repro.resilience``   — fault injection, retry/recovery, checkpoint/restore
* ``repro.serving``      — online inference (micro-batching, cache, canary)
"""

__version__ = "1.0.0"

from . import (
    algorithms,
    compiler,
    compression,
    data,
    distributed,
    errors,
    factorized,
    feateng,
    incremental,
    indb,
    lang,
    lifecycle,
    materialize,
    ml,
    obs,
    resilience,
    runtime,
    selection,
    serving,
    sparse,
    storage,
)

__all__ = [
    "__version__",
    "algorithms",
    "compiler",
    "compression",
    "data",
    "distributed",
    "errors",
    "factorized",
    "feateng",
    "incremental",
    "indb",
    "lang",
    "lifecycle",
    "materialize",
    "ml",
    "obs",
    "resilience",
    "runtime",
    "selection",
    "serving",
    "sparse",
    "storage",
]

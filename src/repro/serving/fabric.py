"""Sharded, replicated serving fabric with deterministic failover.

One :class:`~repro.serving.server.ModelServer` process is a single
point of failure and a single GIL: the roadmap's scale-out item calls
for partitioning endpoints *and* the prediction cache across N server
shards. :class:`ShardedServer` is that fabric:

* **Placement** — endpoints land on shards via a CRC32 consistent-hash
  :class:`~repro.serving.ring.HashRing` (bit-reproducible like
  :class:`~repro.serving.router.CanaryRouter`; resizing the fleet
  remaps only ~1/N of the key space). Hot endpoints replicate onto the
  next R distinct ring successors.
* **Routing** — a request key deterministically picks one of the
  endpoint's R replicas (a CRC32 rotation of the replica list), so each
  replica serves — and caches — a stable slice of the key space.
* **Failover** — shards are health-tracked (`kill_shard` /
  `revive_shard`, the `SimulatedCluster` idiom). A request whose
  replica is dead walks its preference list to the next live replica;
  because every replica scores through the same compiled scorer, a
  failover can never change an answer. The fleet keeps an exact
  ``failovers`` / ``rerouted`` / ``replica_hits`` ledger.
* **Epoch rejoin** — a revived shard re-enters with its epoch bumped
  and its prediction caches invalidated, so it cannot serve answers
  cached before it died (it may have missed promotes).
* **Tenant isolation** — per-tenant token-bucket quotas
  (:class:`~repro.serving.quota.AdmissionQuotas`) meter admission
  *before* any shard queue: a hot tenant sheds its own overflow
  (``LoadShedError`` with ``reason="quota"`` and the tenant in its
  structured context) instead of starving the fleet.
* **Fleet rollout** — promote/rollback/canary fan out to every hosting
  shard; the canary hash split stays exact across the whole fleet
  because every replica routes with the same seeded router.
* **Chaos** — ``fabric.route`` guards routing, ``fabric.score`` guards
  the dispatch to a shard (an injected fault there fails over to the
  next replica); both compose with
  :class:`~repro.resilience.RetryPolicy`, whose total budget is capped
  by the request's admission deadline.

E26 (``benchmarks/bench_sharding.py``) is the closed-loop gate: >= 1M
skewed multi-tenant requests, bit-identical to a single-server oracle,
with a mid-stream kill recovered exactly.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import (
    DeadlineExceededError,
    InjectedFault,
    LoadShedError,
    NoLiveReplicaError,
    RetryExhaustedError,
    ServingError,
    WorkerFailure,
)
from ..lifecycle.registry import ModelRegistry, ModelVersion
from ..obs import get_registry
from ..resilience import RetryPolicy, active_chaos, resilient_call
from .ring import HashRing
from .quota import AdmissionQuotas
from .server import ModelServer

#: a shard dispatch failing with one of these fails over to the next
#: live replica instead of failing the request.
_FAILOVER_ERRORS = (InjectedFault, RetryExhaustedError, WorkerFailure)


@dataclass
class FabricLedger:
    """Exact fleet-wide routing/admission ledger (E26 gates on it)."""

    requests: int = 0
    quota_shed: int = 0
    failovers: int = 0  # requests that skipped >= 1 dead/failed replica
    rerouted: int = 0  # total replica skips summed over requests
    replica_hits: int = 0  # requests served by a non-home replica
    epoch_invalidations: int = 0  # cache entries dropped on revive

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "quota_shed": self.quota_shed,
            "failovers": self.failovers,
            "rerouted": self.rerouted,
            "replica_hits": self.replica_hits,
            "epoch_invalidations": self.epoch_invalidations,
        }


@dataclass
class _Shard:
    """One shard's server plus its health state."""

    shard_id: str
    server: ModelServer
    live: bool = True
    epoch: int = 0
    served: int = 0


@dataclass(frozen=True)
class _FabricEndpoint:
    """Fleet-level endpoint record: placement and shared config."""

    name: str
    model_name: str
    replicas: tuple[str, ...]  # rank 0 is the home shard
    config: dict = field(default_factory=dict)


class ShardedServer:
    """N consistent-hash sharded :class:`ModelServer` instances.

    Args:
        registry: shared model registry all shards resolve through.
        num_shards: fleet size (shard ids ``shard-0 .. shard-N-1``).
        replication: default replica count per endpoint (clamped to the
            fleet size; hot endpoints can override per endpoint).
        seed: placement/routing salt (ring points and key spreading).
        retry: policy for the ``fabric.route`` / ``fabric.score`` sites
            and each shard's ``serving.score`` site.
        vnodes: virtual ring points per shard.
        clock: injectable monotonic clock shared by shards and quotas.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        num_shards: int = 2,
        replication: int = 2,
        *,
        seed: int = 0,
        retry: RetryPolicy | None = None,
        vnodes: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if num_shards < 1:
            raise ServingError(f"num_shards must be >= 1, got {num_shards}")
        if replication < 1:
            raise ServingError(
                f"replication must be >= 1, got {replication}"
            )
        self.registry = registry
        self.replication = min(replication, num_shards)
        self.seed = seed
        self.retry = retry
        self._clock = clock
        shard_ids = [f"shard-{i}" for i in range(num_shards)]
        self.ring = HashRing(shard_ids, vnodes=vnodes, seed=seed)
        self._shards: dict[str, _Shard] = {
            sid: _Shard(sid, ModelServer(registry, retry=retry, clock=clock))
            for sid in shard_ids
        }
        self._endpoints: dict[str, _FabricEndpoint] = {}
        self.quotas = AdmissionQuotas(clock=clock)
        self.ledger = FabricLedger()
        self._gates: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Fleet topology
    # ------------------------------------------------------------------
    def shard_ids(self) -> list[str]:
        return sorted(self._shards)

    def live_shards(self) -> list[str]:
        return sorted(s.shard_id for s in self._shards.values() if s.live)

    def shard(self, shard_id: str) -> _Shard:
        shard = self._shards.get(shard_id)
        if shard is None:
            raise ServingError(f"no shard named {shard_id!r}")
        return shard

    def kill_shard(self, shard_id: str) -> None:
        """Mark a shard dead; its traffic fails over deterministically."""
        shard = self.shard(shard_id)
        if not shard.live:
            raise ServingError(f"shard {shard_id!r} is already dead")
        shard.live = False
        get_registry().inc("fabric.shard_kills")

    def revive_shard(self, shard_id: str) -> int:
        """Rejoin a dead shard at a new epoch.

        Its prediction caches are invalidated (it may have missed
        promotes while dead), so a revived shard can never serve an
        answer cached before it died. Returns the entries dropped.
        """
        shard = self.shard(shard_id)
        if shard.live:
            raise ServingError(f"shard {shard_id!r} is already live")
        shard.live = True
        shard.epoch += 1
        dropped = 0
        for endpoint in self._endpoints.values():
            if shard_id in endpoint.replicas:
                dropped += shard.server.invalidate(endpoint.name)
        self.ledger.epoch_invalidations += dropped
        registry = get_registry()
        registry.inc("fabric.shard_revives")
        registry.inc("fabric.epoch_invalidations", dropped)
        return dropped

    # ------------------------------------------------------------------
    # Endpoint management and fleet-wide rollout
    # ------------------------------------------------------------------
    def create_endpoint(
        self,
        name: str,
        model_name: str,
        replication: int | None = None,
        **config,
    ) -> _FabricEndpoint:
        """Place an endpoint on its ring successors and create it on
        each hosting shard (identical config, so routing and canary
        splits agree on every replica)."""
        if name in self._endpoints:
            raise ServingError(f"endpoint {name!r} already exists")
        r = self.replication if replication is None else replication
        if r < 1:
            raise ServingError(f"replication must be >= 1, got {r}")
        replicas = tuple(self.ring.successors(name, min(r, len(self.ring))))
        endpoint = _FabricEndpoint(name, model_name, replicas, dict(config))
        for sid in replicas:
            self._shards[sid].server.create_endpoint(
                name, model_name, **config
            )
        self._endpoints[name] = endpoint
        return endpoint

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def replicas_of(self, name: str) -> tuple[str, ...]:
        return self._endpoint(name).replicas

    def _endpoint(self, name: str) -> _FabricEndpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise ServingError(f"no endpoint named {name!r}")
        return endpoint

    def _hosting(self, name: str):
        for sid in self._endpoint(name).replicas:
            yield self._shards[sid]

    def set_promotion_gate(self, name: str, gate) -> None:
        """Install a fleet-level promotion gate; a hold fires before any
        shard has deployed, so a refused promotion leaves the whole
        fleet on the old version (no torn rollout)."""
        self._endpoint(name)  # validates the endpoint exists
        self._gates[name] = gate

    def clear_promotion_gate(self, name: str) -> None:
        self._gates.pop(name, None)

    def promote(self, name: str, version: int | None = None) -> ModelVersion:
        """Fleet-wide promote: one registry deploy, every replica's
        cache invalidated. An installed gate authorizes first."""
        endpoint = self._endpoint(name)
        if version is None:
            version = self.registry.get(endpoint.model_name).version
        gate = self._gates.get(name)
        if gate is not None:
            gate.authorize(self, name, self.registry.get(
                endpoint.model_name, version
            ))
        entry = None
        for shard in self._hosting(name):
            entry = shard.server.promote(name, version)
        return entry

    def rollback(self, name: str) -> ModelVersion:
        """Fleet-wide rollback: history pops exactly once, every
        replica's cache invalidated."""
        endpoint = self._endpoint(name)
        entry = self.registry.rollback(endpoint.model_name)
        for shard in self._hosting(name):
            shard.server.invalidate(name)
        return entry

    def set_canary(
        self, name: str, version: int, fraction: float
    ) -> ModelVersion:
        """Point every replica's canary at ``version``; the hash split
        is exact across the fleet because all replicas share one seeded
        router."""
        entry = None
        for shard in self._hosting(name):
            entry = shard.server.set_canary(name, version, fraction)
        return entry

    def clear_canary(self, name: str) -> None:
        for shard in self._hosting(name):
            shard.server.clear_canary(name)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def preference(self, name: str, key: object | None) -> list[str]:
        """The request's deterministic replica preference order.

        ``None`` keys stay on the home replica; keyed requests rotate
        the replica list by a CRC32 of ``(seed, endpoint, key)`` so the
        key space — and therefore the prediction cache — partitions
        evenly across replicas, with each key owning a stable failover
        order.
        """
        replicas = self._endpoint(name).replicas
        if key is None or len(replicas) == 1:
            return list(replicas)
        start = zlib.crc32(
            f"{self.seed}|{name}|{key!r}".encode("utf-8")
        ) % len(replicas)
        return list(replicas[start:] + replicas[:start])

    def route(self, name: str, key: object | None) -> tuple[str, int]:
        """(live serving shard, dead replicas skipped) for one request.

        Pure given the current liveness map — benchmarks replay it as
        the oracle for the failover ledger.
        """
        preference = self.preference(name, key)
        skips = 0
        for sid in preference:
            if self._shards[sid].live:
                return sid, skips
            skips += 1
        raise NoLiveReplicaError(name, tuple(preference))

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def set_quota(
        self, tenant: object, capacity: float, refill_per_s: float
    ) -> None:
        """Give one tenant a token-bucket admission quota."""
        self.quotas.set_quota(tenant, capacity, refill_per_s)

    def set_default_quota(self, capacity: float, refill_per_s: float) -> None:
        self.quotas.set_default(capacity, refill_per_s)

    def _admit_tenant(self, name: str, tenant: object) -> bool:
        """Token-bucket admission ahead of every shard queue."""
        if self.quotas.admit(tenant):
            return True
        self.ledger.quota_shed += 1
        registry = get_registry()
        registry.inc("fabric.quota_shed")
        registry.inc(f"fabric.quota_shed.{tenant}")
        return False

    def _quota_error(self, name: str, tenant: object) -> LoadShedError:
        bucket = self.quotas.bucket(tenant)
        return LoadShedError(
            name,
            0,
            int(bucket.capacity) if bucket is not None else 0,
            tenant=tenant,
            reason="quota",
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        name: str,
        key: object | None,
        deadline_at: float | None,
    ) -> tuple[str, int]:
        """Pick the serving shard: walk the preference list skipping
        dead shards, firing ``fabric.score`` per attempted shard (an
        injected fault there is a failed dispatch — retried under the
        policy, then failed over to the next live replica)."""
        preference = self.preference(name, key)
        skips = 0
        last: BaseException | None = None
        for sid in preference:
            if not self._shards[sid].live:
                skips += 1
                continue
            try:
                resilient_call(
                    lambda: None,
                    site="fabric.score",
                    key=(name, sid),
                    retry=self.retry,
                    deadline_at=deadline_at,
                )
            except _FAILOVER_ERRORS as exc:
                last = exc
                skips += 1
                continue
            return sid, skips
        raise NoLiveReplicaError(name, tuple(preference)) from last

    def _account(self, name: str, sid: str, skips: int) -> None:
        home = self._endpoint(name).replicas[0]
        shard = self._shards[sid]
        shard.served += 1
        if skips:
            self.ledger.failovers += 1
            self.ledger.rerouted += skips
        if sid != home:
            self.ledger.replica_hits += 1

    def _route_checked(
        self, name: str, deadline_at: float | None
    ) -> None:
        """The ``fabric.route`` site: routing-table faults are
        transient and recovered under the retry policy."""
        resilient_call(
            lambda: None,
            site="fabric.route",
            key=name,
            retry=self.retry,
            deadline_at=deadline_at,
        )

    def predict(
        self,
        name: str,
        row: np.ndarray,
        key: object | None = None,
        tenant: object = None,
        deadline_ms: float | None = None,
    ) -> float:
        """Serve one prediction through the fleet: quota admission,
        ring routing, deterministic failover, then the owning shard's
        full single-server path."""
        self.ledger.requests += 1
        registry = get_registry()
        registry.inc("fabric.requests")
        if not self._admit_tenant(name, tenant):
            raise self._quota_error(name, tenant)
        deadline_at = (
            self._clock() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        self._route_checked(name, deadline_at)
        sid, skips = self._dispatch(name, key, deadline_at)
        shard = self._shards[sid]
        try:
            value = shard.server.predict(
                name, row, key=key, deadline_ms=deadline_ms
            )
        except LoadShedError as exc:
            raise LoadShedError(
                exc.endpoint,
                exc.queue_depth,
                exc.capacity,
                tenant=tenant,
                shard=sid,
                reason=exc.reason,
            ) from exc
        except DeadlineExceededError as exc:
            raise DeadlineExceededError(
                exc.endpoint, exc.deadline_ms, tenant=tenant, shard=sid
            ) from exc
        self._account(name, sid, skips)
        registry.inc(f"fabric.served.{sid}")
        return value

    def predict_many(
        self,
        name: str,
        rows: np.ndarray,
        keys: Sequence[object] | None = None,
        tenants: Sequence[object] | None = None,
        deadline_ms: float | None = None,
        on_shed: str = "raise",
    ) -> np.ndarray | tuple[np.ndarray, list[int]]:
        """Serve a stream: route each row, then drain each shard's
        slice through that shard's micro-batcher in one vectorized call.

        ``on_shed="raise"`` propagates the first quota shed;
        ``on_shed="null"`` records shed rows as NaN and returns
        ``(values, shed_indices)`` — what a closed-loop load generator
        wants, because one hot tenant's sheds must not abort the
        stream.
        """
        if on_shed not in ("raise", "null"):
            raise ServingError(
                f"on_shed must be 'raise' or 'null', got {on_shed!r}"
            )
        endpoint = self._endpoint(name)
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ServingError(
                f"predict_many expects a 2-D batch, got shape {rows.shape}"
            )
        n = rows.shape[0]
        if keys is not None and len(keys) != n:
            raise ServingError("one key per row required")
        if tenants is not None and len(tenants) != n:
            raise ServingError("one tenant per row required")
        registry = get_registry()

        # Fast path: a single-replica fleet with no quotas and no chaos
        # is a plain ModelServer with a ring lookup in front — delegate
        # wholesale so the fabric-disabled overhead stays < 3% (E26).
        if (
            len(endpoint.replicas) == 1
            and tenants is None
            and not self.quotas.configured
            and active_chaos() is None
        ):
            sid = endpoint.replicas[0]
            shard = self._shards[sid]
            if not shard.live:
                raise NoLiveReplicaError(name, endpoint.replicas)
            out = shard.server.predict_many(
                name, rows, keys=keys, deadline_ms=deadline_ms
            )
            self.ledger.requests += n
            shard.served += n
            registry.inc("fabric.requests", n)
            registry.inc(f"fabric.served.{sid}", n)
            return (out, []) if on_shed == "null" else out

        deadline_at = (
            self._clock() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        self.ledger.requests += n
        registry.inc("fabric.requests", n)
        out = np.empty(n, dtype=np.float64)
        shed_indices: list[int] = []
        groups: dict[str, list[int]] = {}
        for i in range(n):
            tenant = tenants[i] if tenants is not None else None
            if not self._admit_tenant(name, tenant):
                if on_shed == "raise":
                    raise self._quota_error(name, tenant)
                out[i] = np.nan
                shed_indices.append(i)
                continue
            key = keys[i] if keys is not None else None
            self._route_checked(name, deadline_at)
            sid, skips = self._dispatch(name, key, deadline_at)
            self._account(name, sid, skips)
            groups.setdefault(sid, []).append(i)
        for sid in sorted(groups):
            indices = groups[sid]
            shard = self._shards[sid]
            group_keys = (
                [keys[i] for i in indices] if keys is not None else None
            )
            out[indices] = shard.server.predict_many(
                name,
                rows[indices],
                keys=group_keys,
                deadline_ms=deadline_ms,
            )
            registry.inc(f"fabric.served.{sid}", len(indices))
        if on_shed == "null":
            return out, shed_indices
        return out

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Fleet ledger: routing/admission counters, per-shard health
        and load, per-tenant quota ledger, per-endpoint placement."""
        return {
            "ledger": self.ledger.as_dict(),
            "shards": {
                sid: {
                    "live": shard.live,
                    "epoch": shard.epoch,
                    "served": shard.served,
                    "endpoints": shard.server.stats(),
                }
                for sid, shard in sorted(self._shards.items())
            },
            "tenants": self.quotas.stats(),
            "endpoints": {
                name: {
                    "model": e.model_name,
                    "replicas": list(e.replicas),
                    "home": e.replicas[0],
                }
                for name, e in sorted(self._endpoints.items())
            },
        }

    def close(self) -> None:
        for shard in self._shards.values():
            shard.server.close()

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

"""Dynamic micro-batching: amortize per-request overhead into one matvec.

Single-row scoring pays the full Python toll per request — admission,
hashing, dispatch, a size-1 kernel. The batcher coalesces queued
requests into vectorized batches bounded by ``max_batch_size`` (latency
ceiling on throughput) and ``max_delay_ms`` (throughput ceiling on
latency), the same knobs every production inference server exposes.

Correctness contract (property-tested):

* **Own answer** — each response is computed from exactly its request's
  row by its request's scorer; grouping inside a batch cannot swap
  answers between requests.
* **FIFO per endpoint** — requests are drained and completed in arrival
  order; a batch never overtakes an earlier batch.
* **Batch-size invariance** — scorers built by the server accumulate
  column-by-column in a fixed order, so a row scored in a batch of 64 is
  bit-identical to the same row scored alone (E22 asserts this).

The queue is bounded: :meth:`MicroBatcher.submit` sheds load by raising
:class:`~repro.errors.LoadShedError` instead of growing without bound —
admission control happens at enqueue, not after work was invested.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

import numpy as np

from ..errors import DeadlineExceededError, LoadShedError, ServingError
from ..obs import get_registry


class PendingRequest:
    """One queued request and its completion handle."""

    __slots__ = (
        "row", "scorer", "version", "deadline_at", "enqueued_at",
        "_event", "result", "error",
    )

    def __init__(
        self,
        row: np.ndarray,
        scorer: Callable[[np.ndarray], np.ndarray],
        version: int,
        deadline_at: float | None,
        enqueued_at: float,
    ):
        self.row = row
        self.scorer = scorer
        self.version = version
        self.deadline_at = deadline_at
        self.enqueued_at = enqueued_at
        self._event = threading.Event()
        self.result: float | None = None
        self.error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def _complete(self, result: float | None, error: BaseException | None) -> None:
        self.result = result
        self.error = error
        self._event.set()

    def wait(self, timeout: float | None = None) -> float:
        """Block until scored; raises the request's failure if it has one.

        Returns the prediction. ``timeout`` elapsing raises ``TimeoutError``
        (the server maps it to a deadline error with endpoint context).
        """
        if not self._event.wait(timeout):
            raise TimeoutError("prediction not ready within timeout")
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class MicroBatcher:
    """Bounded FIFO request queue drained in vectorized batches.

    Args:
        name: endpoint name (error messages, metric labels).
        max_batch_size: largest batch one drain scores.
        max_delay_ms: how long the background worker holds an underfull
            batch open waiting for more arrivals.
        queue_capacity: admission bound; a full queue sheds new requests.
        clock: injectable monotonic clock.

    The batcher runs in two modes: *inline* (callers invoke
    :meth:`flush` — deterministic, what tests and the closed-loop
    benchmark use) and *threaded* (:meth:`start` spawns a worker that
    drains continuously — what concurrent callers use).
    """

    def __init__(
        self,
        name: str,
        max_batch_size: int = 64,
        max_delay_ms: float = 2.0,
        queue_capacity: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if max_delay_ms < 0:
            raise ServingError("max_delay_ms must be >= 0")
        if queue_capacity < 1:
            raise ServingError("queue_capacity must be >= 1")
        self.name = name
        self.max_batch_size = max_batch_size
        self.max_delay_ms = max_delay_ms
        self.queue_capacity = queue_capacity
        self._clock = clock
        self._queue: deque[PendingRequest] = deque()
        self._cond = threading.Condition()
        self._worker: threading.Thread | None = None
        self._stop = threading.Event()
        #: ledger: batches drained and their sizes (obs dual-writes too)
        self.batches = 0
        self.batched_requests = 0
        self.shed = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        row: np.ndarray,
        scorer: Callable[[np.ndarray], np.ndarray],
        version: int,
        deadline_at: float | None = None,
    ) -> PendingRequest:
        """Enqueue one request; sheds (raises) when the queue is full."""
        with self._cond:
            depth = len(self._queue)
            if depth >= self.queue_capacity:
                self.shed += 1
                raise LoadShedError(self.name, depth, self.queue_capacity)
            pending = PendingRequest(
                row, scorer, version, deadline_at, self._clock()
            )
            self._queue.append(pending)
            self._cond.notify_all()
        return pending

    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    def _drain_one(self) -> list[PendingRequest]:
        with self._cond:
            batch = [
                self._queue.popleft()
                for _ in range(min(self.max_batch_size, len(self._queue)))
            ]
        return batch

    def _score_batch(self, batch: list[PendingRequest]) -> None:
        """Score one drained batch and complete every request in it.

        Requests are grouped by model version (a canary split can mix
        versions in one arrival window); each group is scored with its
        own scorer in one vectorized call, then results are scattered
        back to their originating requests. Completion happens in FIFO
        order regardless of grouping.
        """
        now = self._clock()
        live: list[PendingRequest] = []
        for pending in batch:
            if pending.deadline_at is not None and now > pending.deadline_at:
                # Expired while queued: fail it without spending a score.
                pending._complete(
                    None, DeadlineExceededError(self.name, 0.0)
                )
            else:
                live.append(pending)
        groups: dict[int, list[int]] = {}
        for i, pending in enumerate(live):
            groups.setdefault(pending.version, []).append(i)
        results: dict[int, float] = {}
        errors: dict[int, BaseException] = {}
        for version, indices in groups.items():
            rows = np.stack([live[i].row for i in indices])
            scorer = live[indices[0]].scorer
            kwargs = {}
            if getattr(scorer, "accepts_deadline", False):
                # Retrying past the tightest deadline in the group
                # cannot help anyone; cap the retry budget by it.
                deadlines = [
                    live[i].deadline_at
                    for i in indices
                    if live[i].deadline_at is not None
                ]
                if deadlines:
                    kwargs["deadline_at"] = min(deadlines)
            try:
                scores = np.asarray(scorer(rows, **kwargs))
            except Exception as exc:  # noqa: BLE001 - delivered per request
                for i in indices:
                    errors[i] = exc
                continue
            if scores.shape[0] != len(indices):
                exc = ServingError(
                    f"scorer returned {scores.shape[0]} results for "
                    f"{len(indices)} rows"
                )
                for i in indices:
                    errors[i] = exc
                continue
            for offset, i in enumerate(indices):
                results[i] = float(scores[offset])
        registry = get_registry()
        self.batches += 1
        self.batched_requests += len(batch)
        registry.inc("serving.batches")
        registry.observe("serving.batch_size", len(batch))
        registry.observe(f"serving.batch_size.{self.name}", len(batch))
        for i, pending in enumerate(live):  # FIFO completion
            if i in errors:
                pending._complete(None, errors[i])
            else:
                pending._complete(results[i], None)

    def flush(self, max_batches: int | None = None) -> int:
        """Drain the queue inline in FIFO batches (all of it by default,
        or at most ``max_batches``); returns requests completed."""
        completed = 0
        drained = 0
        while max_batches is None or drained < max_batches:
            batch = self._drain_one()
            if not batch:
                break
            self._score_batch(batch)
            completed += len(batch)
            drained += 1
        return completed

    # ------------------------------------------------------------------
    # Threaded mode
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the background drain worker (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._stop.clear()
        self._worker = threading.Thread(
            target=self._worker_loop, name=f"batcher-{self.name}", daemon=True
        )
        self._worker.start()

    def stop(self) -> None:
        """Stop the worker and complete whatever is still queued."""
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=5.0)
            self._worker = None
        self.flush()

    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    def _worker_loop(self) -> None:
        max_delay_s = self.max_delay_ms / 1000.0
        while not self._stop.is_set():
            with self._cond:
                while not self._queue and not self._stop.is_set():
                    self._cond.wait(0.05)
                if self._stop.is_set():
                    break
                # Hold the batch open until it fills or the oldest
                # request has waited max_delay_ms.
                close_at = self._queue[0].enqueued_at + max_delay_s
                while (
                    len(self._queue) < self.max_batch_size
                    and not self._stop.is_set()
                ):
                    remaining = close_at - self._clock()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                    if not self._queue:
                        break
            batch = self._drain_one()
            if batch:
                self._score_batch(batch)

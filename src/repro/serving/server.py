"""Online model server: registry-backed endpoints with canary rollout.

The lifecycle layer ends at ``registry.deploy()``; this module is the
other half — the process that answers prediction requests. A
:class:`ModelServer` owns named *endpoints*, each of which:

* resolves its model through the :class:`~repro.lifecycle.ModelRegistry`
  **by alias** (``"prod"`` for stable traffic, ``"canary"`` for the
  candidate), so :meth:`promote` / :meth:`rollback` are atomic pointer
  swaps — in-flight requests finish on the version they resolved;
* routes a deterministic hash-slice of request keys to the canary
  (:class:`~repro.serving.router.CanaryRouter` — bit-reproducible given
  the seed);
* scores through a **compiled affine scorer**: for linear models the
  endpoint evaluates the same column-accumulation expression
  ``indb.scoring`` deploys into the engine, in the same order, so a
  prediction is bit-identical whether it was served alone, in a batch of
  64, or by a SQL scoring query;
* memoizes predictions in a versioned
  :class:`~repro.serving.cache.PredictionCache` (TTL + invalidation on
  promote/rollback);
* sheds load at admission (bounded queue), bounds scoring concurrency,
  and honours per-request deadlines — all under
  :func:`~repro.resilience.fault_point` sites (``serving.admission``,
  ``serving.score``) so chaos tests cover the serving path, with
  :class:`~repro.resilience.RetryPolicy` recovery on the scoring site.

Every request updates the :mod:`repro.obs` registry: request/shed/cache
counters and ``serving.latency_ms`` / ``serving.batch_size`` histograms
with p50/p95/p99.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

import numpy as np

from ..errors import (
    DeadlineExceededError,
    InjectedFault,
    LoadShedError,
    ServingError,
)
from ..lifecycle.registry import ModelRegistry, ModelVersion
from ..ml.losses import sigmoid
from ..obs import Histogram, get_registry
from ..resilience import RetryPolicy, fault_point, resilient_call
from .batcher import MicroBatcher
from .cache import PredictionCache, feature_hash
from .router import CanaryRouter

#: scorer outputs an endpoint can serve for linear models.
_OUTPUTS = ("margin", "proba", "label", "predict")


def compile_linear_scorer(
    model, output: str = "margin"
) -> Callable[[np.ndarray], np.ndarray]:
    """Compile a fitted linear model into a batch scoring kernel.

    The kernel accumulates ``intercept + w0*X[:,0] + w1*X[:,1] + ...``
    column by column in fixed order — exactly the evaluation order of
    the :func:`repro.indb.scoring.linear_expression` the in-DB path
    deploys, and independent of the batch size. Two consequences E22
    leans on: a batched prediction is bit-identical to the same row
    scored alone, and the online server agrees bit-for-bit with SQL
    scoring of the same model.
    """
    if not hasattr(model, "coef_"):
        raise ServingError(
            "compiled scoring needs a fitted linear model exposing "
            "coef_/intercept_ (use output='predict' for other models)"
        )
    weights = np.asarray(model.coef_, dtype=np.float64).ravel()
    intercept = float(model.intercept_)
    columns = [(j, float(w)) for j, w in enumerate(weights)]

    def score(batch: np.ndarray) -> np.ndarray:
        scores = np.full(batch.shape[0], intercept, dtype=np.float64)
        for j, w in columns:
            scores = scores + w * batch[:, j]
        if output == "proba":
            return sigmoid(scores)
        if output == "label":
            return (sigmoid(scores) >= 0.5).astype(np.float64)
        return scores

    return score


def _build_scorer(model, output: str) -> Callable[[np.ndarray], np.ndarray]:
    if output == "predict":
        if not hasattr(model, "predict"):
            raise ServingError("model has no predict(); pick another output")
        return lambda batch: np.asarray(model.predict(batch), dtype=np.float64)
    return compile_linear_scorer(model, output)


class Endpoint:
    """One served route: config, queue, cache, router, and its ledger."""

    def __init__(
        self,
        name: str,
        model_name: str,
        *,
        stable: int | str = ModelRegistry.DEPLOYED_ALIAS,
        canary: int | str | None = None,
        canary_fraction: float = 0.0,
        canary_seed: int = 0,
        output: str = "margin",
        scorer: Callable[[np.ndarray], np.ndarray] | None = None,
        max_batch_size: int = 64,
        max_delay_ms: float = 2.0,
        queue_capacity: int = 1024,
        max_concurrency: int = 4,
        cache_enabled: bool = True,
        cache_capacity: int = 4096,
        cache_ttl_s: float | None = None,
        deadline_ms: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if scorer is None and output not in _OUTPUTS:
            raise ServingError(
                f"output must be one of {_OUTPUTS}, got {output!r}"
            )
        if max_concurrency < 1:
            raise ServingError("max_concurrency must be >= 1")
        self.name = name
        self.model_name = model_name
        self.stable = stable
        self.canary = canary
        self.router = CanaryRouter(canary_fraction, canary_seed)
        self.output = output
        self.custom_scorer = scorer
        self.deadline_ms = deadline_ms
        self._clock = clock
        self.batcher = MicroBatcher(
            name,
            max_batch_size=max_batch_size,
            max_delay_ms=max_delay_ms,
            queue_capacity=queue_capacity,
            clock=clock,
        )
        self.cache: PredictionCache | None = (
            PredictionCache(cache_capacity, cache_ttl_s, clock=clock)
            if cache_enabled
            else None
        )
        self.semaphore = threading.Semaphore(max_concurrency)
        self.max_concurrency = max_concurrency
        # ledger (dual-written into repro.obs)
        self.requests = 0
        self.shed = 0
        self.deadline_exceeded = 0
        self.stable_requests = 0
        self.canary_requests = 0
        self.latency = Histogram(f"serving.latency_ms.{name}")

    def stats(self) -> dict:
        """One endpoint's serving ledger as a plain dict."""
        cache_stats = self.cache.stats if self.cache is not None else None
        return {
            "endpoint": self.name,
            "model": self.model_name,
            "requests": self.requests,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "stable_requests": self.stable_requests,
            "canary_requests": self.canary_requests,
            "canary_fraction": self.router.fraction,
            "batches": self.batcher.batches,
            "batched_requests": self.batcher.batched_requests,
            "mean_batch_size": (
                self.batcher.batched_requests / self.batcher.batches
                if self.batcher.batches
                else 0.0
            ),
            "cache": (
                {
                    "hits": cache_stats.hits,
                    "misses": cache_stats.misses,
                    "invalidations": cache_stats.invalidations,
                    "evictions": cache_stats.evictions,
                    "expirations": cache_stats.expirations,
                    "hit_ratio": cache_stats.hit_ratio,
                }
                if cache_stats is not None
                else None
            ),
            "latency_ms": {
                "count": self.latency.count,
                "mean": self.latency.mean,
                "p50": self.latency.percentile(50.0),
                "p95": self.latency.percentile(95.0),
                "p99": self.latency.percentile(99.0),
                "max": self.latency.max if self.latency.count else None,
            },
        }


class ModelServer:
    """Embedded online-inference server over a :class:`ModelRegistry`.

    Typical session::

        registry.register("churn", model, params={...})
        server = ModelServer(registry)
        server.create_endpoint("churn-score", "churn", output="proba")
        server.promote("churn-score")            # latest -> "prod" alias
        p = server.predict("churn-score", x, key="user-42")
        server.set_canary("churn-score", version=2, fraction=0.1)
        server.rollback("churn-score")           # restore previous prod

    Args:
        registry: the model registry endpoints resolve through.
        retry: recovery policy for the ``serving.score`` fault site
            (None = fail fast).
        clock: injectable monotonic clock shared by queues and caches.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        retry: RetryPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry
        self.retry = retry
        self._clock = clock
        self._endpoints: dict[str, Endpoint] = {}
        self._scorers: dict[tuple[str, int], Callable] = {}
        self._gates: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------
    def create_endpoint(self, name: str, model_name: str, **config) -> Endpoint:
        """Register a served route; see :class:`Endpoint` for knobs."""
        if name in self._endpoints:
            raise ServingError(f"endpoint {name!r} already exists")
        self.registry.versions(model_name)  # validates the model exists
        endpoint = Endpoint(name, model_name, clock=self._clock, **config)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise ServingError(f"no endpoint named {name!r}")
        return endpoint

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def start(self, name: str) -> None:
        """Run the endpoint's batcher in a background worker thread."""
        self.endpoint(name).batcher.start()

    def flush(self, name: str) -> int:
        return self.endpoint(name).batcher.flush()

    def close(self) -> None:
        """Stop every worker and drain every queue."""
        for endpoint in self._endpoints.values():
            if endpoint.batcher.running:
                endpoint.batcher.stop()
            else:
                endpoint.batcher.flush()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Rollout operations
    # ------------------------------------------------------------------
    def set_promotion_gate(self, name: str, gate) -> None:
        """Install a promotion gate (e.g. :class:`repro.features.DriftGate`)
        on an endpoint; ``gate.authorize(self, name, entry)`` runs before
        every :meth:`promote` and may raise
        :class:`~repro.errors.PromotionHeldError` to refuse it."""
        self.endpoint(name)  # validates the endpoint exists
        self._gates[name] = gate

    def clear_promotion_gate(self, name: str) -> None:
        self._gates.pop(name, None)

    def promote(self, name: str, version: int | None = None) -> ModelVersion:
        """Deploy a version (default: latest registered) to the stable
        alias and invalidate the endpoint's cached predictions.

        An installed promotion gate authorizes the candidate first; a
        held promotion leaves the stable alias untouched."""
        endpoint = self.endpoint(name)
        if version is None:
            version = self.registry.get(endpoint.model_name).version
        gate = self._gates.get(name)
        if gate is not None:
            gate.authorize(self, name, self.registry.get(
                endpoint.model_name, version
            ))
        self.registry.deploy(endpoint.model_name, version)
        self._invalidate(endpoint)
        return self.registry.get(endpoint.model_name, version)

    def rollback(self, name: str) -> ModelVersion:
        """Restore the previously deployed version; cache invalidated."""
        endpoint = self.endpoint(name)
        entry = self.registry.rollback(endpoint.model_name)
        self._invalidate(endpoint)
        return entry

    def set_canary(
        self, name: str, version: int, fraction: float
    ) -> ModelVersion:
        """Point the canary alias at ``version`` and route ``fraction``
        of keyed traffic to it."""
        endpoint = self.endpoint(name)
        self.registry.set_alias(endpoint.model_name, "canary", version)
        endpoint.canary = "canary"
        endpoint.router = CanaryRouter(fraction, endpoint.router.seed)
        return self.registry.get(endpoint.model_name, version)

    def clear_canary(self, name: str) -> None:
        endpoint = self.endpoint(name)
        if "canary" in self.registry.aliases(endpoint.model_name):
            self.registry.drop_alias(endpoint.model_name, "canary")
        endpoint.canary = None
        endpoint.router = CanaryRouter(0.0, endpoint.router.seed)

    def invalidate(self, name: str) -> int:
        """Drop an endpoint's compiled scorers and cached predictions;
        returns the number of cache entries dropped. The fabric calls
        this on fleet-wide rollback and on shard revive (epoch
        rejoin)."""
        return self._invalidate(self.endpoint(name))

    def _invalidate(self, endpoint: Endpoint) -> int:
        self._scorers = {
            k: v for k, v in self._scorers.items() if k[0] != endpoint.name
        }
        if endpoint.cache is None:
            return 0
        dropped = endpoint.cache.invalidate(endpoint.name)
        registry = get_registry()
        registry.inc("serving.cache.invalidations", dropped)
        registry.inc(f"serving.cache.invalidations.{endpoint.name}", dropped)
        return dropped

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _route(self, endpoint: Endpoint, key: object | None) -> ModelVersion:
        """Resolve which version answers this request (canary or stable)."""
        use_canary = (
            key is not None
            and endpoint.canary is not None
            and endpoint.router.routes_to_canary(key)
        )
        registry = get_registry()
        if use_canary:
            endpoint.canary_requests += 1
            registry.inc("serving.canary_requests")
            return self.registry.resolve(endpoint.model_name, endpoint.canary)
        endpoint.stable_requests += 1
        return self.registry.resolve(endpoint.model_name, endpoint.stable)

    def _scorer_for(self, endpoint: Endpoint, entry: ModelVersion) -> Callable:
        ident = (endpoint.name, entry.version)
        scorer = self._scorers.get(ident)
        if scorer is None:
            base = (
                endpoint.custom_scorer
                if endpoint.custom_scorer is not None
                else _build_scorer(entry.model, endpoint.output)
            )

            def scorer(
                batch: np.ndarray,
                deadline_at: float | None = None,
                _base=base,
            ) -> np.ndarray:
                with endpoint.semaphore:
                    return resilient_call(
                        lambda: _base(batch),
                        site="serving.score",
                        key=endpoint.name,
                        retry=self.retry,
                        deadline_at=deadline_at,
                    )

            # The batcher forwards each batch's tightest admission
            # deadline, so scoring retries never outlive their budget.
            scorer.accepts_deadline = True
            self._scorers[ident] = scorer
        return scorer

    def _admit(self, endpoint: Endpoint, key: object | None) -> None:
        """Admission fault site: injected faults become shed requests."""
        try:
            fault_point("serving.admission", key=endpoint.name)
        except InjectedFault as fault:
            self._count_shed(endpoint)
            raise LoadShedError(
                endpoint.name,
                endpoint.batcher.depth(),
                endpoint.batcher.queue_capacity,
                reason="chaos",
            ) from fault

    def _count_shed(self, endpoint: Endpoint) -> None:
        endpoint.shed += 1
        registry = get_registry()
        registry.inc("serving.shed")
        registry.inc(f"serving.shed.{endpoint.name}")

    def _record_latency(self, endpoint: Endpoint, start: float) -> None:
        elapsed_ms = (self._clock() - start) * 1000.0
        endpoint.latency.observe(elapsed_ms)
        registry = get_registry()
        registry.observe("serving.latency_ms", elapsed_ms)

    def _count_request(self, endpoint: Endpoint) -> None:
        endpoint.requests += 1
        registry = get_registry()
        registry.inc("serving.requests")
        registry.inc(f"serving.requests.{endpoint.name}")

    def predict(
        self,
        name: str,
        row: np.ndarray,
        key: object | None = None,
        deadline_ms: float | None = None,
    ) -> float:
        """Serve one prediction through the full path: admission, canary
        routing, cache, micro-batch queue, deadline.

        With no background worker running the queue is drained inline
        (deterministic single-caller mode); concurrent callers should
        :meth:`start` the endpoint so their requests coalesce.
        """
        endpoint = self.endpoint(name)
        start = self._clock()
        self._count_request(endpoint)
        if deadline_ms is None:
            deadline_ms = endpoint.deadline_ms
        deadline_at = (
            start + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        self._admit(endpoint, key)
        entry = self._route(endpoint, key)
        row = np.asarray(row, dtype=np.float64)
        obs_registry = get_registry()
        fhash = None
        if endpoint.cache is not None:
            fhash = feature_hash(row)
            cached = endpoint.cache.get(name, entry.version, fhash)
            if cached is not None:
                obs_registry.inc("serving.cache.hits")
                obs_registry.inc(f"serving.cache.hits.{name}")
                self._record_latency(endpoint, start)
                return cached
            obs_registry.inc("serving.cache.misses")
            obs_registry.inc(f"serving.cache.misses.{name}")
        scorer = self._scorer_for(endpoint, entry)
        try:
            pending = endpoint.batcher.submit(
                row, scorer, entry.version, deadline_at
            )
        except LoadShedError:
            self._count_shed(endpoint)
            raise
        if not endpoint.batcher.running:
            endpoint.batcher.flush()
        timeout = (
            None
            if deadline_at is None
            else max(0.0, deadline_at - self._clock())
        )
        try:
            value = pending.wait(timeout)
        except TimeoutError:
            self._count_deadline(endpoint)
            raise DeadlineExceededError(name, deadline_ms) from None
        except DeadlineExceededError:
            self._count_deadline(endpoint)
            raise DeadlineExceededError(name, deadline_ms) from None
        if deadline_at is not None and self._clock() > deadline_at:
            # Computed, but too late — a deadline is a client promise.
            self._count_deadline(endpoint)
            raise DeadlineExceededError(name, deadline_ms)
        if endpoint.cache is not None:
            endpoint.cache.put(name, entry.version, fhash, value)
        self._record_latency(endpoint, start)
        return value

    def _count_deadline(self, endpoint: Endpoint) -> None:
        endpoint.deadline_exceeded += 1
        registry = get_registry()
        registry.inc("serving.deadline_exceeded")
        registry.inc(f"serving.deadline_exceeded.{endpoint.name}")

    def predict_many(
        self,
        name: str,
        rows: np.ndarray,
        keys: Sequence[object] | None = None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        """Serve a stream of requests through the micro-batcher.

        Each row is still an individual request (admission, routing,
        cache), but the queue is drained in vectorized batches, so the
        per-request Python overhead is amortized into one kernel call
        per ``max_batch_size`` rows — the speedup E22 measures. Rows
        whose queue slot would overflow trigger an inline drain instead
        of shedding (a closed-loop caller is its own backpressure).
        """
        endpoint = self.endpoint(name)
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ServingError(
                f"predict_many expects a 2-D batch, got shape {rows.shape}"
            )
        if keys is not None and len(keys) != rows.shape[0]:
            raise ServingError("one key per row required")
        start = self._clock()
        deadline_ms = (
            deadline_ms if deadline_ms is not None else endpoint.deadline_ms
        )
        deadline_at = (
            start + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        obs_registry = get_registry()
        out = np.empty(rows.shape[0], dtype=np.float64)
        # (row index, pending handle, feature hash, resolved version)
        pendings: list[tuple] = []
        for i in range(rows.shape[0]):
            key = keys[i] if keys is not None else None
            self._count_request(endpoint)
            self._admit(endpoint, key)
            entry = self._route(endpoint, key)
            row = rows[i]
            fhash = None
            if endpoint.cache is not None:
                fhash = feature_hash(row)
                cached = endpoint.cache.get(name, entry.version, fhash)
                if cached is not None:
                    obs_registry.inc("serving.cache.hits")
                    obs_registry.inc(f"serving.cache.hits.{name}")
                    out[i] = cached
                    continue
                obs_registry.inc("serving.cache.misses")
                obs_registry.inc(f"serving.cache.misses.{name}")
            scorer = self._scorer_for(endpoint, entry)
            try:
                pending = endpoint.batcher.submit(
                    row, scorer, entry.version, deadline_at
                )
            except LoadShedError:
                endpoint.batcher.flush()  # closed loop: drain, then retry
                pending = endpoint.batcher.submit(
                    row, scorer, entry.version, deadline_at
                )
            pendings.append((i, pending, fhash, entry.version))
        if not endpoint.batcher.running:
            endpoint.batcher.flush()
        for i, pending, fhash, version in pendings:
            timeout = (
                None
                if deadline_at is None
                else max(0.0, deadline_at - self._clock())
            )
            try:
                out[i] = pending.wait(timeout)
            except TimeoutError:
                self._count_deadline(endpoint)
                raise DeadlineExceededError(name, deadline_ms) from None
            if endpoint.cache is not None:
                endpoint.cache.put(name, version, fhash, out[i])
        self._record_latency(endpoint, start)
        return out

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-endpoint serving ledgers, keyed by endpoint name."""
        return {
            name: endpoint.stats()
            for name, endpoint in sorted(self._endpoints.items())
        }

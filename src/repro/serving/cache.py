"""Versioned prediction cache with TTL and promotion invalidation.

Online scoring is read-heavy and repetitive — the same entities are
scored again and again between model updates (Kara et al. keep scoring
incremental for exactly this reason). Entries are keyed on
``(endpoint, model_version, feature_hash)``: the version in the key
means a promoted model can never serve a predecessor's cached answer,
and :meth:`PredictionCache.invalidate` additionally evicts an
endpoint's entries eagerly on promote/rollback so stale rows do not
squat in the LRU ring. The hit/miss/invalidation ledger mirrors the
:class:`~repro.storage.querycache.QueryCache` pattern the feature-query
layer uses.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ServingError


def feature_hash(row: np.ndarray) -> int:
    """Process-independent hash of one feature vector.

    Hashes dtype, shape, and the raw little-endian bytes, so equal
    vectors hash equally across processes and runs (builtin ``hash`` is
    salted per interpreter).
    """
    arr = np.ascontiguousarray(row, dtype=np.float64)
    header = f"{arr.shape}".encode("utf-8")
    return zlib.crc32(arr.tobytes(), zlib.crc32(header))


@dataclass
class PredictionCacheStats:
    """Hit/miss/invalidation ledger of one :class:`PredictionCache`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PredictionCache:
    """LRU + TTL cache of scalar predictions, thread-safe.

    Args:
        capacity: maximum number of cached predictions.
        ttl_s: entry lifetime in seconds (None = no expiry).
        clock: injectable monotonic clock (tests advance a fake).
    """

    def __init__(
        self,
        capacity: int = 4096,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ServingError("cache capacity must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ServingError("ttl_s must be positive (or None)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: OrderedDict[tuple, tuple[float, float]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PredictionCacheStats()

    # ------------------------------------------------------------------
    def get(self, endpoint: str, version: int, fhash: int) -> float | None:
        """The cached prediction, or None on miss/expiry."""
        key = (endpoint, version, fhash)
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_at, value = entry
                if self.ttl_s is None or now - stored_at < self.ttl_s:
                    self.stats.hits += 1
                    self._entries.move_to_end(key)
                    return value
                del self._entries[key]
                self.stats.expirations += 1
            self.stats.misses += 1
        return None

    def put(self, endpoint: str, version: int, fhash: int, value: float) -> None:
        key = (endpoint, version, fhash)
        with self._lock:
            self._entries[key] = (self._clock(), float(value))
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, endpoint: str) -> int:
        """Evict every entry of one endpoint (any version); returns the
        count. Called on promote/rollback."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == endpoint]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

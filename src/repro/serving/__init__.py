"""Online model serving: micro-batching, prediction cache, canary rollout.

The deployment half the lifecycle layer was missing. A
:class:`ModelServer` turns a :class:`~repro.lifecycle.ModelRegistry`
into a live inference surface:

* **Endpoints** resolve models through registry aliases (``"prod"`` /
  ``"canary"``), so promote and rollback are atomic pointer swaps.
* **Canary rollout** routes a deterministic hash-slice of request keys
  to a candidate version (:class:`CanaryRouter` — bit-reproducible).
* **Micro-batching** (:class:`MicroBatcher`) coalesces queued requests
  into vectorized batches under ``max_batch_size`` / ``max_delay_ms``;
  compiled affine scorers make batched results bit-identical to
  single-row scoring and to the ``indb`` SQL-scoring path.
* **Prediction cache** (:class:`PredictionCache`) memoizes on
  ``(endpoint, model_version, feature_hash)`` with TTL and invalidation
  on promotion.
* **Admission control** — bounded queues shed load
  (:class:`~repro.errors.LoadShedError`), scoring concurrency is
  capped, and deadlines raise
  :class:`~repro.errors.DeadlineExceededError`; chaos fault sites
  (``serving.admission``, ``serving.score``) plug into
  :mod:`repro.resilience`.

Scaling a single server out is :mod:`repro.serving.fabric`: a
:class:`ShardedServer` partitions endpoints and the prediction cache
across N shards on a CRC32 consistent-hash :class:`HashRing`, with
R-way replication, deterministic failover when a shard is killed,
epoch-based cache invalidation on revive, per-tenant token-bucket
admission quotas (:class:`AdmissionQuotas` / :class:`TokenBucket`), and
fleet-wide promote/rollback/canary.

E22 (``benchmarks/bench_serving.py``) measures the batched-vs-unbatched
throughput, latency percentiles, cache hit ratios, and canary split
exactness this package promises; E26 (``benchmarks/bench_sharding.py``)
gates the sharded fabric's failover, quota, and scaling ledgers.
"""

from .batcher import MicroBatcher, PendingRequest
from .cache import PredictionCache, PredictionCacheStats, feature_hash
from .fabric import FabricLedger, ShardedServer
from .quota import AdmissionQuotas, TokenBucket
from .ring import HashRing
from .router import CanaryRouter
from .server import Endpoint, ModelServer, compile_linear_scorer

__all__ = [
    "AdmissionQuotas",
    "CanaryRouter",
    "Endpoint",
    "FabricLedger",
    "HashRing",
    "MicroBatcher",
    "ModelServer",
    "PendingRequest",
    "PredictionCache",
    "PredictionCacheStats",
    "ShardedServer",
    "TokenBucket",
    "compile_linear_scorer",
    "feature_hash",
]

"""Deterministic hash-based canary routing.

A rollout is only auditable if the traffic split is reproducible: given
the same seed and fraction, a request key must land on the same side of
the split in every process, on every machine, forever. The router
therefore hashes with CRC32 (process-independent, unlike builtin
``hash``) and derives each key's bucket from ``(seed, key)`` alone — no
per-request randomness, no mutable state. Moving the fraction is
*monotone*: raising it only adds keys to the canary set (a key's bucket
never changes), so a gradual 1% -> 5% -> 25% rollout keeps early canary
users on the candidate instead of reshuffling them.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import ServingError

#: bucket resolution: keys map to [0, 1) in steps of 1/2^32.
_BUCKETS = float(2**32)


@dataclass(frozen=True)
class CanaryRouter:
    """Routes a fraction of request keys to a candidate version.

    Args:
        fraction: share of the key space routed to the canary, in [0, 1].
        seed: salt for the key hash; two routers with different seeds
            draw independent splits over the same keys.
    """

    fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ServingError(
                f"canary fraction must be in [0, 1], got {self.fraction}"
            )

    def bucket(self, key: object) -> float:
        """The key's fixed position in [0, 1) — independent of fraction."""
        payload = f"{self.seed}|{key!r}".encode("utf-8")
        return zlib.crc32(payload) / _BUCKETS

    def routes_to_canary(self, key: object) -> bool:
        """True when this key belongs to the canary slice."""
        return self.fraction > 0.0 and self.bucket(key) < self.fraction

    def split(self, keys) -> tuple[list, list]:
        """Partition ``keys`` into (stable, canary) lists, order kept."""
        stable: list = []
        canary: list = []
        for key in keys:
            (canary if self.routes_to_canary(key) else stable).append(key)
        return stable, canary

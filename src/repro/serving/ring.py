"""Deterministic consistent-hash ring for shard placement and routing.

The fabric partitions endpoints and their prediction caches across
shards, so the placement function has to satisfy three properties the
:class:`~repro.serving.router.CanaryRouter` already set the precedent
for:

* **bit-reproducible** — placement hashes with CRC32 over explicit
  strings, never builtin ``hash`` (salted per interpreter), so the same
  ring built in any process, under any ``PYTHONHASHSEED``, routes every
  key identically;
* **minimally disruptive** — each node projects ``vnodes`` virtual
  points onto the ring, so adding or removing one of N nodes remaps
  only ~1/N of the key space (property-tested in
  ``tests/test_sharding.py``) while everything else keeps its owner —
  which is what keeps a resize from invalidating every shard's cache;
* **replica-ordered** — :meth:`successors` walks clockwise from a key's
  point and returns the first R *distinct* nodes, giving every key a
  stable failover preference list: when its owner dies, the next live
  successor takes over deterministically.
"""

from __future__ import annotations

import bisect
import zlib

from ..errors import ServingError


class HashRing:
    """CRC32 consistent-hash ring with virtual nodes.

    Args:
        nodes: initial node identifiers (order-independent: placement
            depends only on the node *names*, not insertion order).
        vnodes: virtual points per node; more vnodes smooth the key
            distribution at the cost of a larger sorted point table.
        seed: salt folded into every hash, so two rings with different
            seeds draw independent placements over the same nodes.
    """

    def __init__(self, nodes=(), vnodes: int = 64, seed: int = 0):
        if vnodes < 1:
            raise ServingError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._nodes: set[str] = set()
        self._points: list[int] = []  # sorted hash positions
        self._owners: list[str] = []  # owner of each position
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    def _hash(self, token: str) -> int:
        return zlib.crc32(f"{self.seed}|{token}".encode("utf-8"))

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ServingError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for v in range(self.vnodes):
            point = self._hash(f"{node}#{v}")
            idx = bisect.bisect_left(self._points, point)
            # CRC collisions between distinct tokens are possible in a
            # 32-bit space; break ties by node name so insertion order
            # still cannot change the ring.
            while (
                idx < len(self._points)
                and self._points[idx] == point
                and self._owners[idx] < node
            ):
                idx += 1
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ServingError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    def successors(self, key: object, count: int = 1) -> list[str]:
        """The first ``count`` distinct nodes clockwise from ``key``.

        This is a key's replica preference list: index 0 is its owner,
        the rest are its failover order. ``count`` is clamped to the
        ring size.
        """
        if not self._nodes:
            raise ServingError("ring has no nodes")
        count = min(count, len(self._nodes))
        point = self._hash(f"key|{key!r}")
        start = bisect.bisect_right(self._points, point) % len(self._points)
        found: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                found.append(owner)
                if len(found) == count:
                    break
        return found

    def owner(self, key: object) -> str:
        """The single node owning ``key``."""
        return self.successors(key, 1)[0]

    def assignments(self, keys) -> dict:
        """key -> owner map (bulk helper for tests and rebalancing)."""
        return {key: self.owner(key) for key in keys}

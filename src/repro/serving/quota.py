"""Per-tenant admission quotas: deterministic token buckets.

Multi-tenant serving fails unfairly without isolation: one hot tenant
fills every queue and the *other* tenants' requests shed. The fabric
therefore meters admission per tenant **before** a request ever touches
a shard queue — a classic token bucket, but built the way everything in
this runtime is built: the clock is injectable and every decision is
pure arithmetic over (capacity, refill rate, arrival time), so a seeded
arrival schedule sheds an exactly countable set of requests (the E26
quota gate) instead of a timing-dependent one.

A tenant over its quota sheds *its own* overflow with a
:class:`~repro.errors.LoadShedError` carrying ``reason="quota"`` and the
tenant in its structured context; tenants within quota are unaffected.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import ServingError


class TokenBucket:
    """One tenant's admission budget.

    Args:
        capacity: burst size — the most requests admitted back-to-back.
        refill_per_s: sustained admission rate (tokens per second).
        clock: injectable monotonic clock (benchmarks drive a fake
            clock along a deterministic arrival schedule).
    """

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ServingError(f"capacity must be > 0, got {capacity}")
        if refill_per_s < 0:
            raise ServingError(
                f"refill_per_s must be >= 0, got {refill_per_s}"
            )
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_s
            )
        self._refilled_at = now

    def try_take(self, tokens: float = 1.0) -> bool:
        """Admit (consume) or refuse without consuming."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionQuotas:
    """Tenant -> bucket map with an admitted/shed ledger.

    Tenants without a configured quota (and requests with no tenant at
    all) are admitted unmetered unless a ``default`` quota is set, in
    which case unknown tenants each get their own bucket with the
    default's parameters on first sight.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._buckets: dict[object, TokenBucket] = {}
        self._default: tuple[float, float] | None = None
        self._lock = threading.Lock()
        #: exact per-tenant ledger: tenant -> [admitted, shed]
        self.ledger: dict[object, list[int]] = {}

    def set_quota(
        self, tenant: object, capacity: float, refill_per_s: float
    ) -> None:
        with self._lock:
            self._buckets[tenant] = TokenBucket(
                capacity, refill_per_s, self._clock
            )

    def set_default(self, capacity: float, refill_per_s: float) -> None:
        """Quota applied to tenants first seen without an explicit one."""
        TokenBucket(capacity, refill_per_s, self._clock)  # validates args
        with self._lock:
            self._default = (capacity, refill_per_s)

    def bucket(self, tenant: object) -> TokenBucket | None:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None and self._default is not None:
                bucket = TokenBucket(*self._default, self._clock)
                self._buckets[tenant] = bucket
            return bucket

    @property
    def configured(self) -> bool:
        return bool(self._buckets) or self._default is not None

    # ------------------------------------------------------------------
    def admit(self, tenant: object) -> bool:
        """One admission decision, recorded in the exact ledger."""
        if tenant is None:
            return True
        bucket = self.bucket(tenant)
        if bucket is None:
            admitted = True
        else:
            admitted = bucket.try_take()
        with self._lock:
            counts = self.ledger.setdefault(tenant, [0, 0])
            counts[0 if admitted else 1] += 1
        return admitted

    def stats(self) -> dict:
        """Per-tenant admitted/shed counts (stringified tenant keys)."""
        with self._lock:
            return {
                str(tenant): {"admitted": counts[0], "shed": counts[1]}
                for tenant, counts in sorted(
                    self.ledger.items(), key=lambda kv: str(kv[0])
                )
            }

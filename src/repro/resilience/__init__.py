"""Fault-tolerant execution: chaos, retry, and checkpoint/restore.

The resilience layer reproduces how the surveyed systems survive
failure rather than crash:

* :mod:`repro.resilience.faults` — deterministic fault injection. A
  seeded :class:`FaultPlan` installed through a :class:`ChaosContext`
  makes registered sites (pmap tasks, cluster worker RPCs,
  parameter-server pushes, blockstore reads, algorithm iterations)
  raise :class:`~repro.errors.InjectedFault`, sleep (straggler), or
  corrupt bytes — reproducibly, so chaos tests are assertable.
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (bounded
  attempts, exponential backoff with deterministic jitter, retryable
  filter) and the :func:`resilient_call` hook iterative drivers wrap
  their steps in. Task re-execution mirrors MapReduce/Spark.
* :mod:`repro.resilience.checkpoint` — :class:`IterativeCheckpointer`:
  atomic (write-temp-then-rename), schema-versioned, CRC32-checksummed
  snapshots so any iterative job killed at step k resumes to the
  bit-identical final model.

Recovery events all flow into the :mod:`repro.obs` registry
(``resilience.*`` / ``checkpoint.*`` counters); experiment E21 measures
completion rate and overhead under injected fault rates.
"""

from ..errors import (
    CheckpointError,
    CorruptedBlockError,
    InjectedFault,
    ParallelTaskError,
    ResilienceError,
    RetryExhaustedError,
    WorkerFailure,
)
from .checkpoint import SCHEMA as CHECKPOINT_SCHEMA
from .checkpoint import IterativeCheckpointer
from .faults import (
    CHAOS_SEED_ENV,
    ChaosContext,
    FaultPlan,
    FaultSpec,
    active_chaos,
    chaos_seed_from_env,
    fault_point,
    install_chaos,
    no_chaos,
    uninstall_chaos,
)
from .retry import (
    AGGRESSIVE_RETRYABLE,
    DEFAULT_RETRYABLE,
    RetryPolicy,
    call_with_retry,
    resilient_call,
    retryable_from_names,
)

__all__ = [
    "AGGRESSIVE_RETRYABLE",
    "CHAOS_SEED_ENV",
    "CHECKPOINT_SCHEMA",
    "DEFAULT_RETRYABLE",
    "ChaosContext",
    "CheckpointError",
    "CorruptedBlockError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "IterativeCheckpointer",
    "ParallelTaskError",
    "ResilienceError",
    "RetryExhaustedError",
    "RetryPolicy",
    "WorkerFailure",
    "active_chaos",
    "call_with_retry",
    "chaos_seed_from_env",
    "fault_point",
    "install_chaos",
    "no_chaos",
    "resilient_call",
    "retryable_from_names",
    "uninstall_chaos",
]

"""Deterministic fault injection: seeded chaos for assertable tests.

The surveyed systems are defined as much by how they survive failure as
by how fast they run — MapReduce/Spark re-execute lost tasks from
lineage, SystemML recomputes from the plan, parameter servers tolerate
slow and lost workers. To reproduce *recovery* behaviour we need
*failures* that are reproducible: a :class:`FaultPlan` is a seeded
schedule of faults, and a :class:`ChaosContext` makes any registered
site (a ``pmap`` task, a cluster worker RPC, a parameter-server push, a
blockstore read, an algorithm iteration) fail on demand.

Determinism contract: each ``(site, key)`` pair owns an independent RNG
stream seeded from ``(plan.seed, crc32(site), crc32(key))``, and draws
one decision per invocation. Thread scheduling cannot reorder a single
key's sequence (retries of one task are sequential), so a chaos run is
fully reproducible from the seed — tests can assert exactly which
invocations fail and that recovery produced the fault-free answer.

Fault modes:

* ``"raise"``   — raise :class:`~repro.errors.InjectedFault`.
* ``"sleep"``   — sleep ``sleep_seconds`` before continuing (straggler).
* ``"corrupt"`` — return the action to the caller, which applies the
  corruption itself (only sites that move bytes honour this mode).

When no context is installed, :func:`fault_point` is one global load and
one ``is None`` test — the disabled path stays off the profile (the E21
overhead bound covers it).
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import InjectedFault, ResilienceError
from ..obs import get_registry

_MODES = ("raise", "sleep", "corrupt")

#: env var the CI chaos leg sets; tests read it through
#: :func:`chaos_seed_from_env` so one knob reseeds the whole suite.
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"


def chaos_seed_from_env(default: int = 7) -> int:
    """The chaos seed for this process (``REPRO_CHAOS_SEED`` or default)."""
    raw = os.environ.get(CHAOS_SEED_ENV, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ResilienceError(
            f"{CHAOS_SEED_ENV} must be an integer, got {raw!r}"
        ) from exc


def _stable_hash(value: object) -> int:
    """Process-independent hash (builtin ``hash`` is salted per run)."""
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where, how often, and what kind of failure.

    Args:
        site: exact site name, or a prefix ending in ``*`` (so
            ``"cluster.*"`` matches every cluster site).
        rate: per-invocation fault probability in [0, 1].
        mode: ``"raise"``, ``"sleep"``, or ``"corrupt"``.
        sleep_seconds: straggler duration for ``"sleep"``.
        max_faults: cap on total injections from this spec (None = no cap).
        after: skip the first N invocations of each (site, key) stream —
            lets a test guarantee some clean progress before chaos.
    """

    site: str
    rate: float
    mode: str = "raise"
    sleep_seconds: float = 0.05
    max_faults: int | None = None
    after: int = 0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ResilienceError(
                f"fault mode must be one of {_MODES}, got {self.mode!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ResilienceError(f"rate must be in [0, 1], got {self.rate}")
        if self.sleep_seconds < 0:
            raise ResilienceError("sleep_seconds must be >= 0")
        if self.after < 0:
            raise ResilienceError("after must be >= 0")

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site


@dataclass
class FaultPlan:
    """A seeded set of fault rules — the reproducible chaos schedule."""

    seed: int = 7
    specs: list[FaultSpec] = field(default_factory=list)

    def inject(
        self,
        site: str,
        rate: float,
        mode: str = "raise",
        **kwargs,
    ) -> "FaultPlan":
        """Add a rule (chainable)."""
        self.specs.append(FaultSpec(site=site, rate=rate, mode=mode, **kwargs))
        return self

    def specs_for(self, site: str) -> list[FaultSpec]:
        return [s for s in self.specs if s.matches(site)]


class ChaosContext:
    """An installed :class:`FaultPlan` plus its injection ledger.

    Use as a context manager (installs globally for the block)::

        plan = FaultPlan(seed=7).inject("parallel.task.*", rate=0.2)
        with ChaosContext(plan):
            run_job()           # ~20% of tasks raise InjectedFault

    or install explicitly with :func:`install_chaos`.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._streams: dict[tuple[str, object], np.random.Generator] = {}
        self._invocations: dict[tuple[str, object], int] = {}
        #: injections per (site, mode)
        self.injected: dict[tuple[str, str], int] = {}
        self.total_injected = 0

    # ------------------------------------------------------------------
    def _stream(self, site: str, key: object) -> np.random.Generator:
        ident = (site, key)
        stream = self._streams.get(ident)
        if stream is None:
            stream = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self.plan.seed,
                    spawn_key=(_stable_hash(site), _stable_hash(key)),
                )
            )
            self._streams[ident] = stream
        return stream

    def decide(self, site: str, key: object = None) -> FaultSpec | None:
        """One invocation's fault decision (None = proceed cleanly)."""
        specs = self.plan.specs_for(site)
        if not specs:
            return None
        with self._lock:
            ident = (site, key)
            invocation = self._invocations.get(ident, 0) + 1
            self._invocations[ident] = invocation
            for spec in specs:
                if invocation <= spec.after:
                    continue
                if spec.max_faults is not None:
                    fired = self.injected.get((site, spec.mode), 0)
                    if fired >= spec.max_faults:
                        continue
                draw = float(self._stream(site, key).random())
                if draw < spec.rate:
                    self.injected[(site, spec.mode)] = (
                        self.injected.get((site, spec.mode), 0) + 1
                    )
                    self.total_injected += 1
                    return spec
        return None

    def invocations(self, site: str) -> int:
        """Total invocations observed for a site (all keys)."""
        with self._lock:
            return sum(
                count
                for (s, _), count in self._invocations.items()
                if s == site
            )

    def total_invocations(self) -> int:
        """Fault-point crossings observed across all matched sites."""
        with self._lock:
            return sum(self._invocations.values())

    def injected_at(self, site: str) -> int:
        return sum(
            count for (s, _), count in self.injected.items() if s == site
        )

    # ------------------------------------------------------------------
    def __enter__(self) -> "ChaosContext":
        install_chaos(self)
        return self

    def __exit__(self, *exc: object) -> None:
        uninstall_chaos(self)


# ----------------------------------------------------------------------
# Global installation + the fault point every site calls
# ----------------------------------------------------------------------
_active: ChaosContext | None = None
_install_lock = threading.Lock()


def install_chaos(context: ChaosContext) -> None:
    global _active
    with _install_lock:
        if _active is not None and _active is not context:
            raise ResilienceError("a ChaosContext is already installed")
        _active = context


def uninstall_chaos(context: ChaosContext | None = None) -> None:
    """Remove the active context (a specific one, or whatever is active)."""
    global _active
    with _install_lock:
        if context is None or _active is context:
            _active = None


def active_chaos() -> ChaosContext | None:
    return _active


@contextmanager
def no_chaos() -> Iterator[None]:
    """Temporarily mask the installed context (recovery paths use this
    so a repair action cannot itself be re-injected forever)."""
    global _active
    with _install_lock:
        saved, _active = _active, None
    try:
        yield
    finally:
        with _install_lock:
            _active = saved


def fault_point(site: str, key: object = None) -> str | None:
    """The hook every registered site calls once per invocation.

    Returns ``None`` on the clean path. With an installed context the
    site's decision is applied here for ``"raise"`` (raises
    :class:`InjectedFault`) and ``"sleep"`` (sleeps, then returns
    ``"sleep"``); ``"corrupt"`` is returned to the caller, which owns
    the bytes being corrupted.
    """
    chaos = _active
    if chaos is None:
        return None
    spec = chaos.decide(site, key)
    if spec is None:
        return None
    registry = get_registry()
    registry.inc("resilience.faults_injected")
    registry.inc(f"resilience.faults_injected.{spec.mode}")
    if spec.mode == "raise":
        raise InjectedFault(site, key, chaos.invocations(site))
    if spec.mode == "sleep":
        time.sleep(spec.sleep_seconds)
        return "sleep"
    return "corrupt"

"""Atomic, versioned, checksummed checkpoints for iterative jobs.

SystemML recomputes lost intermediates from the plan; Spark from
lineage; long-running training jobs everywhere else from *checkpoints* —
the asset-management surveys list checkpointed model state as a core
operational requirement. An :class:`IterativeCheckpointer` gives every
iterative driver here (GLM gradient descent, k-means, out-of-core
regression, model-selection searches) the same kill-and-resume
contract:

* **Atomic** — state is serialized to a temp file in the same directory
  and ``os.replace``d into place, so a crash mid-write can never leave a
  truncated checkpoint with a valid name.
* **Versioned** — every file carries a schema header
  (``repro.ckpt/v1``); future layout changes bump the version instead of
  silently misreading old bytes.
* **Checksummed** — the pickled payload's CRC32 is stored in the header
  and verified on load; a corrupt checkpoint is *skipped* (falling back
  to the newest older valid one) rather than restored wrong.

Because each driver's loop is a deterministic function of its saved
state, resuming from iteration k reproduces the uninterrupted run's
final model bit-for-bit — the property E21's kill/resume leg asserts.
"""

from __future__ import annotations

import os
import pickle
import re
from pathlib import Path
from typing import Any

from ..errors import CheckpointError
from ..obs import get_registry, span
from ..persist import read_verified, write_atomic

SCHEMA = "repro.ckpt/v1"
_FILE_RE = re.compile(r"^(?P<name>.+)-(?P<step>\d{8})\.ckpt$")


class IterativeCheckpointer:
    """Directory of ``<name>-<step>.ckpt`` files with atomic writes.

    Args:
        directory: where checkpoints live (created if missing).
        name: job name — one directory can hold several jobs.
        keep: how many most-recent checkpoints to retain (older ones are
            pruned after each successful save). ``None`` keeps all.
        interval: :meth:`should_checkpoint` returns True every
            ``interval`` steps — drivers call it so checkpoint cadence
            is policy, not code.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        name: str = "job",
        keep: int | None = 2,
        interval: int = 1,
    ):
        if keep is not None and keep < 1:
            raise CheckpointError(f"keep must be >= 1 or None, got {keep}")
        if interval < 1:
            raise CheckpointError(f"interval must be >= 1, got {interval}")
        if "/" in name or name != name.strip() or not name:
            raise CheckpointError(f"invalid checkpoint job name {name!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.keep = keep
        self.interval = interval

    # ------------------------------------------------------------------
    def _path(self, step: int) -> Path:
        return self.directory / f"{self.name}-{step:08d}.ckpt"

    def should_checkpoint(self, step: int) -> bool:
        return step % self.interval == 0

    def steps(self) -> list[int]:
        """All steps with a checkpoint file for this job, ascending."""
        found = []
        for path in self.directory.iterdir():
            match = _FILE_RE.match(path.name)
            if match and match.group("name") == self.name:
                found.append(int(match.group("step")))
        return sorted(found)

    # ------------------------------------------------------------------
    def save(self, step: int, state: dict[str, Any]) -> Path:
        """Atomically persist one step's state; returns the final path."""
        if step < 0:
            raise CheckpointError(f"step must be >= 0, got {step}")
        if not isinstance(state, dict):
            raise CheckpointError(
                f"state must be a dict, got {type(state).__name__}"
            )
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        target = self._path(step)
        with span("checkpoint.save", job=self.name, step=step):
            write_atomic(
                target,
                payload,
                SCHEMA,
                extra={"job": self.name, "step": step},
                error_cls=CheckpointError,
                what="checkpoint",
                tmp_prefix=f".{self.name}-",
            )
        registry = get_registry()
        registry.inc("checkpoint.saves")
        registry.inc(
            "checkpoint.bytes_written", os.path.getsize(target)
        )
        self._prune()
        return target

    def _prune(self) -> None:
        if self.keep is None:
            return
        steps = self.steps()
        for step in steps[: -self.keep]:
            try:
                self._path(step).unlink()
                get_registry().inc("checkpoint.pruned")
            except OSError:
                pass  # pruning is best-effort

    # ------------------------------------------------------------------
    def load(self, step: int) -> dict[str, Any]:
        """Load and verify one step (raises on corruption/mismatch)."""
        path = self._path(step)
        if not path.exists():
            raise CheckpointError(f"no checkpoint for step {step} at {path}")
        _, payload = read_verified(
            path, SCHEMA, error_cls=CheckpointError, what="checkpoint"
        )
        state = pickle.loads(payload)
        registry = get_registry()
        registry.inc("checkpoint.restores")
        return state

    def load_latest(self) -> tuple[int, dict[str, Any]] | None:
        """Newest *valid* checkpoint as ``(step, state)``, or None.

        Corrupt or truncated files are skipped (and counted in the obs
        registry) so one bad write never blocks recovery.
        """
        for step in reversed(self.steps()):
            try:
                return step, self.load(step)
            except CheckpointError:
                get_registry().inc("checkpoint.corrupt_skipped")
                continue
        return None

    def clear(self) -> None:
        """Delete every checkpoint of this job."""
        for step in self.steps():
            try:
                self._path(step).unlink()
            except OSError:
                pass

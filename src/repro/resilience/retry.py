"""Retry policies: bounded re-execution with deterministic backoff.

The recovery half of the chaos story: a :class:`RetryPolicy` describes
how many times a failed unit of work may be re-executed, how long to
back off between attempts (exponential with *deterministic* jitter — the
jitter sequence derives from the policy seed and the call's site/key, so
a chaos run's timing schedule is reproducible), and which exceptions are
worth retrying at all.

Because every unit of work this runtime retries is a pure function of
its inputs (a pmap task, a compiled-plan execution, a worker RPC over an
immutable shard), re-execution after a transient fault produces a
bit-identical result — the property E21 asserts end to end.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

import numpy as np

from ..errors import (
    DeadlineExceededError,
    InjectedFault,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
    WorkerFailure,
)
from ..obs import get_registry, span
from .faults import fault_point

T = TypeVar("T")

#: exceptions retried by default: injected chaos and lost workers are
#: transient by construction; everything else is assumed deterministic
#: (a shape error will fail identically on every attempt).
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    InjectedFault,
    WorkerFailure,
    TimeoutError,
    ConnectionError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    Args:
        max_attempts: total attempts including the first (>= 1).
        backoff_base: delay before the second attempt, in seconds.
        backoff_multiplier: growth factor per subsequent attempt.
        max_backoff: ceiling on any single delay.
        jitter: fraction of the delay drawn uniformly from
            ``[-jitter, +jitter]`` — deterministic per (seed, site, key,
            attempt), so two runs of the same chaos schedule sleep the
            same amounts.
        seed: jitter seed.
        retryable: exception classes worth re-executing for.
        sleep: injectable clock (tests pass a no-op to run instantly).
        clock: monotonic clock used to honour absolute deadlines
            (``deadline_at`` on :func:`call_with_retry`); injectable so
            deadline tests advance a fake.
    """

    max_attempts: int = 3
    backoff_base: float = 0.001
    backoff_multiplier: float = 2.0
    max_backoff: float = 0.25
    jitter: float = 0.1
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise ResilienceError("backoff durations must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------------------
    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    def delay(self, attempt: int, site: str = "", key: object = None) -> float:
        """Deterministic backoff before attempt ``attempt + 1``."""
        base = min(
            self.backoff_base * (self.backoff_multiplier ** (attempt - 1)),
            self.max_backoff,
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=(
                    zlib.crc32(site.encode("utf-8")),
                    zlib.crc32(repr(key).encode("utf-8")),
                    attempt,
                ),
            )
        )
        factor = 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return base * factor


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    site: str = "retry",
    key: object = None,
    deadline_at: float | None = None,
) -> T:
    """Run ``fn`` under ``policy``; raise ``RetryExhaustedError`` when
    every attempt fails (last failure chained as ``__cause__``).

    ``deadline_at`` (absolute, on ``policy.clock``) caps the *total*
    retry budget: once the deadline has passed — or the next backoff
    sleep would cross it — the call raises
    :class:`~repro.errors.DeadlineExceededError` instead of burning
    attempts past the request's admission deadline. A retried unit of
    work can therefore never outlive the budget its caller promised.
    """
    registry = get_registry()
    started = policy.clock() if deadline_at is not None else 0.0
    last: BaseException | None = None

    def _deadline_exceeded(cause: BaseException | None) -> None:
        registry.inc("resilience.retry_deadline_capped")
        budget_ms = max(0.0, (deadline_at - started) * 1000.0)
        raise DeadlineExceededError(site, budget_ms) from cause

    for attempt in range(1, policy.max_attempts + 1):
        try:
            result = fn()
        except Exception as exc:
            last = exc
            if not policy.is_retryable(exc) or attempt == policy.max_attempts:
                break
            if deadline_at is not None:
                delay = policy.delay(attempt, site, key)
                if policy.clock() + delay >= deadline_at:
                    _deadline_exceeded(exc)
            registry.inc("resilience.retries")
            registry.inc(f"resilience.retries.{site}")
            with span("resilience.retry", site=site, attempt=attempt):
                policy.sleep(policy.delay(attempt, site, key))
            continue
        if attempt > 1:
            registry.inc("resilience.recoveries")
            registry.inc(f"resilience.recoveries.{site}")
        return result
    assert last is not None
    if policy.is_retryable(last):
        registry.inc("resilience.retry_exhausted")
        raise RetryExhaustedError(site, key, policy.max_attempts) from last
    raise last


def resilient_call(
    fn: Callable[[], T],
    site: str,
    key: object = None,
    retry: RetryPolicy | None = None,
    deadline_at: float | None = None,
) -> T:
    """A registered fault site around a pure unit of work.

    Every attempt first consults :func:`fault_point` (so an installed
    :class:`ChaosContext` can fail it), then runs ``fn``. With a policy,
    transient failures — injected or real — are retried; without one the
    fault propagates to the caller. This is the hook iterative drivers
    (GLM, k-means, out-of-core) wrap their per-iteration step in.
    ``deadline_at`` caps the total retry budget (see
    :func:`call_with_retry`).
    """

    def attempt() -> T:
        fault_point(site, key=key)
        return fn()

    if retry is None:
        return attempt()
    return call_with_retry(
        attempt, retry, site=site, key=key, deadline_at=deadline_at
    )


def retryable_from_names(names: "list[str]") -> tuple[type[BaseException], ...]:
    """Resolve retryable-exception names (config files) to classes."""
    import repro.errors as errors_mod

    out: list[type[BaseException]] = []
    for name in names:
        cls: Any = getattr(errors_mod, name, None)
        if cls is None or not issubclass(cls, BaseException):
            raise ResilienceError(f"unknown retryable exception {name!r}")
        out.append(cls)
    if not out:
        raise ResilienceError("retryable exception list is empty")
    return tuple(out)


#: convenience: a policy that retries ReproError subclasses too (used by
#: tests that inject non-transient-looking failures deliberately).
AGGRESSIVE_RETRYABLE = DEFAULT_RETRYABLE + (ReproError,)

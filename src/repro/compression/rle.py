"""Run-Length Encoding (RLE).

Consecutive equal value-tuples collapse into (start, length, code) runs.
Best for sorted or temporally clustered data. Kernels work per run:
each run contributes a single scaled segment.
"""

from __future__ import annotations

import numpy as np

from .colgroup import ColumnGroup, build_dictionary, code_bytes_for

_RUN_FIXED_BYTES = 8  # uint32 start + uint32 length


class RLEGroup(ColumnGroup):
    """Dictionary + run list for a set of columns."""

    scheme = "rle"

    def __init__(
        self,
        col_indices: np.ndarray,
        num_rows: int,
        dictionary: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        run_codes: np.ndarray,
    ):
        super().__init__(col_indices, num_rows)
        self.dictionary = np.asarray(dictionary, dtype=np.float64)
        self.starts = np.asarray(starts, dtype=np.uint32)
        self.lengths = np.asarray(lengths, dtype=np.uint32)
        self.run_codes = np.asarray(run_codes, dtype=np.int64)
        if not (len(self.starts) == len(self.lengths) == len(self.run_codes)):
            raise ValueError("run arrays must have equal length")

    @classmethod
    def encode(cls, col_indices: np.ndarray, panel: np.ndarray) -> "RLEGroup":
        """Encode a dense (n, k) panel into runs."""
        panel = np.asarray(panel, dtype=np.float64)
        dictionary, codes = build_dictionary(panel)
        n = len(codes)
        starts, lengths, run_codes = [], [], []
        i = 0
        while i < n:
            j = i + 1
            while j < n and codes[j] == codes[i]:
                j += 1
            starts.append(i)
            lengths.append(j - i)
            run_codes.append(codes[i])
            i = j
        return cls(
            col_indices,
            n,
            dictionary,
            np.array(starts),
            np.array(lengths),
            np.array(run_codes),
        )

    @property
    def num_runs(self) -> int:
        return len(self.starts)

    @property
    def num_distinct(self) -> int:
        return len(self.dictionary)

    def matvec_add(self, v: np.ndarray, out: np.ndarray) -> None:
        dict_products = self.dictionary @ v[self.col_indices]
        for start, length, code in zip(self.starts, self.lengths, self.run_codes):
            out[start : start + length] += dict_products[code]

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        sums = np.zeros(self.num_distinct)
        for start, length, code in zip(self.starts, self.lengths, self.run_codes):
            sums[code] += u[start : start + length].sum()
        return sums @ self.dictionary

    def colsums(self) -> np.ndarray:
        counts = np.zeros(self.num_distinct)
        for length, code in zip(self.lengths, self.run_codes):
            counts[code] += float(length)
        return counts @ self.dictionary

    def decompress(self) -> np.ndarray:
        out = np.empty((self.num_rows, self.num_cols))
        for start, length, code in zip(self.starts, self.lengths, self.run_codes):
            out[start : start + length] = self.dictionary[code]
        return out

    def map_values(self, fn) -> "RLEGroup":
        # Runs cover every row, so mapping the dictionary is exact for
        # any elementwise fn — cardinality-sized work.
        return RLEGroup(
            self.col_indices,
            self.num_rows,
            fn(self.dictionary),
            self.starts,
            self.lengths,
            self.run_codes,
        )

    def compressed_bytes(self) -> int:
        per_run = _RUN_FIXED_BYTES + code_bytes_for(self.num_distinct)
        return self.dictionary.nbytes + self.num_runs * per_run


def count_runs(column: np.ndarray) -> int:
    """Number of maximal equal-value runs in a 1-D array."""
    if len(column) == 0:
        return 0
    return int(1 + np.count_nonzero(column[1:] != column[:-1]))


def estimated_rle_bytes(n: int, k: int, num_distinct: int, num_runs: int) -> int:
    """Planner estimate of RLE storage for an (n, k) panel."""
    per_run = _RUN_FIXED_BYTES + code_bytes_for(num_distinct)
    return num_distinct * k * 8 + num_runs * per_run

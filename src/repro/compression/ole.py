"""Offset-List Encoding (OLE).

For each distinct value-tuple, store the sorted list of row offsets where
it occurs. Rows absent from every offset list carry the group's
``default`` tuple (all-zero after encoding, so sparse columns need no
lists at all). Kernels iterate per dictionary entry: scatter-add for
matrix-vector, gather-sum for vector-matrix, with a closed-form default
contribution covering the unlisted rows. Keeping the default explicit is
what lets elementwise maps like ``X + c`` rewrite the dictionary and the
default in O(cardinality) instead of decompressing.
"""

from __future__ import annotations

import numpy as np

from .colgroup import ColumnGroup, build_dictionary

_OFFSET_BYTES = 4  # uint32 row offsets


class OLEGroup(ColumnGroup):
    """Dictionary + per-entry offset lists for a set of columns."""

    scheme = "ole"

    def __init__(
        self,
        col_indices: np.ndarray,
        num_rows: int,
        dictionary: np.ndarray,
        offset_lists: list[np.ndarray],
        default: np.ndarray | None = None,
    ):
        super().__init__(col_indices, num_rows)
        self.dictionary = np.asarray(dictionary, dtype=np.float64)
        self.offset_lists = [
            np.asarray(o, dtype=np.uint32) for o in offset_lists
        ]
        if len(self.offset_lists) != len(self.dictionary):
            raise ValueError("one offset list required per dictionary entry")
        if default is None:
            default = np.zeros(self.num_cols)
        self.default = np.asarray(default, dtype=np.float64).reshape(-1)
        if len(self.default) != self.num_cols:
            raise ValueError(
                f"default tuple has {len(self.default)} values for "
                f"{self.num_cols} columns"
            )

    @classmethod
    def encode(cls, col_indices: np.ndarray, panel: np.ndarray) -> "OLEGroup":
        """Encode a dense (n, k) panel; all-zero tuples are left implicit."""
        panel = np.asarray(panel, dtype=np.float64)
        dictionary, codes = build_dictionary(panel)
        keep = [i for i, row in enumerate(dictionary) if np.any(row != 0.0)]
        kept_dict = dictionary[keep] if keep else np.empty((0, panel.shape[1]))
        offset_lists = [np.where(codes == i)[0] for i in keep]
        return cls(col_indices, panel.shape[0], kept_dict, offset_lists)

    @property
    def num_distinct(self) -> int:
        return len(self.dictionary)

    def matvec_add(self, v: np.ndarray, out: np.ndarray) -> None:
        v_part = v[self.col_indices]
        base = float(self.default @ v_part)
        if base != 0.0:
            out += base
        for entry, offsets in zip(self.dictionary, self.offset_lists):
            out[offsets] += float(entry @ v_part) - base

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        result = np.zeros(self.num_cols)
        if np.any(self.default != 0.0):
            result += float(u.sum()) * self.default
        for entry, offsets in zip(self.dictionary, self.offset_lists):
            result += u[offsets].sum() * (entry - self.default)
        return result

    def colsums(self) -> np.ndarray:
        result = self.num_rows * self.default.copy()
        for entry, offsets in zip(self.dictionary, self.offset_lists):
            result += len(offsets) * (entry - self.default)
        return result

    def decompress(self) -> np.ndarray:
        out = np.broadcast_to(self.default, (self.num_rows, self.num_cols))
        out = np.array(out)
        for entry, offsets in zip(self.dictionary, self.offset_lists):
            out[offsets] = entry
        return out

    def map_values(self, fn) -> "OLEGroup":
        new_dict = (
            fn(self.dictionary)
            if self.num_distinct
            else self.dictionary.copy()
        )
        return OLEGroup(
            self.col_indices,
            self.num_rows,
            new_dict,
            self.offset_lists,
            default=fn(self.default),
        )

    def compressed_bytes(self) -> int:
        offsets = sum(len(o) for o in self.offset_lists)
        return (
            self.dictionary.nbytes
            + self.default.nbytes
            + offsets * _OFFSET_BYTES
        )


def estimated_ole_bytes(
    n: int, k: int, num_distinct: int, nonzero_rows: int
) -> int:
    """Planner estimate of OLE storage for an (n, k) panel."""
    return num_distinct * k * 8 + nonzero_rows * _OFFSET_BYTES

"""Column groups: the unit of compression in CLA.

A compressed matrix is a set of column groups, each covering a disjoint
subset of columns with one encoding scheme. Every group supports the
linear-algebra kernels (matrix-vector, vector-matrix, column sums)
*directly on the compressed representation* — decompression is only for
fallback and testing. This mirrors the column-group architecture of
Compressed Linear Algebra (Elgohary et al., PVLDB 2016), which the
tutorial surveys as the storage advance for declarative ML.
"""

from __future__ import annotations

import numpy as np

from ..errors import CompressionError


class ColumnGroup:
    """Base class: a set of columns under one encoding."""

    #: scheme tag used by the planner and tests
    scheme: str = "base"

    def __init__(self, col_indices: np.ndarray, num_rows: int):
        self.col_indices = np.asarray(col_indices, dtype=np.int64)
        if len(self.col_indices) == 0:
            raise CompressionError("column group must cover at least one column")
        self.num_rows = int(num_rows)

    @property
    def num_cols(self) -> int:
        return len(self.col_indices)

    # -- kernels ---------------------------------------------------------
    def matvec_add(self, v: np.ndarray, out: np.ndarray) -> None:
        """out += X[:, cols] @ v[cols] (contribution of this group)."""
        raise NotImplementedError

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """X[:, cols].T @ u, one value per covered column."""
        raise NotImplementedError

    def colsums(self) -> np.ndarray:
        """Column sums over this group's columns."""
        raise NotImplementedError

    def decompress(self) -> np.ndarray:
        """Dense (num_rows, num_cols) array for the covered columns."""
        raise NotImplementedError

    def map_values(self, fn) -> "ColumnGroup":
        """New group with ``fn`` applied to every logical cell.

        ``fn`` must be a vectorized elementwise map (numpy ufunc or
        equivalent). Dictionary-coded schemes apply it to the dictionary
        (cardinality-sized work) instead of the n-row panel, which is
        what makes scalar ops on compressed matrices cheap.
        """
        raise NotImplementedError

    def compressed_bytes(self) -> int:
        """Actual storage footprint of the encoded representation."""
        raise NotImplementedError

    def dense_bytes(self) -> int:
        return self.num_rows * self.num_cols * 8

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(cols={self.col_indices.tolist()}, "
            f"rows={self.num_rows})"
        )


class UncompressedGroup(ColumnGroup):
    """Pass-through group for incompressible columns."""

    scheme = "uncompressed"

    def __init__(self, col_indices: np.ndarray, values: np.ndarray):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise CompressionError("uncompressed group expects a 2-D panel")
        super().__init__(col_indices, values.shape[0])
        if values.shape[1] != self.num_cols:
            raise CompressionError(
                f"panel has {values.shape[1]} columns for {self.num_cols} indices"
            )
        self.values = values

    def matvec_add(self, v: np.ndarray, out: np.ndarray) -> None:
        out += self.values @ v[self.col_indices]

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        return self.values.T @ u

    def colsums(self) -> np.ndarray:
        return self.values.sum(axis=0)

    def decompress(self) -> np.ndarray:
        return self.values

    def map_values(self, fn) -> "UncompressedGroup":
        return UncompressedGroup(self.col_indices, fn(self.values))

    def compressed_bytes(self) -> int:
        return self.values.nbytes


def build_dictionary(
    panel: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct row-tuples of a (n, k) panel.

    Returns:
        (dictionary, codes): dictionary is (K, k) distinct tuples in
        first-occurrence order; codes is (n,) int indices into it.
    """
    n = panel.shape[0]
    mapping: dict[bytes, int] = {}
    codes = np.empty(n, dtype=np.int64)
    rows: list[np.ndarray] = []
    for i in range(n):
        key = panel[i].tobytes()
        code = mapping.get(key)
        if code is None:
            code = len(rows)
            mapping[key] = code
            rows.append(panel[i])
        codes[i] = code
    return np.array(rows, dtype=np.float64).reshape(len(rows), -1), codes


def code_bytes_for(num_distinct: int) -> int:
    """Bytes per code needed to address a dictionary of the given size."""
    if num_distinct <= 256:
        return 1
    if num_distinct <= 65536:
        return 2
    return 4

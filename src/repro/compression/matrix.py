"""The compressed matrix: column groups + linear-algebra kernels.

A :class:`CompressedMatrix` behaves like a read-only dense matrix for the
operations iterative ML needs — ``X @ v``, ``X.T @ u``, ``X.T @ X``,
column sums — all executed directly on the compressed column groups.

Kernels can execute per-column-group partials concurrently on the shared
cost-aware worker pool (:mod:`repro.runtime.parallel`): pass
``parallel=True`` to :meth:`CompressedMatrix.compress` / the constructor,
or attach a context with :meth:`CompressedMatrix.set_parallel`. Small
matrices still dispatch serially through the cost gate.
"""

from __future__ import annotations

import time
from functools import partial

import numpy as np

from ..errors import CompressionError
from ..runtime.parallel import ParallelContext, resolve_context
from .colgroup import ColumnGroup
from .planner import CompressionPlan, build_groups, plan_matrix


def _group_matvec(v: np.ndarray, n_rows: int, group: ColumnGroup) -> np.ndarray:
    """One group's contribution to X @ v, as a private partial vector."""
    out = np.zeros(n_rows)
    group.matvec_add(v, out)
    return out


def _group_rmatvec(u: np.ndarray, group: ColumnGroup) -> np.ndarray:
    return group.rmatvec(u)


def _group_colsums(group: ColumnGroup) -> np.ndarray:
    return group.colsums()


class CompressedMatrix:
    """A matrix stored as compressed column groups."""

    def __init__(
        self,
        shape: tuple[int, int],
        groups: list[ColumnGroup],
        plan: CompressionPlan | None = None,
        parallel: bool | ParallelContext = False,
    ):
        self.shape = shape
        self.groups = groups
        self.plan = plan
        self._parallel_ctx = resolve_context(parallel)
        covered = sorted(
            int(c) for g in groups for c in g.col_indices
        )
        if covered != list(range(shape[1])):
            raise CompressionError(
                f"groups must cover each of {shape[1]} columns exactly once, "
                f"got {covered}"
            )

    @classmethod
    def compress(
        cls,
        X: np.ndarray,
        sample_fraction: float = 0.05,
        exact: bool = False,
        cocode: bool = True,
        seed: int = 0,
        parallel: bool | ParallelContext = False,
    ) -> "CompressedMatrix":
        """Plan and encode a dense matrix."""
        from ..obs import get_registry, span

        X = np.asarray(X, dtype=np.float64)
        with span(
            "compression.compress", rows=X.shape[0], cols=X.shape[1]
        ) as compress_span:
            plan = plan_matrix(X, sample_fraction, exact, cocode, seed)
            matrix = cls(
                X.shape, build_groups(X, plan), plan, parallel=parallel
            )
        registry = get_registry()
        registry.inc("compression.compressions")
        registry.inc("compression.compressed_bytes", matrix.compressed_bytes)
        registry.inc("compression.dense_bytes", matrix.dense_bytes)
        compress_span.set("ratio", matrix.compression_ratio)
        return matrix

    # ------------------------------------------------------------------
    # Parallel dispatch
    # ------------------------------------------------------------------
    def set_parallel(
        self, parallel: bool | ParallelContext = True
    ) -> "CompressedMatrix":
        """Enable/disable concurrent per-group kernels (chainable)."""
        self._parallel_ctx = resolve_context(parallel)
        return self

    @property
    def parallel_context(self) -> ParallelContext | None:
        return self._parallel_ctx

    def _kernel_cost(self) -> float:
        """Flops-equivalents of one matvec-shaped pass: 2 * nnz-dense."""
        return 2.0 * self.shape[0] * self.shape[1]

    def _ctx_for(self, min_groups: int = 2) -> ParallelContext | None:
        ctx = self._parallel_ctx
        if ctx is None or len(self.groups) < min_groups:
            return None
        return ctx

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def compressed_bytes(self) -> int:
        return sum(g.compressed_bytes() for g in self.groups)

    @property
    def dense_bytes(self) -> int:
        return self.shape[0] * self.shape[1] * 8

    @property
    def compression_ratio(self) -> float:
        """Dense size over compressed size (higher is better)."""
        return self.dense_bytes / max(self.compressed_bytes, 1)

    @property
    def memory_bytes(self) -> int:
        """Uniform operand-protocol alias for :attr:`compressed_bytes`."""
        return self.compressed_bytes

    def schemes(self) -> dict[str, int]:
        """Count of groups per encoding scheme."""
        out: dict[str, int] = {}
        for g in self.groups:
            out[g.scheme] = out.get(g.scheme, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Elementwise value rewrites (no decompression)
    # ------------------------------------------------------------------
    def map_values(self, fn) -> "CompressedMatrix":
        """New compressed matrix with ``fn`` applied to every cell.

        Dictionary-coded groups rewrite their dictionaries (and, for
        OLE, the default tuple), so the work is proportional to the
        compressed size, not n x d. ``fn`` must be a vectorized
        elementwise map.
        """
        return CompressedMatrix(
            self.shape,
            [g.map_values(fn) for g in self.groups],
            self.plan,
            parallel=self._parallel_ctx or False,
        )

    def scale(self, alpha: float) -> "CompressedMatrix":
        """alpha * X by rewriting column-group values."""
        alpha = float(alpha)
        return self.map_values(lambda values: values * alpha)

    def add_scalar(self, c: float) -> "CompressedMatrix":
        """X + c by rewriting column-group values."""
        c = float(c)
        return self.map_values(lambda values: values + c)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """X @ v on the compressed representation.

        Parallel path: each group produces a private partial output
        vector; partials reduce in group order, so the result matches
        the serial path to float-addition reassociation (<= 1e-9).
        """
        v = np.asarray(v, dtype=np.float64).reshape(-1)
        if len(v) != self.shape[1]:
            raise CompressionError(
                f"vector length {len(v)} != num columns {self.shape[1]}"
            )
        ctx = self._ctx_for()
        if ctx is not None and ctx.should_parallelize(
            len(self.groups), self._kernel_cost(), site="cla.matvec"
        ):
            partials = ctx.pmap(
                partial(_group_matvec, v, self.shape[0]),
                self.groups,
                cost_hint=self._kernel_cost(),
                site="cla.matvec",
            )
            out = np.zeros(self.shape[0])
            for p in partials:
                out += p
            return out
        # Serial kernel: accumulate in place — cheaper than the per-group
        # partial-vector formulation the parallel path needs.
        start = time.perf_counter() if ctx is not None else 0.0
        out = np.zeros(self.shape[0])
        for g in self.groups:
            g.matvec_add(v, out)
        if ctx is not None:
            ctx.note_serial(
                "cla.matvec", len(self.groups), time.perf_counter() - start
            )
        return out

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """X.T @ u on the compressed representation.

        Groups cover disjoint columns, so the parallel path scatters
        independent per-group results and is bitwise-identical to serial.
        """
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if len(u) != self.shape[0]:
            raise CompressionError(
                f"vector length {len(u)} != num rows {self.shape[0]}"
            )
        out = np.zeros(self.shape[1])
        ctx = self._ctx_for()
        if ctx is not None:
            partials = ctx.pmap(
                partial(_group_rmatvec, u),
                self.groups,
                cost_hint=self._kernel_cost(),
                site="cla.rmatvec",
            )
            for g, values in zip(self.groups, partials):
                out[g.col_indices] = values
            return out
        for g in self.groups:
            out[g.col_indices] = g.rmatvec(u)
        return out

    def colsums(self) -> np.ndarray:
        out = np.zeros(self.shape[1])
        ctx = self._ctx_for()
        if ctx is not None:
            partials = ctx.pmap(
                _group_colsums,
                self.groups,
                cost_hint=float(self.shape[0]) * self.shape[1],
                site="cla.colsums",
            )
            for g, values in zip(self.groups, partials):
                out[g.col_indices] = values
            return out
        for g in self.groups:
            out[g.col_indices] = g.colsums()
        return out

    def _gram_column(self, j: int) -> np.ndarray:
        unit = np.zeros(self.shape[1])
        unit[j] = 1.0
        return self.rmatvec(self.matvec(unit))

    def gram(self) -> np.ndarray:
        """X.T @ X via d compressed matrix-vector products (TSMM).

        Column-at-a-time: for each column j, X.T @ X[:, j]. Exploits the
        compressed matvec for each unit vector, avoiding decompression.
        The parallel path fans out over columns; the inner kernels nest
        serially (the pool's re-entrancy guard), so per-column results
        are identical to the serial path.
        """
        d = self.shape[1]
        out = np.empty((d, d))
        ctx = self._parallel_ctx
        if ctx is not None and d > 1:
            columns = ctx.pmap(
                self._gram_column,
                range(d),
                cost_hint=2.0 * d * self._kernel_cost(),
                site="cla.tsmm",
            )
            for j, col in enumerate(columns):
                out[:, j] = col
        else:
            for j in range(d):
                out[:, j] = self._gram_column(j)
        # Symmetrize against floating-point asymmetry.
        return (out + out.T) / 2.0

    def tsmm(self) -> np.ndarray:
        """Transpose-self matrix multiply — alias for :meth:`gram`."""
        return self.gram()

    def matmat(self, B: np.ndarray) -> np.ndarray:
        """X @ B for a dense (d, k) right operand, one matvec per column."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim == 1:
            return self.matvec(B)
        out = np.empty((self.shape[0], B.shape[1]))
        for j in range(B.shape[1]):
            out[:, j] = self.matvec(B[:, j])
        return out

    def rmatmat(self, U: np.ndarray) -> np.ndarray:
        """X.T @ U for a dense (n, k) left-transposed operand."""
        U = np.asarray(U, dtype=np.float64)
        if U.ndim == 1:
            return self.rmatvec(U)
        out = np.empty((self.shape[1], U.shape[1]))
        for j in range(U.shape[1]):
            out[:, j] = self.rmatvec(U[:, j])
        return out

    def rowsums(self) -> np.ndarray:
        """Row sums, computed as X @ ones on the compressed form."""
        return self.matvec(np.ones(self.shape[1]))

    def sum(self) -> float:
        """Sum of every cell."""
        return float(self.colsums().sum())

    def sq_sum(self) -> float:
        """Sum of squared cells (dictionary-sized rewrite + colsums)."""
        return float(self.map_values(np.square).colsums().sum())

    def __matmul__(self, other):
        other = np.asarray(other, dtype=np.float64)
        return self.matvec(other) if other.ndim == 1 else self.matmat(other)

    def decompress(self) -> np.ndarray:
        """Full dense reconstruction (testing / fallback only)."""
        out = np.empty(self.shape)
        for g in self.groups:
            out[:, g.col_indices] = g.decompress()
        return out

    def to_dense(self) -> np.ndarray:
        """Uniform operand-protocol alias for :meth:`decompress`."""
        return self.decompress()

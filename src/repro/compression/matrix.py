"""The compressed matrix: column groups + linear-algebra kernels.

A :class:`CompressedMatrix` behaves like a read-only dense matrix for the
operations iterative ML needs — ``X @ v``, ``X.T @ u``, ``X.T @ X``,
column sums — all executed directly on the compressed column groups.
"""

from __future__ import annotations

import numpy as np

from ..errors import CompressionError
from .colgroup import ColumnGroup
from .planner import CompressionPlan, build_groups, plan_matrix


class CompressedMatrix:
    """A matrix stored as compressed column groups."""

    def __init__(
        self,
        shape: tuple[int, int],
        groups: list[ColumnGroup],
        plan: CompressionPlan | None = None,
    ):
        self.shape = shape
        self.groups = groups
        self.plan = plan
        covered = sorted(
            int(c) for g in groups for c in g.col_indices
        )
        if covered != list(range(shape[1])):
            raise CompressionError(
                f"groups must cover each of {shape[1]} columns exactly once, "
                f"got {covered}"
            )

    @classmethod
    def compress(
        cls,
        X: np.ndarray,
        sample_fraction: float = 0.05,
        exact: bool = False,
        cocode: bool = True,
        seed: int = 0,
    ) -> "CompressedMatrix":
        """Plan and encode a dense matrix."""
        X = np.asarray(X, dtype=np.float64)
        plan = plan_matrix(X, sample_fraction, exact, cocode, seed)
        return cls(X.shape, build_groups(X, plan), plan)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def compressed_bytes(self) -> int:
        return sum(g.compressed_bytes() for g in self.groups)

    @property
    def dense_bytes(self) -> int:
        return self.shape[0] * self.shape[1] * 8

    @property
    def compression_ratio(self) -> float:
        """Dense size over compressed size (higher is better)."""
        return self.dense_bytes / max(self.compressed_bytes, 1)

    def schemes(self) -> dict[str, int]:
        """Count of groups per encoding scheme."""
        out: dict[str, int] = {}
        for g in self.groups:
            out[g.scheme] = out.get(g.scheme, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """X @ v on the compressed representation."""
        v = np.asarray(v, dtype=np.float64).reshape(-1)
        if len(v) != self.shape[1]:
            raise CompressionError(
                f"vector length {len(v)} != num columns {self.shape[1]}"
            )
        out = np.zeros(self.shape[0])
        for g in self.groups:
            g.matvec_add(v, out)
        return out

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """X.T @ u on the compressed representation."""
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if len(u) != self.shape[0]:
            raise CompressionError(
                f"vector length {len(u)} != num rows {self.shape[0]}"
            )
        out = np.zeros(self.shape[1])
        for g in self.groups:
            out[g.col_indices] = g.rmatvec(u)
        return out

    def colsums(self) -> np.ndarray:
        out = np.zeros(self.shape[1])
        for g in self.groups:
            out[g.col_indices] = g.colsums()
        return out

    def gram(self) -> np.ndarray:
        """X.T @ X via d compressed matrix-vector products.

        Column-at-a-time: for each column j, X.T @ X[:, j]. Exploits the
        compressed matvec for each unit vector, avoiding decompression.
        """
        d = self.shape[1]
        out = np.empty((d, d))
        unit = np.zeros(d)
        for j in range(d):
            unit[j] = 1.0
            out[:, j] = self.rmatvec(self.matvec(unit))
            unit[j] = 0.0
        # Symmetrize against floating-point asymmetry.
        return (out + out.T) / 2.0

    def decompress(self) -> np.ndarray:
        """Full dense reconstruction (testing / fallback only)."""
        out = np.empty(self.shape)
        for g in self.groups:
            out[:, g.col_indices] = g.decompress()
        return out

"""The compress-or-not execution decision.

CLA does not compress unconditionally: compression pays off when (a) the
estimated ratio clears a threshold and (b) the workload re-reads the
matrix enough times to amortize the encoding cost, or (c) the dense
matrix simply does not fit the memory budget. This module makes that
decision from sampled statistics, before any encoding happens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompressionError
from .planner import plan_matrix

#: below this estimated ratio, compression is considered not worthwhile
DEFAULT_MIN_RATIO = 1.2


@dataclass
class ExecutionDecision:
    """Outcome of the compress-or-not analysis."""

    compress: bool
    estimated_ratio: float
    estimated_compressed_bytes: int
    dense_bytes: int
    fits_dense: bool
    fits_compressed: bool
    reason: str


def decide_compression(
    X: np.ndarray,
    memory_budget_bytes: int | None = None,
    iterations: int = 10,
    sample_fraction: float = 0.05,
    min_ratio: float = DEFAULT_MIN_RATIO,
    seed: int = 0,
) -> ExecutionDecision:
    """Decide whether to compress ``X`` for an iterative workload.

    Args:
        memory_budget_bytes: available memory; None means unconstrained.
        iterations: how many passes the workload will make over X. A
            single-pass workload never amortizes encoding cost.
        min_ratio: minimum estimated compression ratio to bother.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise CompressionError(f"expected a 2-D matrix, got shape {X.shape}")
    if iterations < 1:
        raise CompressionError("iterations must be >= 1")

    plan = plan_matrix(X, sample_fraction=sample_fraction, seed=seed)
    estimated_bytes = sum(p.estimated_bytes for p in plan.columns)
    dense_bytes = X.nbytes
    ratio = dense_bytes / max(estimated_bytes, 1)

    fits_dense = (
        memory_budget_bytes is None or dense_bytes <= memory_budget_bytes
    )
    fits_compressed = (
        memory_budget_bytes is None or estimated_bytes <= memory_budget_bytes
    )

    if not fits_dense and fits_compressed:
        return ExecutionDecision(
            compress=True,
            estimated_ratio=ratio,
            estimated_compressed_bytes=estimated_bytes,
            dense_bytes=dense_bytes,
            fits_dense=fits_dense,
            fits_compressed=fits_compressed,
            reason=(
                f"dense ({dense_bytes:,} B) exceeds the budget but the "
                f"compressed estimate ({estimated_bytes:,} B) fits"
            ),
        )
    if not fits_dense and not fits_compressed:
        return ExecutionDecision(
            compress=ratio >= min_ratio,
            estimated_ratio=ratio,
            estimated_compressed_bytes=estimated_bytes,
            dense_bytes=dense_bytes,
            fits_dense=fits_dense,
            fits_compressed=fits_compressed,
            reason=(
                "neither representation fits the budget; compression "
                "still reduces spill volume"
                if ratio >= min_ratio
                else "neither fits and compression would not help"
            ),
        )
    if iterations < 2:
        return ExecutionDecision(
            compress=False,
            estimated_ratio=ratio,
            estimated_compressed_bytes=estimated_bytes,
            dense_bytes=dense_bytes,
            fits_dense=fits_dense,
            fits_compressed=fits_compressed,
            reason="single-pass workload cannot amortize encoding cost",
        )
    if ratio < min_ratio:
        return ExecutionDecision(
            compress=False,
            estimated_ratio=ratio,
            estimated_compressed_bytes=estimated_bytes,
            dense_bytes=dense_bytes,
            fits_dense=fits_dense,
            fits_compressed=fits_compressed,
            reason=(
                f"estimated ratio {ratio:.2f}x below threshold "
                f"{min_ratio:.2f}x"
            ),
        )
    return ExecutionDecision(
        compress=True,
        estimated_ratio=ratio,
        estimated_compressed_bytes=estimated_bytes,
        dense_bytes=dense_bytes,
        fits_dense=fits_dense,
        fits_compressed=fits_compressed,
        reason=(
            f"ratio {ratio:.2f}x over {iterations} iterations amortizes "
            "encoding"
        ),
    )

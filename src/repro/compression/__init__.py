"""Compressed Linear Algebra (CLA).

Column-group compression (OLE, RLE, DDC, uncompressed fallback) with
linear-algebra kernels that run directly on the compressed form, plus a
sampling-based planner for scheme selection and co-coding.
"""

from .colgroup import ColumnGroup, UncompressedGroup, build_dictionary
from .ddc import DDCGroup, estimated_ddc_bytes
from .estimators import (
    ColumnStats,
    estimate_column_stats,
    estimate_distinct,
    estimate_joint_distinct,
    exact_column_stats,
)
from .hybrid import DEFAULT_MIN_RATIO, ExecutionDecision, decide_compression
from .matrix import CompressedMatrix
from .ole import OLEGroup, estimated_ole_bytes
from .planner import (
    ColumnPlan,
    CompressionPlan,
    build_groups,
    plan_column,
    plan_matrix,
)
from .rle import RLEGroup, count_runs, estimated_rle_bytes

__all__ = [
    "ColumnGroup",
    "ColumnPlan",
    "ColumnStats",
    "CompressedMatrix",
    "CompressionPlan",
    "DEFAULT_MIN_RATIO",
    "ExecutionDecision",
    "DDCGroup",
    "OLEGroup",
    "RLEGroup",
    "UncompressedGroup",
    "build_dictionary",
    "build_groups",
    "count_runs",
    "decide_compression",
    "estimate_column_stats",
    "estimate_distinct",
    "estimate_joint_distinct",
    "estimated_ddc_bytes",
    "estimated_ole_bytes",
    "estimated_rle_bytes",
    "exact_column_stats",
    "plan_column",
    "plan_matrix",
]

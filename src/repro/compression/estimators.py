"""Sampling-based statistics estimators for the compression planner.

Compressing a column requires knowing its distinct count, run count, and
nonzero count — but scanning every column fully to decide *whether* to
compress defeats the purpose. The planner therefore estimates these from
a small row sample, the way CLA does: a Chao-style distinct-count
estimator (hapaxes indicate unseen values) and linear scale-up for runs
and nonzeros.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompressionError
from .rle import count_runs


@dataclass
class ColumnStats:
    """Estimated statistics of one column (or column tuple)."""

    num_rows: int
    num_distinct: int
    num_runs: int
    num_nonzero: int

    @property
    def distinct_ratio(self) -> float:
        return self.num_distinct / max(self.num_rows, 1)


def estimate_distinct(sample: np.ndarray, total_rows: int) -> int:
    """Chao (1984) lower-bound distinct-count estimator, scaled.

    d_hat = d_sample + f1^2 / (2 * f2), where f1/f2 are the counts of
    values seen exactly once/twice in the sample. Capped at total_rows.
    """
    values, counts = np.unique(sample, return_counts=True)
    d_sample = len(values)
    if len(sample) >= total_rows:
        return d_sample
    f1 = int(np.sum(counts == 1))
    f2 = int(np.sum(counts == 2))
    if f1 == 0:
        estimate = d_sample
    elif f2 == 0:
        estimate = d_sample + f1 * (f1 - 1) / 2.0
    else:
        estimate = d_sample + (f1 * f1) / (2.0 * f2)
    return int(min(max(estimate, d_sample), total_rows))


def estimate_column_stats(
    column: np.ndarray,
    sample_fraction: float = 0.05,
    min_sample: int = 100,
    seed: int = 0,
) -> ColumnStats:
    """Estimate a column's stats from a contiguous-start row sample.

    Runs must be estimated from *contiguous* rows (random rows destroy
    run structure), so the sample is a random contiguous window; distinct
    and nonzero counts are robust to that choice.
    """
    if not 0 < sample_fraction <= 1:
        raise CompressionError("sample_fraction must be in (0, 1]")
    n = len(column)
    size = min(n, max(min_sample, int(n * sample_fraction)))
    if size >= n:
        sample = column
    else:
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, n - size + 1))
        sample = column[start : start + size]

    scale = n / len(sample)
    distinct = estimate_distinct(sample, n)
    runs_sample = count_runs(sample)
    # Runs scale linearly but can never exceed n or fall below distinct.
    runs = int(min(n, max(distinct, round(runs_sample * scale))))
    nnz = int(min(n, round(np.count_nonzero(sample) * scale)))
    return ColumnStats(
        num_rows=n, num_distinct=distinct, num_runs=runs, num_nonzero=nnz
    )


def exact_column_stats(column: np.ndarray) -> ColumnStats:
    """Exact stats (the oracle the planner's estimates are tested against)."""
    return ColumnStats(
        num_rows=len(column),
        num_distinct=len(np.unique(column)),
        num_runs=count_runs(column),
        num_nonzero=int(np.count_nonzero(column)),
    )


def estimate_joint_distinct(
    columns: list[np.ndarray],
    sample_fraction: float = 0.05,
    min_sample: int = 100,
    seed: int = 0,
) -> int:
    """Estimated distinct count of the row-tuples over several columns.

    Used by co-coding: combining columns pays off only when their joint
    cardinality stays far below the product of the individual ones.
    """
    if not columns:
        raise CompressionError("need at least one column")
    n = len(columns[0])
    size = min(n, max(min_sample, int(n * sample_fraction)))
    rng = np.random.default_rng(seed)
    if size >= n:
        idx = np.arange(n)
    else:
        idx = rng.choice(n, size=size, replace=False)
    stacked = np.column_stack([c[idx] for c in columns])
    tuples = np.array([row.tobytes() for row in stacked])
    return estimate_distinct(tuples, n)

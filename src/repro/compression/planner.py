"""Compression planning: scheme selection and co-coding.

For each column the planner estimates (from a sample) the storage each
encoding would need and picks the cheapest; columns whose best estimate
beats dense storage are compression candidates, the rest stay in an
uncompressed group. Candidate columns are then greedily *co-coded*:
pairs whose estimated joint dictionary stays small share one group,
amortizing the per-row code storage — CLA's grouping heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CompressionError
from ..obs import get_registry, span
from .colgroup import ColumnGroup, UncompressedGroup
from .ddc import DDCGroup, estimated_ddc_bytes
from .estimators import (
    ColumnStats,
    estimate_column_stats,
    estimate_joint_distinct,
    exact_column_stats,
)
from .ole import OLEGroup, estimated_ole_bytes
from .rle import RLEGroup, estimated_rle_bytes


@dataclass
class ColumnPlan:
    """Planner decision for one column."""

    index: int
    stats: ColumnStats
    scheme: str
    estimated_bytes: int
    dense_bytes: int

    @property
    def estimated_ratio(self) -> float:
        return self.dense_bytes / max(self.estimated_bytes, 1)


@dataclass
class CompressionPlan:
    """Full plan: per-column decisions plus final grouping."""

    columns: list[ColumnPlan]
    groups: list[tuple[str, list[int]]] = field(default_factory=list)

    def scheme_of(self, col: int) -> str:
        return self.columns[col].scheme


def plan_column(
    column: np.ndarray,
    sample_fraction: float = 0.05,
    exact: bool = False,
    seed: int = 0,
    index: int = 0,
) -> ColumnPlan:
    """Choose the best scheme for a single column from estimated stats."""
    stats = (
        exact_column_stats(column)
        if exact
        else estimate_column_stats(column, sample_fraction, seed=seed)
    )
    n = stats.num_rows
    candidates = {
        "ddc": estimated_ddc_bytes(n, 1, stats.num_distinct),
        "ole": estimated_ole_bytes(n, 1, stats.num_distinct, stats.num_nonzero),
        "rle": estimated_rle_bytes(n, 1, stats.num_distinct, stats.num_runs),
        "uncompressed": n * 8,
    }
    scheme = min(candidates, key=candidates.__getitem__)
    return ColumnPlan(
        index=index,
        stats=stats,
        scheme=scheme,
        estimated_bytes=candidates[scheme],
        dense_bytes=n * 8,
    )


def plan_matrix(
    X: np.ndarray,
    sample_fraction: float = 0.05,
    exact: bool = False,
    cocode: bool = True,
    seed: int = 0,
) -> CompressionPlan:
    """Plan every column, then group compressible columns.

    Grouping: uncompressed columns form one group; each RLE/OLE column is
    its own group (their row layouts rarely align across columns); DDC
    columns are greedily pair-merged when the estimated joint cardinality
    keeps the combined dictionary cheaper than separate groups.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] == 0:
        raise CompressionError(f"expected a non-empty 2-D matrix, got {X.shape}")
    with span(
        "compression.plan_matrix",
        rows=X.shape[0],
        cols=X.shape[1],
        sample_fraction=sample_fraction,
        exact=exact,
    ) as plan_span:
        plans = [
            plan_column(X[:, j], sample_fraction, exact, seed=seed + j, index=j)
            for j in range(X.shape[1])
        ]

        groups: list[tuple[str, list[int]]] = []
        uncompressed = [p.index for p in plans if p.scheme == "uncompressed"]
        if uncompressed:
            groups.append(("uncompressed", uncompressed))
        for p in plans:
            if p.scheme in ("ole", "rle"):
                groups.append((p.scheme, [p.index]))

        ddc_cols = [p for p in plans if p.scheme == "ddc"]
        if cocode and len(ddc_cols) > 1:
            groups.extend(
                ("ddc", members)
                for members in _cocode_ddc(X, ddc_cols, sample_fraction, seed)
            )
        else:
            groups.extend(("ddc", [p.index]) for p in ddc_cols)
        _publish_plan(plans, groups, sample_fraction, exact, plan_span)
        return CompressionPlan(columns=plans, groups=groups)


def _publish_plan(
    plans: list[ColumnPlan],
    groups: list[tuple[str, list[int]]],
    sample_fraction: float,
    exact: bool,
    plan_span,
) -> None:
    """Record sampling knobs + chosen encodings in the metrics registry."""
    registry = get_registry()
    registry.inc("compression.plans")
    registry.inc("compression.columns_planned", len(plans))
    registry.set_gauge(
        "compression.sample_fraction", 1.0 if exact else sample_fraction
    )
    for p in plans:
        registry.inc(f"compression.scheme.{p.scheme}")
    registry.inc("compression.groups", len(groups))
    cocoded = sum(
        len(members) for scheme, members in groups
        if scheme == "ddc" and len(members) > 1
    )
    registry.inc("compression.cocoded_columns", cocoded)
    plan_span.set("groups", len(groups))
    plan_span.set("cocoded_columns", cocoded)
    plan_span.set(
        "schemes", ",".join(sorted({scheme for scheme, _ in groups}))
    )


def _cocode_ddc(
    X: np.ndarray,
    plans: list[ColumnPlan],
    sample_fraction: float,
    seed: int,
) -> list[list[int]]:
    """Greedy pairwise merging of DDC columns.

    Start with singleton groups sorted by cardinality; repeatedly try to
    merge the two cheapest groups — accept if the estimated co-coded size
    undercuts the sum of the separate sizes.
    """
    n = X.shape[0]
    # (member column indices, estimated distinct, estimated bytes)
    groups = [
        ([p.index], p.stats.num_distinct, p.estimated_bytes) for p in plans
    ]
    groups.sort(key=lambda g: g[1])

    merged = True
    while merged and len(groups) > 1:
        merged = False
        for i in range(len(groups) - 1):
            a, b = groups[i], groups[i + 1]
            members = a[0] + b[0]
            joint = estimate_joint_distinct(
                [X[:, j] for j in members], sample_fraction, seed=seed
            )
            combined = estimated_ddc_bytes(n, len(members), joint)
            if combined < a[2] + b[2]:
                groups[i : i + 2] = [(members, joint, combined)]
                merged = True
                break
    return [g[0] for g in groups]


def build_groups(X: np.ndarray, plan: CompressionPlan) -> list[ColumnGroup]:
    """Materialize the encoded column groups for a plan."""
    X = np.asarray(X, dtype=np.float64)
    built: list[ColumnGroup] = []
    for scheme, members in plan.groups:
        cols = np.asarray(members, dtype=np.int64)
        panel = X[:, cols]
        if scheme == "uncompressed":
            built.append(UncompressedGroup(cols, panel))
        elif scheme == "ddc":
            built.append(DDCGroup.encode(cols, panel))
        elif scheme == "ole":
            built.append(OLEGroup.encode(cols, panel))
        elif scheme == "rle":
            built.append(RLEGroup.encode(cols, panel))
        else:
            raise CompressionError(f"unknown scheme {scheme!r}")
    return built

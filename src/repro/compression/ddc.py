"""Dense Dictionary Coding (DDC).

A dictionary of distinct value-tuples plus a dense per-row code array.
Best when column cardinality is low relative to row count. Kernels
aggregate over *codes* (cardinality-sized work) instead of rows wherever
possible: vector-matrix becomes a bincount over codes followed by a
dictionary-sized product.
"""

from __future__ import annotations

import numpy as np

from .colgroup import ColumnGroup, build_dictionary, code_bytes_for


class DDCGroup(ColumnGroup):
    """Dictionary + dense codes encoding for a set of columns."""

    scheme = "ddc"

    def __init__(
        self,
        col_indices: np.ndarray,
        dictionary: np.ndarray,
        codes: np.ndarray,
    ):
        super().__init__(col_indices, len(codes))
        self.dictionary = np.asarray(dictionary, dtype=np.float64)
        width = code_bytes_for(len(self.dictionary))
        dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32}[width]
        self.codes = np.asarray(codes).astype(dtype)

    @classmethod
    def encode(cls, col_indices: np.ndarray, panel: np.ndarray) -> "DDCGroup":
        """Encode a dense (n, k) panel."""
        dictionary, codes = build_dictionary(np.asarray(panel, dtype=np.float64))
        return cls(col_indices, dictionary, codes)

    @property
    def num_distinct(self) -> int:
        return len(self.dictionary)

    def matvec_add(self, v: np.ndarray, out: np.ndarray) -> None:
        # Pre-aggregate the dictionary: one product per distinct tuple,
        # then a gather over codes.
        dict_products = self.dictionary @ v[self.col_indices]
        out += dict_products[self.codes]

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        # Sum u per code (cardinality-sized), then scale dictionary rows.
        sums = np.bincount(self.codes, weights=u, minlength=self.num_distinct)
        return sums @ self.dictionary

    def colsums(self) -> np.ndarray:
        counts = np.bincount(self.codes, minlength=self.num_distinct)
        return counts @ self.dictionary

    def decompress(self) -> np.ndarray:
        return self.dictionary[self.codes]

    def map_values(self, fn) -> "DDCGroup":
        # Codes cover every row, so mapping the dictionary is exact for
        # any elementwise fn — cardinality-sized work.
        return DDCGroup(self.col_indices, fn(self.dictionary), self.codes)

    def compressed_bytes(self) -> int:
        return self.dictionary.nbytes + self.codes.nbytes


def estimated_ddc_bytes(n: int, k: int, num_distinct: int) -> int:
    """Planner estimate of DDC storage for an (n, k) panel."""
    return num_distinct * k * 8 + n * code_bytes_for(num_distinct)

"""Synthetic workload generators.

Every experiment in the benchmark suite is driven by data whose *statistics*
are controlled here: tuple ratios and feature ratios for factorized
learning, column cardinality and run structure for compression, class
separation for learners. Real datasets used by the surveyed papers are
proprietary; these generators synthesize workloads with the same
behaviour-driving statistics (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError


def make_regression(
    n_samples: int = 200,
    n_features: int = 10,
    noise: float = 0.1,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linear regression task: returns (X, y, true_weights)."""
    _check_sizes(n_samples, n_features)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n_samples, n_features))
    w = rng.standard_normal(n_features)
    y = X @ w + noise * rng.standard_normal(n_samples)
    return X, y, w


def make_grid_regression(
    n_samples: int = 200,
    n_features: int = 10,
    noise: float = 0.1,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Regression task on the exact-arithmetic grid: returns (X, y).

    Features and targets are quantized to the lattice
    ``{m * 2**-8 : |m| <= 2**12}`` (see
    :func:`repro.incremental.snap_to_grid`), on which every gram /
    cofactor partial sum is exactly representable in float64 — the
    workload the incremental-maintenance bit-parity gates run on.
    """
    from ..incremental.aggregates import snap_to_grid

    X, y, _ = make_regression(
        n_samples=n_samples, n_features=n_features, noise=noise, seed=seed
    )
    return snap_to_grid(X), snap_to_grid(y)


def make_classification(
    n_samples: int = 200,
    n_features: int = 10,
    separation: float = 2.0,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Two-Gaussian binary classification task: returns (X, y) with y in {0, 1}."""
    _check_sizes(n_samples, n_features)
    rng = np.random.default_rng(seed)
    n_pos = n_samples // 2
    n_neg = n_samples - n_pos
    direction = rng.standard_normal(n_features)
    direction /= np.linalg.norm(direction)
    shift = 0.5 * separation * direction
    X_neg = rng.standard_normal((n_neg, n_features)) - shift
    X_pos = rng.standard_normal((n_pos, n_features)) + shift
    X = np.vstack([X_neg, X_pos])
    y = np.concatenate([np.zeros(n_neg), np.ones(n_pos)]).astype(np.int64)
    order = rng.permutation(n_samples)
    return X[order], y[order]


def make_blobs(
    n_samples: int = 300,
    n_features: int = 2,
    centers: int = 3,
    cluster_std: float = 0.5,
    spread: float = 5.0,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs for clustering: returns (X, labels)."""
    _check_sizes(n_samples, n_features)
    if centers < 1:
        raise ReproError("centers must be >= 1")
    rng = np.random.default_rng(seed)
    centroids = spread * rng.standard_normal((centers, n_features))
    labels = rng.integers(0, centers, size=n_samples)
    X = centroids[labels] + cluster_std * rng.standard_normal(
        (n_samples, n_features)
    )
    return X, labels


# ----------------------------------------------------------------------
# Compression-oriented matrices
# ----------------------------------------------------------------------
def make_low_cardinality_matrix(
    n_rows: int = 1000,
    n_cols: int = 10,
    cardinality: int = 10,
    skew: float = 1.1,
    seed: int | None = 0,
) -> np.ndarray:
    """Matrix whose columns draw from few distinct values with Zipf skew.

    This is the regime where CLA's dictionary encodings (DDC) shine.
    """
    _check_sizes(n_rows, n_cols)
    if cardinality < 1:
        raise ReproError("cardinality must be >= 1")
    rng = np.random.default_rng(seed)
    out = np.empty((n_rows, n_cols))
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    probs = ranks ** (-skew)
    probs /= probs.sum()
    for j in range(n_cols):
        values = np.sort(rng.standard_normal(cardinality) * 10.0)
        out[:, j] = rng.choice(values, size=n_rows, p=probs)
    return out


def make_run_matrix(
    n_rows: int = 1000,
    n_cols: int = 10,
    mean_run_length: int = 50,
    cardinality: int = 5,
    seed: int | None = 0,
) -> np.ndarray:
    """Matrix whose columns are long runs of repeated values (RLE regime)."""
    _check_sizes(n_rows, n_cols)
    if mean_run_length < 1:
        raise ReproError("mean_run_length must be >= 1")
    rng = np.random.default_rng(seed)
    out = np.empty((n_rows, n_cols))
    for j in range(n_cols):
        values = rng.standard_normal(cardinality) * 10.0
        row = 0
        while row < n_rows:
            run = 1 + rng.poisson(mean_run_length - 1)
            value = values[rng.integers(cardinality)]
            out[row : row + run, j] = value
            row += run
    return out


def make_sparse_matrix(
    n_rows: int = 1000,
    n_cols: int = 10,
    density: float = 0.05,
    seed: int | None = 0,
) -> np.ndarray:
    """Dense array with the given fraction of nonzeros (OLE/sparse regime)."""
    _check_sizes(n_rows, n_cols)
    if not 0.0 <= density <= 1.0:
        raise ReproError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    mask = rng.random((n_rows, n_cols)) < density
    values = rng.standard_normal((n_rows, n_cols))
    return np.where(mask, values, 0.0)


# ----------------------------------------------------------------------
# Normalized (star-schema) datasets for factorized learning
# ----------------------------------------------------------------------
@dataclass
class StarSchema:
    """A two-table star schema: entity table S joined to attribute table R.

    The materialized design matrix is ``[S, R[fk]]`` with shape
    (n_s, d_s + d_r). ``tuple_ratio`` (n_s / n_r) and ``feature_ratio``
    (d_r / d_s) are the statistics that govern when factorized execution
    wins (Morpheus) and when the join can be skipped (Hamlet).
    """

    S: np.ndarray  # (n_s, d_s) entity-table features
    fk: np.ndarray  # (n_s,) foreign keys into R
    R: np.ndarray  # (n_r, d_r) attribute-table features
    y: np.ndarray  # (n_s,) target

    @property
    def tuple_ratio(self) -> float:
        return len(self.S) / len(self.R)

    @property
    def feature_ratio(self) -> float:
        return self.R.shape[1] / max(self.S.shape[1], 1)

    def materialize(self) -> np.ndarray:
        """The denormalized design matrix [S, R[fk]]."""
        return np.hstack([self.S, self.R[self.fk]])


def make_star_schema(
    n_s: int = 1000,
    n_r: int = 100,
    d_s: int = 5,
    d_r: int = 20,
    task: str = "regression",
    noise: float = 0.1,
    fk_importance: float = 1.0,
    seed: int | None = 0,
) -> StarSchema:
    """Generate a two-table normalized dataset.

    Args:
        n_s / n_r: entity / attribute table row counts.
        d_s / d_r: entity / attribute feature counts.
        task: ``"regression"`` (continuous y) or ``"classification"``
            (y in {0, 1} via a logistic model).
        fk_importance: scales the true weights on R-side features; at 0
            the foreign-key features carry no signal (the Hamlet regime
            where avoiding the join is safe).
    """
    _check_sizes(n_s, d_s)
    _check_sizes(n_r, d_r)
    if task not in ("regression", "classification"):
        raise ReproError(f"unknown task {task!r}")
    rng = np.random.default_rng(seed)
    S = rng.standard_normal((n_s, d_s))
    R = rng.standard_normal((n_r, d_r))
    fk = rng.integers(0, n_r, size=n_s)
    w_s = rng.standard_normal(d_s)
    w_r = fk_importance * rng.standard_normal(d_r)
    signal = S @ w_s + R[fk] @ w_r
    if task == "regression":
        y = signal + noise * rng.standard_normal(n_s)
    else:
        p = 1.0 / (1.0 + np.exp(-signal))
        y = (rng.random(n_s) < p).astype(np.int64)
    return StarSchema(S=S, fk=fk, R=R, y=y)


def make_multi_star_schema(
    n_s: int,
    dims: list[tuple[int, int]],
    noise: float = 0.1,
    seed: int | None = 0,
) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray], np.ndarray, int]:
    """Star schema with several dimension tables.

    Args:
        dims: list of (n_r, d_r) per dimension table.

    Returns:
        (S, fks, Rs, y, d_s) where fks[i] indexes Rs[i].
    """
    rng = np.random.default_rng(seed)
    d_s = 3
    S = rng.standard_normal((n_s, d_s))
    fks, Rs = [], []
    signal = S @ rng.standard_normal(d_s)
    for n_r, d_r in dims:
        _check_sizes(n_r, d_r)
        R = rng.standard_normal((n_r, d_r))
        fk = rng.integers(0, n_r, size=n_s)
        signal = signal + R[fk] @ rng.standard_normal(d_r)
        fks.append(fk)
        Rs.append(R)
    y = signal + noise * rng.standard_normal(n_s)
    return S, fks, Rs, y, d_s


def make_categorical(
    n_samples: int = 500,
    n_features: int = 4,
    cardinality: int = 5,
    n_classes: int = 2,
    signal: float = 2.0,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Categorical classification data (for Naive Bayes / one-hot paths).

    Each class prefers different category values with strength ``signal``.
    Returns (X of shape (n, k) object dtype, y int labels).
    """
    _check_sizes(n_samples, n_features)
    rng = np.random.default_rng(seed)
    y = rng.integers(0, n_classes, size=n_samples)
    X = np.empty((n_samples, n_features), dtype=object)
    for j in range(n_features):
        # Per-class preference distribution over category values.
        prefs = rng.random((n_classes, cardinality)) ** signal
        prefs /= prefs.sum(axis=1, keepdims=True)
        for c in range(n_classes):
            rows = np.where(y == c)[0]
            codes = rng.choice(cardinality, size=len(rows), p=prefs[c])
            for r, code in zip(rows, codes):
                X[r, j] = f"v{code}"
    return X, y.astype(np.int64)


def _check_sizes(n: int, d: int) -> None:
    if n < 1 or d < 1:
        raise ReproError(f"sizes must be positive, got n={n}, d={d}")

"""Synthetic dataset and workload generators (see DESIGN.md, Substitutions)."""

from .generators import (
    StarSchema,
    make_blobs,
    make_categorical,
    make_classification,
    make_grid_regression,
    make_low_cardinality_matrix,
    make_multi_star_schema,
    make_regression,
    make_run_matrix,
    make_sparse_matrix,
    make_star_schema,
)

__all__ = [
    "StarSchema",
    "make_blobs",
    "make_categorical",
    "make_classification",
    "make_grid_regression",
    "make_low_cardinality_matrix",
    "make_multi_star_schema",
    "make_regression",
    "make_run_matrix",
    "make_sparse_matrix",
    "make_star_schema",
]

"""Random forests: bagged CART trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, Regressor, check_X, check_X_y
from .tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest:
    """Shared bagging machinery over the CART trees."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        max_features: float | None = 0.7,
        seed: int | None = 0,
    ):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed

    def _tree(self):
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_trees < 1:
            raise ModelError("n_trees must be >= 1")
        if self.max_features is not None and not 0.0 < self.max_features <= 1.0:
            raise ModelError("max_features must be in (0, 1]")
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        k = d if self.max_features is None else max(1, round(d * self.max_features))

        self.trees_ = []
        self.feature_sets_ = []
        for _ in range(self.n_trees):
            rows = rng.integers(0, n, size=n)  # bootstrap sample
            features = np.sort(rng.choice(d, size=k, replace=False))
            tree = self._tree()
            tree.fit(X[np.ix_(rows, features)], y[rows])
            self.trees_.append(tree)
            self.feature_sets_.append(features)
        self.n_features_ = d

    def _tree_predictions(self, X: np.ndarray) -> list[np.ndarray]:
        self._check_fitted()
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ModelError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return [
            tree.predict(X[:, features])
            for tree, features in zip(self.trees_, self.feature_sets_)
        ]


class RandomForestClassifier(_BaseForest, Classifier):
    """Majority-vote ensemble of CART classifiers."""

    def fit(self, X: np.ndarray, y: np.ndarray | None = None):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self._fit_forest(X, y)
        return self

    def _tree(self) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
        )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Vote fractions per class, shape (n, k)."""
        votes = self._tree_predictions(X)
        index = {c: i for i, c in enumerate(self.classes_)}
        out = np.zeros((len(votes[0]), len(self.classes_)))
        for prediction in votes:
            for row, label in enumerate(prediction):
                out[row, index[label]] += 1.0
        return out / len(votes)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


class RandomForestRegressor(_BaseForest, Regressor):
    """Mean ensemble of CART regressors."""

    def fit(self, X: np.ndarray, y: np.ndarray | None = None):
        X, y = check_X_y(X, y)
        self._fit_forest(X, y.astype(np.float64))
        return self

    def _tree(self) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.mean(np.vstack(self._tree_predictions(X)), axis=0)

"""Feature preprocessing: scaling, encoding, discretization, splitting.

These transformers implement the feature-transformation catalogue the
tutorial's lifecycle section covers (the `transform` primitives of
SystemML / MADlib): standardization, min-max scaling, one-hot (dummy)
coding, and equi-width binning. All follow the fit/transform protocol.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError
from .base import Estimator, check_X


class StandardScaler(Estimator):
    """Standardize features to zero mean and unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "StandardScaler":
        X = check_X(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            # Constant columns get scale 1 so they pass through unchanged.
            self.scale_ = np.where(std > 0, std, 1.0)
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return check_X(X) * self.scale_ + self.mean_


class MinMaxScaler(Estimator):
    """Scale features to the [0, 1] range."""

    def __init__(self):
        pass

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "MinMaxScaler":
        X = check_X(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.span_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (check_X(X) - self.min_) / self.span_

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class OneHotEncoder(Estimator):
    """Dummy-code each categorical column into indicator columns.

    Input is an (n, k) array of arbitrary category values (strings or
    ints); output is a dense float (n, sum of cardinalities) matrix.
    Unknown categories at transform time raise unless ``ignore_unknown``.
    """

    def __init__(self, ignore_unknown: bool = False):
        self.ignore_unknown = ignore_unknown

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "OneHotEncoder":
        X = _as_2d_object(X)
        self.categories_ = [
            np.array(sorted(set(X[:, j].tolist())), dtype=object)
            for j in range(X.shape[1])
        ]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = _as_2d_object(X)
        if X.shape[1] != len(self.categories_):
            raise ModelError(
                f"expected {len(self.categories_)} columns, got {X.shape[1]}"
            )
        blocks = []
        for j, cats in enumerate(self.categories_):
            index = {c: i for i, c in enumerate(cats)}
            block = np.zeros((len(X), len(cats)))
            for row, value in enumerate(X[:, j]):
                pos = index.get(value)
                if pos is None:
                    if not self.ignore_unknown:
                        raise ModelError(
                            f"unknown category {value!r} in column {j}"
                        )
                    continue
                block[row, pos] = 1.0
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.empty((len(X), 0))

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    @property
    def output_width_(self) -> int:
        self._check_fitted()
        return int(sum(len(c) for c in self.categories_))


class KBinsDiscretizer(Estimator):
    """Equi-width binning of numeric features into ordinal codes."""

    def __init__(self, n_bins: int = 5):
        self.n_bins = n_bins

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "KBinsDiscretizer":
        if self.n_bins < 2:
            raise ModelError("n_bins must be >= 2")
        X = check_X(X)
        lo = X.min(axis=0)
        hi = X.max(axis=0)
        # Each column's edges exclude the outer bounds: k-1 interior cuts.
        self.edges_ = [
            np.linspace(lo[j], hi[j], self.n_bins + 1)[1:-1]
            for j in range(X.shape[1])
        ]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        out = np.empty_like(X)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return out

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class FeatureHasher(Estimator):
    """The hashing trick: categorical values to a fixed-width space.

    High-cardinality categorical features (user ids, URLs) make one-hot
    widths unbounded; hashing maps each (column, value) pair to one of
    ``n_features`` buckets with a sign hash, keeping the width fixed and
    requiring no fitted vocabulary — the standard large-scale-ML
    encoding. Stateless: fit is a no-op, transforms never see unknowns.
    """

    def __init__(self, n_features: int = 64, signed: bool = True):
        self.n_features = n_features
        self.signed = signed

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "FeatureHasher":
        if self.n_features < 1:
            raise ModelError("n_features must be >= 1")
        self.fitted_ = True  # stateless, but keep the protocol
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = _as_2d_object(X)
        out = np.zeros((len(X), self.n_features))
        for row in range(len(X)):
            for j in range(X.shape[1]):
                token = f"{j}={X[row, j]}"
                code = _stable_hash(token)
                bucket = code % self.n_features
                sign = 1.0 if not self.signed or (code >> 31) & 1 == 0 else -1.0
                out[row, bucket] += sign
        return out

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


def _stable_hash(token: str) -> int:
    """Deterministic 64-bit FNV-1a (process-independent, unlike hash())."""
    h = 0xCBF29CE484222325
    for byte in token.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def add_intercept(X: np.ndarray) -> np.ndarray:
    """Design matrix with a leading all-ones column."""
    X = check_X(X)
    return np.hstack([np.ones((len(X), 1)), X])


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ModelError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ModelError(f"X has {len(X)} rows but y has {len(y)}")
    n = len(X)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ModelError("split would leave an empty training set")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def _as_2d_object(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=object)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ModelError(f"categorical input must be 1-D or 2-D, got {X.ndim}-D")
    return X


__all__ = [
    "KBinsDiscretizer",
    "MinMaxScaler",
    "NotFittedError",
    "OneHotEncoder",
    "StandardScaler",
    "add_intercept",
    "train_test_split",
]

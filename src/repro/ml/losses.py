"""Loss functions for generalized linear models.

Each loss exposes ``value`` and ``gradient`` on the full design matrix, and
``pointwise_gradient`` on a single example (used by the in-database
incremental-gradient UDA, which consumes one tuple at a time). Labels for
classification losses are in {-1, +1} unless noted.
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Base class for GLM losses: L(w) = (1/n) sum_i l(x_i, y_i; w)."""

    def value(self, X: np.ndarray, y: np.ndarray, w: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, X: np.ndarray, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def pointwise_gradient(
        self, x: np.ndarray, y: float, w: np.ndarray
    ) -> np.ndarray:
        """Gradient contribution of a single example (not averaged)."""
        raise NotImplementedError


class SquaredLoss(Loss):
    """Least squares: l = 0.5 * (x.w - y)^2."""

    def value(self, X, y, w):
        r = X @ w - y
        return 0.5 * float(r @ r) / len(y)

    def gradient(self, X, y, w):
        return X.T @ (X @ w - y) / len(y)

    def pointwise_gradient(self, x, y, w):
        return (float(x @ w) - y) * x


class LogisticLoss(Loss):
    """Logistic regression with labels in {-1, +1}: l = log(1 + exp(-y x.w))."""

    def value(self, X, y, w):
        margins = y * (X @ w)
        # log(1+exp(-m)) computed stably for both signs of m.
        return float(np.mean(np.logaddexp(0.0, -margins)))

    def gradient(self, X, y, w):
        margins = y * (X @ w)
        coeff = -y * _sigmoid(-margins)
        return X.T @ coeff / len(y)

    def pointwise_gradient(self, x, y, w):
        margin = y * float(x @ w)
        return -y * _sigmoid(-margin) * x


class HingeLoss(Loss):
    """Linear SVM hinge loss: l = max(0, 1 - y x.w). Subgradient used."""

    def value(self, X, y, w):
        return float(np.mean(np.maximum(0.0, 1.0 - y * (X @ w))))

    def gradient(self, X, y, w):
        active = (y * (X @ w)) < 1.0
        if not active.any():
            return np.zeros_like(w)
        return -(X[active].T @ y[active]) / len(y)

    def pointwise_gradient(self, x, y, w):
        if y * float(x @ w) < 1.0:
            return -y * x
        return np.zeros_like(w)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Public stable sigmoid (vectorized)."""
    return _sigmoid(np.asarray(z, dtype=np.float64))

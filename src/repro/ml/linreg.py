"""Linear least-squares models.

Three solvers are provided because different parts of the reproduction
need different ones: the closed-form normal equations (used by factorized
learning, whose crossprod ``X'X`` is what Morpheus factorizes), a QR
solver (whose factor reuse is what Columbus exploits), and batch gradient
descent (the iterative pattern the declarative-ML compiler optimizes).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Regressor, check_X, check_X_y
from .losses import SquaredLoss
from .optim import OptimResult, gradient_descent


class LinearRegression(Regressor):
    """Ordinary (optionally ridge-regularized) least squares.

    Args:
        solver: ``"normal"`` (Gram-matrix normal equations), ``"qr"``
            (Householder QR), or ``"gd"`` (batch gradient descent).
        l2: ridge penalty coefficient (0 = OLS).
        fit_intercept: learn an unpenalized intercept term.
        max_iter / tol / learning_rate: GD solver controls.
    """

    def __init__(
        self,
        solver: str = "normal",
        l2: float = 0.0,
        fit_intercept: bool = True,
        max_iter: int = 500,
        tol: float = 1e-8,
        learning_rate: float = 1.0,
    ):
        self.solver = solver
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.learning_rate = learning_rate

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "LinearRegression":
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        Xd = self._design(X)
        if self.solver == "normal":
            w = self._solve_normal(Xd, y)
        elif self.solver == "qr":
            w = self._solve_qr(Xd, y)
        elif self.solver == "gd":
            result = self._solve_gd(Xd, y)
            w = result.weights
            self.optim_result_ = result
        else:
            raise ModelError(f"unknown solver {self.solver!r}")
        self._unpack(w)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        return X @ self.coef_ + self.intercept_

    # ------------------------------------------------------------------
    def _design(self, X: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([np.ones((len(X), 1)), X])
        return X

    def _penalty_matrix(self, d: int) -> np.ndarray:
        P = self.l2 * np.eye(d)
        if self.fit_intercept:
            P[0, 0] = 0.0  # never penalize the intercept
        return P

    def _solve_normal(self, Xd: np.ndarray, y: np.ndarray) -> np.ndarray:
        gram = Xd.T @ Xd + self._penalty_matrix(Xd.shape[1])
        rhs = Xd.T @ y
        try:
            return np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            # Rank-deficient Gram matrix: fall back to the pseudo-inverse.
            return np.linalg.pinv(gram) @ rhs

    def _solve_qr(self, Xd: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.l2 > 0:
            # Ridge via the augmented system [X; sqrt(l2) I] w = [y; 0].
            d = Xd.shape[1]
            aug = np.sqrt(self._penalty_matrix(d))
            Xd = np.vstack([Xd, aug])
            y = np.concatenate([y, np.zeros(d)])
        Q, R = np.linalg.qr(Xd)
        rhs = Q.T @ y
        try:
            return np.linalg.solve(R, rhs)
        except np.linalg.LinAlgError:
            return np.linalg.lstsq(R, rhs, rcond=None)[0]

    def _solve_gd(self, Xd: np.ndarray, y: np.ndarray) -> OptimResult:
        return gradient_descent(
            SquaredLoss(),
            Xd,
            y,
            l2=self.l2,
            learning_rate=self.learning_rate,
            max_iter=self.max_iter,
            tol=self.tol,
            warn_on_cap=False,
        )

    def _unpack(self, w: np.ndarray) -> None:
        if self.fit_intercept:
            self.intercept_ = float(w[0])
            self.coef_ = w[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = w


class Ridge(LinearRegression):
    """Ridge regression: least squares with an L2 penalty."""

    def __init__(
        self,
        l2: float = 1.0,
        solver: str = "normal",
        fit_intercept: bool = True,
        max_iter: int = 500,
        tol: float = 1e-8,
        learning_rate: float = 1.0,
    ):
        super().__init__(
            solver=solver,
            l2=l2,
            fit_intercept=fit_intercept,
            max_iter=max_iter,
            tol=tol,
            learning_rate=learning_rate,
        )

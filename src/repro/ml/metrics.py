"""Evaluation metrics for regression and classification."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ModelError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if len(y_true) == 0:
        raise ModelError("cannot score empty label vectors")
    return y_true, y_pred


# ----------------------------------------------------------------------
# Regression
# ----------------------------------------------------------------------
def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    diff = y_true.astype(float) - y_pred.astype(float)
    return float(np.mean(diff * diff))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true.astype(float) - y_pred.astype(float))))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination. 1.0 is perfect; 0.0 matches the mean."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    y_true = y_true.astype(float)
    residual = float(np.sum((y_true - y_pred.astype(float)) ** 2))
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(matrix, classes): matrix[i, j] counts true class i predicted as j."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {c: i for i, c in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix, classes


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, positive
) -> tuple[float, float, float]:
    """Binary precision/recall/F1 for the given positive label."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    tp = float(np.sum((y_pred == positive) & (y_true == positive)))
    fp = float(np.sum((y_pred == positive) & (y_true != positive)))
    fn = float(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def log_loss(y_true: np.ndarray, probabilities: np.ndarray) -> float:
    """Binary cross-entropy; ``probabilities`` are P(class == 1), y in {0,1}."""
    y_true = np.asarray(y_true, dtype=float)
    p = np.clip(np.asarray(probabilities, dtype=float), 1e-12, 1 - 1e-12)
    if y_true.shape != p.shape:
        raise ModelError(
            f"shape mismatch: y_true {y_true.shape} vs probabilities {p.shape}"
        )
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))

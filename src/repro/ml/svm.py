"""Linear support vector machine trained with the Pegasos subgradient method."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, as_pm_one, check_X, check_X_y


class LinearSVM(Classifier):
    """Soft-margin linear SVM (hinge loss + L2) via Pegasos SGD.

    The regularization parameter follows the Pegasos convention:
    minimize (l2/2)||w||^2 + (1/n) sum max(0, 1 - y x.w).
    """

    def __init__(
        self,
        l2: float = 0.01,
        epochs: int = 50,
        fit_intercept: bool = True,
        seed: int | None = 0,
    ):
        self.l2 = l2
        self.epochs = epochs
        self.fit_intercept = fit_intercept
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "LinearSVM":
        X, y_raw = check_X_y(X, y)
        if self.l2 <= 0:
            raise ModelError("l2 must be positive for Pegasos")
        y_pm, self.classes_ = as_pm_one(y_raw)
        if self.fit_intercept:
            X = np.hstack([np.ones((len(X), 1)), X])
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (self.l2 * t)
                margin = y_pm[i] * float(X[i] @ w)
                w *= 1.0 - eta * self.l2
                if margin < 1.0:
                    w += eta * y_pm[i] * X[i]
        if self.fit_intercept:
            self.intercept_ = float(w[0])
            self.coef_ = w[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = w
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        margins = self.decision_function(X)
        return np.where(margins >= 0, self.classes_[1], self.classes_[0])

"""ML algorithm library: the workloads the data-management layers serve.

GLMs (linear/logistic/SVM) with batch, stochastic, and closed-form
solvers; k-means; Naive Bayes; PCA; plus losses, optimizers,
preprocessing, and metrics. The algorithms are written in the vectorized
style that declarative ML compilers target, so the same models run
directly on numpy, on the compiled DSL, over normalized (factorized)
data, and inside the relational engine.
"""

from .base import Classifier, Estimator, Regressor, as_pm_one, check_X, check_X_y
from .kmeans import KMeans
from .linreg import LinearRegression, Ridge
from .logreg import LogisticRegression
from .losses import HingeLoss, LogisticLoss, Loss, SquaredLoss, sigmoid
from .metrics import (
    accuracy_score,
    confusion_matrix,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
    root_mean_squared_error,
)
from .naive_bayes import CategoricalNB, GaussianNB
from .optim import OptimResult, gradient_descent, sgd
from .pca import PCA
from .preprocessing import (
    FeatureHasher,
    KBinsDiscretizer,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    add_intercept,
    train_test_split,
)
from .boosting import GradientBoostingRegressor
from .forest import RandomForestClassifier, RandomForestRegressor
from .svm import LinearSVM
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "PCA",
    "CategoricalNB",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "Classifier",
    "Estimator",
    "FeatureHasher",
    "GaussianNB",
    "GradientBoostingRegressor",
    "HingeLoss",
    "KBinsDiscretizer",
    "KMeans",
    "LinearRegression",
    "LinearSVM",
    "LogisticLoss",
    "LogisticRegression",
    "Loss",
    "MinMaxScaler",
    "OneHotEncoder",
    "OptimResult",
    "Regressor",
    "Ridge",
    "SquaredLoss",
    "StandardScaler",
    "accuracy_score",
    "add_intercept",
    "as_pm_one",
    "check_X",
    "check_X_y",
    "confusion_matrix",
    "gradient_descent",
    "log_loss",
    "mean_absolute_error",
    "mean_squared_error",
    "precision_recall_f1",
    "r2_score",
    "root_mean_squared_error",
    "sgd",
    "sigmoid",
    "train_test_split",
]

"""Binary logistic regression with batch GD, SGD, or Newton solvers."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, as_pm_one, check_X, check_X_y
from .losses import LogisticLoss, sigmoid
from .optim import gradient_descent, sgd


class LogisticRegression(Classifier):
    """Binary logistic regression.

    Labels may be any two distinct values; internally they map to
    {-1, +1} with ``classes_[1]`` as the positive class.

    Args:
        solver: ``"gd"`` (batch gradient descent with line search),
            ``"sgd"`` (mini-batch SGD), or ``"newton"`` (IRLS).
        l2: L2 regularization strength.
        warm_start: if true, reuse ``coef_``/``intercept_`` from a prior
            fit as the starting point (the optimization the tutorial's
            model-selection section highlights for hyperparameter paths).
    """

    def __init__(
        self,
        solver: str = "gd",
        l2: float = 0.0,
        fit_intercept: bool = True,
        learning_rate: float = 1.0,
        max_iter: int = 200,
        tol: float = 1e-7,
        batch_size: int = 32,
        warm_start: bool = False,
        seed: int | None = 0,
    ):
        self.solver = solver
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.batch_size = batch_size
        self.warm_start = warm_start
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "LogisticRegression":
        X, y_raw = check_X_y(X, y)
        y_pm, self.classes_ = as_pm_one(y_raw)
        Xd = self._design(X)
        w0 = self._initial_weights(Xd.shape[1])

        if self.solver == "gd":
            result = gradient_descent(
                LogisticLoss(),
                Xd,
                y_pm,
                w0=w0,
                l2=self.l2,
                learning_rate=self.learning_rate,
                max_iter=self.max_iter,
                tol=self.tol,
                warn_on_cap=False,
            )
            w = result.weights
            self.optim_result_ = result
        elif self.solver == "sgd":
            result = sgd(
                LogisticLoss(),
                Xd,
                y_pm,
                w0=w0,
                l2=self.l2,
                learning_rate=self.learning_rate,
                epochs=self.max_iter,
                batch_size=self.batch_size,
                tol=self.tol,
                seed=self.seed,
            )
            w = result.weights
            self.optim_result_ = result
        elif self.solver == "newton":
            w, iters = self._newton(Xd, y_pm, w0)
            self.n_iter_ = iters
        else:
            raise ModelError(f"unknown solver {self.solver!r}")

        if self.fit_intercept:
            self.intercept_ = float(w[0])
            self.coef_ = w[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = w
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margins x.w + b (positive favors ``classes_[1]``)."""
        self._check_fitted()
        X = check_X(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(class == classes_[1]) per row."""
        return sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        p = self.predict_proba(X)
        return np.where(p >= 0.5, self.classes_[1], self.classes_[0])

    # ------------------------------------------------------------------
    def _design(self, X: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([np.ones((len(X), 1)), X])
        return X

    def _initial_weights(self, d: int) -> np.ndarray | None:
        if not (self.warm_start and self.is_fitted and hasattr(self, "coef_")):
            return None
        if len(self.coef_) + int(self.fit_intercept) != d:
            return None  # dimensionality changed; cold start
        if self.fit_intercept:
            return np.concatenate([[self.intercept_], self.coef_])
        return self.coef_.copy()

    def _newton(
        self, Xd: np.ndarray, y: np.ndarray, w0: np.ndarray | None
    ) -> tuple[np.ndarray, int]:
        """Iteratively reweighted least squares."""
        n, d = Xd.shape
        w = np.zeros(d) if w0 is None else w0.copy()
        loss = LogisticLoss()
        previous = loss.value(Xd, y, w) + 0.5 * self.l2 * float(w @ w)
        it = 0
        for it in range(1, self.max_iter + 1):
            p = sigmoid(Xd @ w)  # P(label=+1) under current model
            weights = p * (1.0 - p)
            grad = Xd.T @ (p - (y + 1) / 2.0) / n + self.l2 * w
            hessian = (Xd.T * weights) @ Xd / n + self.l2 * np.eye(d)
            # Damping keeps the Hessian invertible on separable data.
            hessian += 1e-10 * np.eye(d)
            try:
                step = np.linalg.solve(hessian, grad)
            except np.linalg.LinAlgError:
                step = np.linalg.pinv(hessian) @ grad
            w = w - step
            current = loss.value(Xd, y, w) + 0.5 * self.l2 * float(w @ w)
            if abs(previous - current) / max(abs(previous), 1e-12) < self.tol:
                break
            previous = current
        return w, it

"""Gradient-boosted regression trees (least-squares boosting).

Stagewise additive modeling: each round fits a shallow CART regressor to
the current residuals and adds it with a shrinkage factor. Completes the
tree-ensemble family (bagging in :mod:`.forest`, boosting here) that
in-database ML suites serve alongside GLMs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Regressor, check_X, check_X_y
from .tree import DecisionTreeRegressor


class GradientBoostingRegressor(Regressor):
    """L2 gradient boosting over shallow CART trees.

    Args:
        n_stages: boosting rounds.
        learning_rate: shrinkage applied to each stage's contribution.
        max_depth: per-stage tree depth (shallow trees boost best).
        subsample: optional row fraction per stage (stochastic boosting).
    """

    def __init__(
        self,
        n_stages: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed: int | None = 0,
    ):
        self.n_stages = n_stages
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray | None = None):
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        if self.n_stages < 1:
            raise ModelError("n_stages must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ModelError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ModelError("subsample must be in (0, 1]")
        rng = np.random.default_rng(self.seed)
        n = len(y)

        self.init_ = float(y.mean())
        prediction = np.full(n, self.init_)
        self.stages_: list[DecisionTreeRegressor] = []
        self.train_loss_: list[float] = []
        for _ in range(self.n_stages):
            residual = y - prediction
            if self.subsample < 1.0:
                take = max(2, int(round(n * self.subsample)))
                rows = rng.choice(n, size=take, replace=False)
            else:
                rows = np.arange(n)
            stage = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            stage.fit(X[rows], residual[rows])
            prediction = prediction + self.learning_rate * stage.predict(X)
            self.stages_.append(stage)
            self.train_loss_.append(float(np.mean((y - prediction) ** 2)))
        self.n_features_ = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ModelError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        out = np.full(len(X), self.init_)
        for stage in self.stages_:
            out = out + self.learning_rate * stage.predict(X)
        return out

    def staged_predict(self, X: np.ndarray, every: int = 1):
        """Yield (stage_index, predictions) as stages accumulate."""
        self._check_fitted()
        X = check_X(X)
        out = np.full(len(X), self.init_)
        for i, stage in enumerate(self.stages_, start=1):
            out = out + self.learning_rate * stage.predict(X)
            if i % every == 0 or i == len(self.stages_):
                yield i, out.copy()

"""Principal component analysis via singular value decomposition."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Estimator, check_X


class PCA(Estimator):
    """PCA by SVD of the centered data matrix.

    Components have deterministic signs (largest-magnitude coordinate of
    each component is made positive) so results are reproducible.
    """

    def __init__(self, n_components: int | None = None):
        self.n_components = n_components

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "PCA":
        X = check_X(X)
        n, d = X.shape
        k = self.n_components if self.n_components is not None else min(n, d)
        if not 1 <= k <= min(n, d):
            raise ModelError(
                f"n_components must be in [1, {min(n, d)}], got {k}"
            )
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, s, vt = np.linalg.svd(centered, full_matrices=False)
        components = vt[:k]
        # Deterministic sign convention.
        for i in range(k):
            pivot = np.argmax(np.abs(components[i]))
            if components[i, pivot] < 0:
                components[i] = -components[i]
        self.components_ = components
        explained = (s**2) / max(n - 1, 1)
        total = float(explained.sum()) or 1.0
        self.explained_variance_ = explained[:k]
        self.explained_variance_ratio_ = explained[:k] / total
        self.singular_values_ = s[:k]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows onto the principal components, shape (n, k)."""
        self._check_fitted()
        X = check_X(X)
        return (X - self.mean_) @ self.components_.T

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Reconstruct from component scores back to the original space."""
        self._check_fitted()
        Z = np.asarray(Z, dtype=np.float64)
        return Z @ self.components_ + self.mean_

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        return self.fit(X).transform(X)

"""First-order optimizers for GLM training.

Batch gradient descent (with optional backtracking line search), and
mini-batch SGD with momentum / AdaGrad variants. Every optimizer returns
an :class:`OptimResult` carrying the loss trajectory so benchmarks and the
model-selection layer can account for iterations, not just final loss.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConvergenceWarning
from .losses import Loss


@dataclass
class OptimResult:
    """Outcome of an optimization run."""

    weights: np.ndarray
    iterations: int
    converged: bool
    loss_history: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


def _regularized(
    loss: Loss, l2: float
) -> tuple[Callable[..., float], Callable[..., np.ndarray]]:
    """Wrap a loss with an L2 penalty 0.5 * l2 * ||w||^2."""

    def value(X, y, w):
        v = loss.value(X, y, w)
        if l2 > 0:
            v += 0.5 * l2 * float(w @ w)
        return v

    def gradient(X, y, w):
        g = loss.gradient(X, y, w)
        if l2 > 0:
            g = g + l2 * w
        return g

    return value, gradient


def gradient_descent(
    loss: Loss,
    X: np.ndarray,
    y: np.ndarray,
    w0: np.ndarray | None = None,
    learning_rate: float = 0.1,
    l2: float = 0.0,
    max_iter: int = 500,
    tol: float = 1e-6,
    line_search: bool = True,
    warn_on_cap: bool = True,
) -> OptimResult:
    """Full-batch gradient descent with optional backtracking line search.

    Convergence is declared when the relative loss improvement falls below
    ``tol``. With ``line_search``, the step size is halved until the Armijo
    sufficient-decrease condition holds (this is the strategy SystemML's
    GLM scripts use to stay robust to scaling).
    """
    value, grad = _regularized(loss, l2)
    w = np.zeros(X.shape[1]) if w0 is None else np.array(w0, dtype=np.float64)
    history = [value(X, y, w)]
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        g = grad(X, y, w)
        if line_search:
            w, new_loss = _backtrack(value, X, y, w, g, history[-1], learning_rate)
        else:
            w = w - learning_rate * g
            new_loss = value(X, y, w)
        history.append(new_loss)
        if _relative_improvement(history[-2], new_loss) < tol:
            converged = True
            break
    if not converged and warn_on_cap:
        warnings.warn(
            f"gradient descent hit max_iter={max_iter} (loss {history[-1]:.6g})",
            ConvergenceWarning,
            stacklevel=2,
        )
    return OptimResult(w, it, converged, history)


def _backtrack(
    value: Callable,
    X: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    g: np.ndarray,
    current: float,
    step0: float,
    shrink: float = 0.5,
    c: float = 1e-4,
    max_halvings: int = 30,
) -> tuple[np.ndarray, float]:
    """Backtracking line search along -g (Armijo condition)."""
    step = step0
    g_norm_sq = float(g @ g)
    for _ in range(max_halvings):
        candidate = w - step * g
        new_loss = value(X, y, candidate)
        if new_loss <= current - c * step * g_norm_sq:
            return candidate, new_loss
        step *= shrink
    # Could not find decrease (at a stationary point or numerically stuck).
    return w, current


def sgd(
    loss: Loss,
    X: np.ndarray,
    y: np.ndarray,
    w0: np.ndarray | None = None,
    learning_rate: float = 0.1,
    l2: float = 0.0,
    epochs: int = 20,
    batch_size: int = 32,
    momentum: float = 0.0,
    adagrad: bool = False,
    decay: float = 0.0,
    shuffle: bool = True,
    tol: float = 0.0,
    seed: int | None = 0,
) -> OptimResult:
    """Mini-batch stochastic gradient descent.

    Args:
        momentum: classical momentum coefficient (0 disables).
        adagrad: per-coordinate AdaGrad scaling (overrides momentum).
        decay: learning-rate decay; epoch t uses lr / (1 + decay * t).
        tol: if > 0, stop early when the epoch-end relative loss
            improvement falls below it.

    The loss history records the full-data loss at the end of each epoch,
    matching how Bismarck-style systems monitor convergence.
    """
    value, grad = _regularized(loss, l2)
    rng = np.random.default_rng(seed)
    n = len(y)
    w = np.zeros(X.shape[1]) if w0 is None else np.array(w0, dtype=np.float64)
    velocity = np.zeros_like(w)
    g2_sum = np.zeros_like(w)
    history = [value(X, y, w)]
    converged = False
    epoch = 0
    for epoch in range(1, epochs + 1):
        lr = learning_rate / (1.0 + decay * (epoch - 1))
        order = rng.permutation(n) if shuffle else np.arange(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            g = grad(X[idx], y[idx], w)
            if adagrad:
                g2_sum += g * g
                w = w - lr * g / (np.sqrt(g2_sum) + 1e-8)
            elif momentum > 0:
                velocity = momentum * velocity - lr * g
                w = w + velocity
            else:
                w = w - lr * g
        history.append(value(X, y, w))
        if tol > 0 and _relative_improvement(history[-2], history[-1]) < tol:
            converged = True
            break
    return OptimResult(w, epoch, converged, history)


def _relative_improvement(previous: float, current: float) -> float:
    if not np.isfinite(previous) or not np.isfinite(current):
        return float("inf")
    return abs(previous - current) / max(abs(previous), 1e-12)

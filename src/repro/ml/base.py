"""Estimator API shared by every model in the library.

Estimators follow the fit/predict convention with introspectable
hyperparameters (``get_params`` / ``set_params``), which is what the
model-selection layer (:mod:`repro.selection`) enumerates over.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

from ..errors import ModelError, NotFittedError


class Estimator:
    """Base class: hyperparameters are the constructor keyword arguments."""

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "Estimator":
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Hyperparameter protocol
    # ------------------------------------------------------------------
    @classmethod
    def _param_names(cls) -> list[str]:
        sig = inspect.signature(cls.__init__)
        return [
            p.name
            for p in sig.parameters.values()
            if p.name != "self" and p.kind == p.POSITIONAL_OR_KEYWORD
        ]

    def get_params(self) -> dict[str, Any]:
        """Current hyperparameter values."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "Estimator":
        """Set hyperparameters in place; returns self for chaining."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ModelError(
                    f"{type(self).__name__} has no hyperparameter {name!r}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def clone(self) -> "Estimator":
        """A fresh, unfitted copy with the same hyperparameters."""
        return type(self)(**copy.deepcopy(self.get_params()))

    # ------------------------------------------------------------------
    # Fitted-state protocol
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return any(
            name.endswith("_") and not name.startswith("_")
            for name in vars(self)
        )

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before this call"
            )

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class Regressor(Estimator):
    """Estimator predicting real values; provides R^2 scoring."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        from .metrics import r2_score

        return r2_score(y, self.predict(X))


class Classifier(Estimator):
    """Estimator predicting discrete labels; provides accuracy scoring."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        from .metrics import accuracy_score

        return accuracy_score(y, self.predict(X))


def check_X_y(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a design matrix / label vector pair."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ModelError(f"y must be 1-D, got shape {y.shape}")
    if len(X) != len(y):
        raise ModelError(f"X has {len(X)} rows but y has {len(y)}")
    if len(X) == 0:
        raise ModelError("cannot fit on an empty dataset")
    if not np.isfinite(X).all():
        raise ModelError("X contains NaN or infinite values")
    return X, y


def check_X(X: np.ndarray) -> np.ndarray:
    """Validate and coerce a design matrix."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    return X


def as_pm_one(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map a binary label vector to {-1, +1}; return (mapped, classes).

    ``classes[0]`` maps to -1 and ``classes[1]`` to +1.
    """
    classes = np.unique(y)
    if len(classes) != 2:
        raise ModelError(
            f"binary classifier requires exactly 2 classes, got {len(classes)}"
        )
    return np.where(y == classes[1], 1.0, -1.0), classes

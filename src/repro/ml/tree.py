"""CART decision trees (classification and regression).

Binary axis-aligned splits chosen by exhaustive scan over sorted unique
thresholds; Gini impurity for classification, variance reduction for
regression. Included because in-RDBMS ML suites (MADlib et al.) serve
tree models alongside GLMs, and the model-selection layer needs a
hyperparameter space that is not convex-optimization shaped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .base import Classifier, Regressor, check_X, check_X_y


@dataclass
class _Node:
    """One tree node; leaves have ``feature is None``."""

    prediction: float | int
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    impurity: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class _BaseTree:
    """Shared CART machinery; subclasses define impurity and leaf values."""

    def __init__(
        self,
        max_depth: int = 5,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease

    # subclass hooks -----------------------------------------------------
    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _leaf_value(self, y: np.ndarray):
        raise NotImplementedError

    # fitting --------------------------------------------------------------
    def _fit_tree(self, X: np.ndarray, y: np.ndarray) -> _Node:
        if self.max_depth < 1:
            raise ModelError("max_depth must be >= 1")
        if self.min_samples_leaf < 1 or self.min_samples_split < 2:
            raise ModelError(
                "min_samples_leaf must be >= 1 and min_samples_split >= 2"
            )
        self.n_features_ = X.shape[1]
        self.n_nodes_ = 0
        return self._build(X, y, depth=0)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        self.n_nodes_ += 1
        node = _Node(
            prediction=self._leaf_value(y),
            impurity=self._impurity(y),
            n_samples=len(y),
        )
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or node.impurity <= 1e-12
        ):
            return node

        split = self._best_split(X, y, node.impurity)
        if split is None:
            return node
        feature, threshold, gain = split
        if gain < self.min_impurity_decrease:
            return node

        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, parent_impurity: float
    ) -> tuple[int, float, float] | None:
        """Best (feature, threshold, gain) via vectorized prefix statistics.

        For each feature, rows are sorted once and the impurity of every
        prefix/suffix comes from cumulative sums — O(n log n) per feature
        instead of O(n * distinct) impurity recomputations.
        """
        n = len(y)
        best: tuple[int, float, float] | None = None
        left_n = np.arange(1, n)
        right_n = n - left_n
        for feature in range(X.shape[1]):
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            valid = (
                (np.diff(sorted_values) > 0)
                & (left_n >= self.min_samples_leaf)
                & (right_n >= self.min_samples_leaf)
            )
            if not valid.any():
                continue
            left_imp, right_imp = self._prefix_impurities(y[order])
            weighted = (left_n * left_imp + right_n * right_imp) / n
            gain = np.where(valid, parent_impurity - weighted, -np.inf)
            cut = int(np.argmax(gain))
            if not np.isfinite(gain[cut]):
                continue
            if best is None or gain[cut] > best[2]:
                threshold = (sorted_values[cut] + sorted_values[cut + 1]) / 2.0
                best = (feature, float(threshold), float(gain[cut]))
        return best

    def _prefix_impurities(
        self, sorted_y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Impurity of every prefix (cuts 1..n-1) and matching suffix."""
        raise NotImplementedError

    # prediction -------------------------------------------------------------
    def _predict_one(self, node: _Node, x: np.ndarray):
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.prediction

    def _predict_many(self, X: np.ndarray) -> list:
        self._check_fitted()
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ModelError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return [self._predict_one(self.tree_, x) for x in X]

    @property
    def depth_(self) -> int:
        self._check_fitted()

        def depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self.tree_)

    def describe(self) -> str:
        """Indented text rendering of the fitted tree."""
        self._check_fitted()
        lines: list[str] = []

        def render(node: _Node, indent: int) -> None:
            pad = "  " * indent
            if node.is_leaf:
                lines.append(
                    f"{pad}leaf: predict {node.prediction} "
                    f"(n={node.n_samples})"
                )
            else:
                lines.append(
                    f"{pad}if x[{node.feature}] <= {node.threshold:.4g}:"
                )
                render(node.left, indent + 1)
                lines.append(f"{pad}else:")
                render(node.right, indent + 1)

        render(self.tree_, 0)
        return "\n".join(lines)


class DecisionTreeClassifier(_BaseTree, Classifier):
    """CART classifier with Gini impurity."""

    def fit(self, X: np.ndarray, y: np.ndarray | None = None):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        codes = np.searchsorted(self.classes_, y)
        self.tree_ = self._fit_tree(X, codes)
        return self

    def _impurity(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        counts = np.bincount(y, minlength=len(self.classes_))
        p = counts / len(y)
        return float(1.0 - np.sum(p * p))

    def _prefix_impurities(self, sorted_y):
        n = len(sorted_y)
        k = len(self.classes_)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), sorted_y] = 1.0
        left_counts = np.cumsum(onehot, axis=0)[:-1]  # cuts 1..n-1
        total = left_counts[-1] + onehot[-1]
        right_counts = total - left_counts
        left_n = np.arange(1, n)[:, None]
        right_n = (n - np.arange(1, n))[:, None]
        left_gini = 1.0 - np.sum((left_counts / left_n) ** 2, axis=1)
        right_gini = 1.0 - np.sum((right_counts / right_n) ** 2, axis=1)
        return left_gini, right_gini

    def _leaf_value(self, y: np.ndarray) -> int:
        counts = np.bincount(y, minlength=len(self.classes_))
        return int(np.argmax(counts))

    def predict(self, X: np.ndarray) -> np.ndarray:
        codes = np.asarray(self._predict_many(X), dtype=np.int64)
        return self.classes_[codes]


class DecisionTreeRegressor(_BaseTree, Regressor):
    """CART regressor with variance (MSE) impurity."""

    def fit(self, X: np.ndarray, y: np.ndarray | None = None):
        X, y = check_X_y(X, y)
        self.tree_ = self._fit_tree(X, y.astype(np.float64))
        return self

    def _impurity(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        return float(np.var(y))

    def _prefix_impurities(self, sorted_y):
        n = len(sorted_y)
        csum = np.cumsum(sorted_y)
        csum2 = np.cumsum(sorted_y * sorted_y)
        left_n = np.arange(1, n)
        right_n = n - left_n
        left_mean = csum[:-1] / left_n
        left_var = np.maximum(csum2[:-1] / left_n - left_mean**2, 0.0)
        right_sum = csum[-1] - csum[:-1]
        right_sum2 = csum2[-1] - csum2[:-1]
        right_mean = right_sum / right_n
        right_var = np.maximum(right_sum2 / right_n - right_mean**2, 0.0)
        return left_var, right_var

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self._predict_many(X), dtype=np.float64)

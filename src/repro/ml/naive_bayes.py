"""Naive Bayes classifiers.

Gaussian NB for continuous features and categorical NB for discrete
features. Categorical NB is the model the in-database layer trains with
pure GROUP BY aggregation (see :mod:`repro.indb.naive_bayes_sql`), so its
parameter layout mirrors what those aggregates produce.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Classifier, check_X, check_X_y


class GaussianNB(Classifier):
    """Gaussian Naive Bayes with per-class diagonal covariance."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "GaussianNB":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        n, d = X.shape
        k = len(self.classes_)
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        self.class_prior_ = np.zeros(k)
        for i, c in enumerate(self.classes_):
            members = X[y == c]
            self.class_prior_[i] = len(members) / n
            self.theta_[i] = members.mean(axis=0)
            self.var_[i] = members.var(axis=0)
        self.var_ += self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X)
        out = np.zeros((len(X), len(self.classes_)))
        for i in range(len(self.classes_)):
            log_det = np.sum(np.log(2.0 * np.pi * self.var_[i]))
            sq = ((X - self.theta_[i]) ** 2) / self.var_[i]
            out[:, i] = np.log(self.class_prior_[i]) - 0.5 * (
                log_det + sq.sum(axis=1)
            )
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class posteriors, shape (n, k), columns ordered as ``classes_``."""
        self._check_fitted()
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)


class CategoricalNB(Classifier):
    """Naive Bayes over categorical features with Laplace smoothing.

    Features are arbitrary hashable values per column. Unknown categories
    at prediction time contribute the smoothed prior probability.
    """

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "CategoricalNB":
        X = np.asarray(X, dtype=object)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
        y = np.asarray(y)
        if len(X) != len(y):
            raise ModelError(f"X has {len(X)} rows but y has {len(y)}")
        if self.alpha <= 0:
            raise ModelError("alpha must be positive")
        self.classes_ = np.unique(y)
        n, d = X.shape

        self.class_count_ = np.array(
            [np.sum(y == c) for c in self.classes_], dtype=np.float64
        )
        self.class_log_prior_ = np.log(self.class_count_ / n)

        # feature_counts_[j][(class_index, value)] -> count
        self.feature_counts_: list[dict] = [dict() for _ in range(d)]
        self.feature_cardinality_ = np.zeros(d, dtype=np.int64)
        for j in range(d):
            values = X[:, j]
            self.feature_cardinality_[j] = len(set(values.tolist()))
            for i, c in enumerate(self.classes_):
                for v in values[y == c]:
                    key = (i, v)
                    self.feature_counts_[j][key] = (
                        self.feature_counts_[j].get(key, 0) + 1
                    )
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=object)
        if X.ndim != 2 or X.shape[1] != len(self.feature_counts_):
            raise ModelError(
                f"expected (n, {len(self.feature_counts_)}) input, got {X.shape}"
            )
        n = len(X)
        k = len(self.classes_)
        out = np.tile(self.class_log_prior_, (n, 1))
        for j, counts in enumerate(self.feature_counts_):
            card = self.feature_cardinality_[j]
            denom = self.class_count_ + self.alpha * card
            for row in range(n):
                v = X[row, j]
                for i in range(k):
                    num = counts.get((i, v), 0) + self.alpha
                    out[row, i] += np.log(num / denom[i])
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)

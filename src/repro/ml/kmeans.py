"""Lloyd's k-means with k-means++ initialization."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import Estimator, check_X


class KMeans(Estimator):
    """K-means clustering.

    Args:
        n_clusters: number of centroids.
        init: ``"kmeans++"`` or ``"random"``.
        n_init: restarts; the run with the lowest inertia wins.
        max_iter / tol: Lloyd-iteration controls (tol is on centroid shift).
    """

    def __init__(
        self,
        n_clusters: int = 8,
        init: str = "kmeans++",
        n_init: int = 3,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: int | None = 0,
    ):
        self.n_clusters = n_clusters
        self.init = init
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "KMeans":
        X = check_X(X)
        if self.n_clusters < 1:
            raise ModelError("n_clusters must be >= 1")
        if len(X) < self.n_clusters:
            raise ModelError(
                f"need at least n_clusters={self.n_clusters} points, got {len(X)}"
            )
        rng = np.random.default_rng(self.seed)
        best_inertia = np.inf
        for _ in range(max(1, self.n_init)):
            centers, labels, inertia, iters = self._run(X, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                self.cluster_centers_ = centers
                self.labels_ = labels
                self.inertia_ = inertia
                self.n_iter_ = iters
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment per row."""
        self._check_fitted()
        X = check_X(X)
        return _assign(X, self.cluster_centers_)[0]

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Distances to every centroid, shape (n, k)."""
        self._check_fitted()
        X = check_X(X)
        return np.sqrt(_sq_distances(X, self.cluster_centers_))

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_

    # ------------------------------------------------------------------
    def _run(self, X, rng) -> tuple[np.ndarray, np.ndarray, float, int]:
        centers = self._init_centers(X, rng)
        labels = np.zeros(len(X), dtype=np.int64)
        iters = 0
        for iters in range(1, self.max_iter + 1):
            labels, dists = _assign(X, centers)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members):
                    new_centers[k] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    new_centers[k] = X[int(np.argmax(dists))]
            shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
            centers = new_centers
            if shift <= self.tol:
                break
        labels, dists = _assign(X, centers)
        return centers, labels, float(dists.sum()), iters

    def _init_centers(self, X: np.ndarray, rng) -> np.ndarray:
        if self.init == "random":
            idx = rng.choice(len(X), size=self.n_clusters, replace=False)
            return X[idx].copy()
        if self.init != "kmeans++":
            raise ModelError(f"unknown init {self.init!r}")
        centers = [X[rng.integers(len(X))]]
        for _ in range(1, self.n_clusters):
            d2 = _sq_distances(X, np.array(centers)).min(axis=1)
            total = d2.sum()
            if total <= 0:
                # All remaining points coincide with chosen centers.
                centers.append(X[rng.integers(len(X))])
                continue
            probs = d2 / total
            centers.append(X[rng.choice(len(X), p=probs)])
        return np.array(centers)


def _sq_distances(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (n, k).

    Computed via the expansion ||x||^2 - 2 x.c + ||c||^2, which is the
    vectorized form declarative ML compilers generate for k-means.
    """
    x2 = np.sum(X * X, axis=1, keepdims=True)
    c2 = np.sum(centers * centers, axis=1)
    d2 = x2 - 2.0 * (X @ centers.T) + c2
    return np.maximum(d2, 0.0)


def _assign(X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    d2 = _sq_distances(X, centers)
    labels = np.argmin(d2, axis=1)
    return labels, d2[np.arange(len(X)), labels]

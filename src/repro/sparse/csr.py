"""Compressed sparse row (CSR) matrices, from scratch.

Declarative ML systems exploit sparsity end to end: sparse inputs are
stored in CSR and every kernel that touches them respects nnz instead of
n*d. This module is that substrate for the reproduction — built on
numpy primitives only (no scipy), with exactly the operation set GLM
training needs:

* ``X @ v`` and ``X.T @ u`` (via a lazy transpose view),
* row slicing / row gather (mini-batch SGD),
* scaling, element-wise multiply against dense,
* column sums, nnz accounting, dense round-trip.

Because :class:`CSRMatrix` implements ``shape``, ``__matmul__`` and
``.T``, the GLM losses and optimizers in :mod:`repro.ml` run on sparse
inputs unchanged.
"""

from __future__ import annotations

import time
from functools import partial

import numpy as np

from ..errors import ReproError
from ..runtime.parallel import ParallelContext, resolve_context


class SparseError(ReproError):
    """A sparse-matrix operation failed."""


def _rowblock_matvec(csr: "CSRMatrix", v: np.ndarray, bounds) -> np.ndarray:
    """X[lo:hi] @ v for one row block (private partial)."""
    lo, hi = bounds
    s = slice(csr.indptr[lo], csr.indptr[hi])
    products = csr.data[s] * v[csr.indices[s]]
    out = np.zeros(hi - lo)
    local_ptr = csr.indptr[lo:hi] - csr.indptr[lo]
    nonempty = np.diff(csr.indptr[lo : hi + 1]) > 0
    if products.size:
        out[nonempty] = np.add.reduceat(products, local_ptr[nonempty])
    return out


def _rowblock_rmatvec(csr: "CSRMatrix", u: np.ndarray, bounds) -> np.ndarray:
    """X[lo:hi].T @ u[lo:hi] for one row block (private partial)."""
    lo, hi = bounds
    s = slice(csr.indptr[lo], csr.indptr[hi])
    row_of = np.repeat(
        np.arange(lo, hi), np.diff(csr.indptr[lo : hi + 1])
    )
    return np.bincount(
        csr.indices[s],
        weights=csr.data[s] * u[row_of],
        minlength=csr.shape[1],
    )


def _column_matvec(csr: "CSRMatrix", B: np.ndarray, j: int) -> np.ndarray:
    return csr.matvec(B[:, j])


class CSRMatrix:
    """A read-only CSR matrix."""

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: tuple[int, int],
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._parallel_ctx: ParallelContext | None = None
        self._validate()

    def _validate(self) -> None:
        n, d = self.shape
        if len(self.indptr) != n + 1:
            raise SparseError(
                f"indptr length {len(self.indptr)} != rows+1 ({n + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise SparseError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise SparseError("indices and data lengths differ")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= d
        ):
            raise SparseError(f"column indices out of range [0, {d})")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, X: np.ndarray, threshold: float = 0.0) -> "CSRMatrix":
        """Encode a dense array; |values| <= threshold become implicit zeros."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise SparseError(f"expected a 2-D array, got {X.ndim}-D")
        mask = np.abs(X) > threshold
        indptr = np.zeros(X.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(X[rows, cols], cols, indptr, X.shape)

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: tuple[int, int],
    ) -> "CSRMatrix":
        """Build from coordinate triplets (duplicates are summed)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (len(rows) == len(cols) == len(values)):
            raise SparseError("rows, cols, values must have equal length")
        if len(rows) and (rows.min() < 0 or rows.max() >= shape[0]):
            raise SparseError(f"row indices out of range [0, {shape[0]})")
        # Sort by (row, col), then merge duplicates.
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if len(rows):
            keys = rows * shape[1] + cols
            unique_mask = np.empty(len(keys), dtype=bool)
            unique_mask[0] = True
            unique_mask[1:] = keys[1:] != keys[:-1]
            group_ids = np.cumsum(unique_mask) - 1
            merged_values = np.bincount(group_ids, weights=values)
            rows = rows[unique_mask]
            cols = cols[unique_mask]
            values = merged_values
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(values, cols, indptr, shape)

    @classmethod
    def random(
        cls,
        n_rows: int,
        n_cols: int,
        density: float,
        seed: int | None = 0,
    ) -> "CSRMatrix":
        """A random sparse matrix with standard-normal nonzeros."""
        if not 0.0 <= density <= 1.0:
            raise SparseError("density must be in [0, 1]")
        rng = np.random.default_rng(seed)
        nnz = int(round(n_rows * n_cols * density))
        flat = rng.choice(n_rows * n_cols, size=nnz, replace=False)
        return cls.from_coo(
            flat // n_cols,
            flat % n_cols,
            rng.standard_normal(nnz),
            (n_rows, n_cols),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def nbytes(self) -> int:
        return self.data.nbytes + self.indices.nbytes + self.indptr.nbytes

    @property
    def memory_bytes(self) -> int:
        """Uniform operand-protocol alias for :attr:`nbytes`."""
        return self.nbytes

    # ------------------------------------------------------------------
    # Parallel dispatch (cost-gated, shared pool)
    # ------------------------------------------------------------------
    def set_parallel(
        self, parallel: bool | ParallelContext = True
    ) -> "CSRMatrix":
        """Enable/disable cost-gated row-block parallel kernels."""
        self._parallel_ctx = resolve_context(parallel)
        return self

    @property
    def parallel_context(self) -> ParallelContext | None:
        return self._parallel_ctx

    def _kernel_cost(self) -> float:
        """Flops-equivalents of one matvec-shaped pass: 2 * nnz."""
        return 2.0 * self.nnz

    def _row_blocks(self, ctx: ParallelContext) -> list[tuple[int, int]]:
        workers = max(ctx.max_workers, 1)
        bounds = np.linspace(0, self.shape[0], workers + 1).astype(np.int64)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """X @ v in O(nnz)."""
        v = np.asarray(v, dtype=np.float64).reshape(-1)
        if len(v) != self.shape[1]:
            raise SparseError(
                f"vector length {len(v)} != num columns {self.shape[1]}"
            )
        ctx = self._parallel_ctx
        if ctx is not None and ctx.should_parallelize(
            ctx.max_workers, self._kernel_cost(), site="csr.matvec"
        ):
            blocks = self._row_blocks(ctx)
            if len(blocks) > 1:
                # Row blocks are disjoint, so per-row segment sums are
                # bitwise-identical to the serial reduceat path.
                partials = ctx.pmap(
                    partial(_rowblock_matvec, self, v),
                    blocks,
                    cost_hint=self._kernel_cost(),
                    site="csr.matvec",
                )
                return np.concatenate(partials)
        start = time.perf_counter() if ctx is not None else 0.0
        products = self.data * v[self.indices]
        out = np.zeros(self.shape[0])
        # Segment-sum per row via reduceat (empty rows handled below).
        nonempty = np.diff(self.indptr) > 0
        if products.size:
            sums = np.add.reduceat(products, self.indptr[:-1][nonempty])
            out[nonempty] = sums
        if ctx is not None:
            ctx.note_serial("csr.matvec", 1, time.perf_counter() - start)
        return out

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """X.T @ u in O(nnz)."""
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if len(u) != self.shape[0]:
            raise SparseError(
                f"vector length {len(u)} != num rows {self.shape[0]}"
            )
        ctx = self._parallel_ctx
        if ctx is not None and ctx.should_parallelize(
            ctx.max_workers, self._kernel_cost(), site="csr.rmatvec"
        ):
            blocks = self._row_blocks(ctx)
            if len(blocks) > 1:
                # Partials reduce in block order: matches serial up to
                # float-addition reassociation (<= 1e-9).
                partials = ctx.pmap(
                    partial(_rowblock_rmatvec, self, u),
                    blocks,
                    cost_hint=self._kernel_cost(),
                    site="csr.rmatvec",
                )
                out = np.zeros(self.shape[1])
                for p in partials:
                    out += p
                return out
        start = time.perf_counter() if ctx is not None else 0.0
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out = np.bincount(
            self.indices,
            weights=self.data * u[row_of],
            minlength=self.shape[1],
        )
        if ctx is not None:
            ctx.note_serial("csr.rmatvec", 1, time.perf_counter() - start)
        return out

    def matmat(self, B: np.ndarray) -> np.ndarray:
        """X @ B for dense B, column by column."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim == 1:
            return self.matvec(B)
        if B.shape[0] != self.shape[1]:
            raise SparseError(f"shape mismatch: {self.shape} @ {B.shape}")
        out = np.empty((self.shape[0], B.shape[1]))
        ctx = self._parallel_ctx
        if (
            ctx is not None
            and B.shape[1] > 1
            and ctx.should_parallelize(
                B.shape[1], self._kernel_cost() * B.shape[1],
                site="csr.matmat",
            )
        ):
            columns = ctx.pmap(
                partial(_column_matvec, self, B),
                range(B.shape[1]),
                cost_hint=self._kernel_cost() * B.shape[1],
                site="csr.matmat",
            )
            for j, col in enumerate(columns):
                out[:, j] = col
            return out
        for j in range(B.shape[1]):
            out[:, j] = self.matvec(B[:, j])
        return out

    def rmatmat(self, U: np.ndarray) -> np.ndarray:
        """X.T @ U for dense U, column by column."""
        U = np.asarray(U, dtype=np.float64)
        if U.ndim == 1:
            return self.rmatvec(U)
        if U.shape[0] != self.shape[0]:
            raise SparseError(
                f"shape mismatch: X.T ({self.shape[1]}, {self.shape[0]}) "
                f"@ {U.shape}"
            )
        out = np.empty((self.shape[1], U.shape[1]))
        for j in range(U.shape[1]):
            out[:, j] = self.rmatvec(U[:, j])
        return out

    def gram(self) -> np.ndarray:
        """X.T @ X from per-row outer products, O(sum of row_nnz^2)."""
        d = self.shape[1]
        out = np.zeros((d, d))
        for i in range(self.shape[0]):
            s = slice(self.indptr[i], self.indptr[i + 1])
            idx = self.indices[s]
            if idx.size:
                vals = self.data[s]
                out[np.ix_(idx, idx)] += np.outer(vals, vals)
        return out

    def scale(self, alpha: float) -> "CSRMatrix":
        """alpha * X (sparsity preserved)."""
        return CSRMatrix(self.data * alpha, self.indices, self.indptr, self.shape)

    def map_nonzeros(self, fn) -> "CSRMatrix":
        """New CSR with ``fn`` applied to the stored nonzeros.

        Only valid for zero-preserving maps (fn(0) == 0): implicit zeros
        stay implicit. Callers (the representation-aware executor) check
        that property before dispatching here.
        """
        return CSRMatrix(fn(self.data), self.indices, self.indptr, self.shape)

    def sq_sum(self) -> float:
        """Sum of squared cells in O(nnz)."""
        return float(np.dot(self.data, self.data))

    def multiply_dense(self, D: np.ndarray) -> "CSRMatrix":
        """Element-wise X * D for dense D (result stays sparse)."""
        D = np.asarray(D, dtype=np.float64)
        if D.shape != self.shape:
            raise SparseError(f"shape mismatch: {self.shape} * {D.shape}")
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        new_data = self.data * D[row_of, self.indices]
        return CSRMatrix(new_data, self.indices, self.indptr, self.shape)

    def colsums(self) -> np.ndarray:
        return np.bincount(
            self.indices, weights=self.data, minlength=self.shape[1]
        )

    def rowsums(self) -> np.ndarray:
        out = np.zeros(self.shape[0])
        nonempty = np.diff(self.indptr) > 0
        if self.data.size:
            out[nonempty] = np.add.reduceat(
                self.data, self.indptr[:-1][nonempty]
            )
        return out

    def sum(self) -> float:
        return float(self.data.sum())

    def take_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Rows at the given positions (mini-batch gather)."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise SparseError("row indices out of range")
        counts = np.diff(self.indptr)[rows]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        segments = [
            slice(self.indptr[r], self.indptr[r + 1]) for r in rows
        ]
        data = np.concatenate([self.data[s] for s in segments]) if segments else np.empty(0)
        indices = (
            np.concatenate([self.indices[s] for s in segments])
            if segments
            else np.empty(0, dtype=np.int64)
        )
        return CSRMatrix(data, indices, indptr, (len(rows), self.shape[1]))

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` as a dense vector."""
        if not 0 <= i < self.shape[0]:
            raise SparseError(f"row {i} out of range [0, {self.shape[0]})")
        out = np.zeros(self.shape[1])
        s = slice(self.indptr[i], self.indptr[i + 1])
        out[self.indices[s]] = self.data[s]
        return out

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[row_of, self.indices] = self.data
        return out

    def transpose(self) -> "CSRMatrix":
        """Materialized transpose (CSR of X.T)."""
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return CSRMatrix.from_coo(
            self.indices, row_of, self.data, (self.shape[1], self.shape[0])
        )

    # ------------------------------------------------------------------
    # numpy-like protocol so GLM losses/optimizers work unchanged
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> np.ndarray:
        return self.matmat(np.asarray(other))

    def __len__(self) -> int:
        return self.shape[0]

    def __getitem__(self, key):
        """Row selection with an index array (mini-batch protocol)."""
        if isinstance(key, np.ndarray):
            return self.take_rows(key)
        if isinstance(key, (int, np.integer)):
            return self.row(int(key))
        raise SparseError(f"unsupported index type {type(key).__name__}")

    @property
    def T(self) -> "TransposedCSR":
        return TransposedCSR(self)


class TransposedCSR:
    """A zero-copy transpose view supporting ``X.T @ u`` / ``X.T @ U``."""

    def __init__(self, base: CSRMatrix):
        self.base = base
        self.shape = (base.shape[1], base.shape[0])

    def __matmul__(self, other) -> np.ndarray:
        other = np.asarray(other, dtype=np.float64)
        if other.ndim == 1:
            return self.base.rmatvec(other)
        if other.shape[0] != self.shape[1]:
            raise SparseError(f"shape mismatch: {self.shape} @ {other.shape}")
        out = np.empty((self.shape[0], other.shape[1]))
        for j in range(other.shape[1]):
            out[:, j] = self.base.rmatvec(other[:, j])
        return out

    @property
    def T(self) -> CSRMatrix:
        return self.base

    def to_dense(self) -> np.ndarray:
        return self.base.to_dense().T

"""Sparse linear algebra substrate (CSR), built from scratch on numpy.

Because :class:`CSRMatrix` speaks the same ``shape`` / ``@`` / ``.T`` /
row-gather protocol as dense arrays, the GLM losses and optimizers in
:mod:`repro.ml` train on sparse designs unchanged — the sparsity
exploitation the tutorial's declarative-ML section surveys.
"""

from .csr import CSRMatrix, SparseError, TransposedCSR

__all__ = ["CSRMatrix", "SparseError", "TransposedCSR"]

"""Atomic, schema-versioned, CRC-checksummed single-file persistence.

Three subsystems persist state the same way — the checkpointer
(:mod:`repro.resilience.checkpoint`), the feedback store
(:mod:`repro.compiler.feedback`), and the materialization store
(:mod:`repro.materialize.store`) — and all need the same guarantees:

* **Atomic** — bytes go to a temp file in the target directory and are
  ``os.replace``d into place, so a crash mid-write can never leave a
  truncated file under a valid name.
* **Versioned** — every file opens with a one-line JSON header carrying
  a schema string; readers reject files written under another schema
  instead of silently misreading old bytes.
* **Checksummed** — the header records the payload's CRC32 and byte
  length; both are verified on read, so bit rot and truncation are
  *detected* failures the caller can recover from (checkpoints fall
  back to an older file, feedback to cold estimates, materializations
  to lineage recompute).

File layout: ``<json header>\\n<payload bytes>``. The header is
``json.dumps(..., sort_keys=True)`` of ``extra | {schema, crc32,
payload_bytes}`` — byte-identical to what the pre-refactor writers
produced, so files saved by older builds load unchanged.

Callers keep their own error taxonomy: every function takes the
exception class to raise and a ``what`` label used in messages
(``"checkpoint"``, ``"feedback store"``, ...).
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Any

from .errors import ReproError


class PersistenceError(ReproError):
    """Default error for atomic-file persistence failures."""


def write_atomic(
    path: str | os.PathLike,
    payload: bytes,
    schema: str,
    extra: dict[str, Any] | None = None,
    error_cls: type[Exception] = PersistenceError,
    what: str = "file",
    tmp_prefix: str | None = None,
    makedirs: bool = True,
) -> str:
    """Write ``header + payload`` atomically; returns the final path.

    The temp file is fsynced before the rename so the replace is
    durable, and unlinked on any failure so aborted writes leave no
    debris next to the target.
    """
    target = os.fspath(path)
    header_fields: dict[str, Any] = dict(extra or {})
    header_fields["schema"] = schema
    header_fields["crc32"] = zlib.crc32(payload)
    header_fields["payload_bytes"] = len(payload)
    header = json.dumps(header_fields, sort_keys=True).encode("utf-8")
    directory = os.path.dirname(os.path.abspath(target))
    if makedirs:
        os.makedirs(directory, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=tmp_prefix or ".atomic-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(header + b"\n" + payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
    except OSError as exc:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise error_cls(f"could not write {what} {target}") from exc
    return target


def verify_bytes(
    raw: bytes,
    schema: str,
    error_cls: type[Exception] = PersistenceError,
    what: str = "file",
    name: str = "",
) -> tuple[dict[str, Any], bytes]:
    """Split and verify ``header\\npayload`` bytes -> (header, payload).

    Raises ``error_cls`` on a missing/unreadable header, a schema
    mismatch, a truncated payload, or a checksum failure — the exact
    failure taxonomy every reader here recovers from.
    """
    label = f"{what} {name}".rstrip()
    newline = raw.find(b"\n")
    if newline < 0:
        raise error_cls(f"{label} has no header")
    try:
        header = json.loads(raw[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise error_cls(f"{label} header unreadable") from exc
    if header.get("schema") != schema:
        raise error_cls(
            f"{label} has schema {header.get('schema')!r}, "
            f"expected {schema!r}"
        )
    payload = raw[newline + 1 :]
    if len(payload) != header.get("payload_bytes"):
        raise error_cls(f"{label} is truncated")
    if zlib.crc32(payload) != header.get("crc32"):
        raise error_cls(f"{label} failed its checksum")
    return header, payload


def read_verified(
    path: str | os.PathLike,
    schema: str,
    error_cls: type[Exception] = PersistenceError,
    what: str = "file",
) -> tuple[dict[str, Any], bytes]:
    """Read one atomic file and verify it -> (header, payload)."""
    target = os.fspath(path)
    try:
        with open(target, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise error_cls(f"could not read {what} {target}") from exc
    return verify_bytes(raw, schema, error_cls, what=what, name=target)

"""ML lifecycle management: model registry, experiment tracking, and
pickle-free model serialization."""

from .registry import ModelRegistry, ModelVersion
from .serialize import dumps_model, load_model, loads_model, save_model
from .tracking import ExperimentTracker, Run

__all__ = [
    "ExperimentTracker",
    "ModelRegistry",
    "ModelVersion",
    "Run",
    "dumps_model",
    "load_model",
    "loads_model",
    "save_model",
]

"""Model registry with versioning and lineage (ModelDB-lite).

Registered models are immutable versioned entries carrying
hyperparameters, metrics, tags, and an optional parent version — enough
to answer the lifecycle questions the tutorial raises: which model is
deployed, what produced it, and how did it evolve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import LifecycleError


@dataclass(frozen=True)
class ModelVersion:
    """One immutable registered version of a named model."""

    name: str
    version: int
    model: Any
    params: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    parent_version: int | None = None
    created_at: float = field(default_factory=time.time)
    #: version of the FeatureView the model was trained on (if any);
    #: promotion gates refuse to deploy against a mismatched live view.
    feature_fingerprint: str | None = None

    @property
    def identifier(self) -> str:
        return f"{self.name}:v{self.version}"


class ModelRegistry:
    """In-memory versioned model store."""

    #: the alias :meth:`deploy` maintains; serving routes stable traffic
    #: through it by default.
    DEPLOYED_ALIAS = "prod"

    def __init__(self) -> None:
        self._models: dict[str, list[ModelVersion]] = {}
        self._stage: dict[str, int] = {}  # name -> deployed version
        self._history: dict[str, list[int]] = {}  # prior deployments, oldest first
        self._aliases: dict[str, dict[str, int]] = {}  # name -> alias -> version

    def register(
        self,
        name: str,
        model: Any,
        params: dict[str, Any] | None = None,
        metrics: dict[str, float] | None = None,
        tags: tuple[str, ...] = (),
        parent_version: int | None = None,
        feature_fingerprint: str | None = None,
    ) -> ModelVersion:
        """Register a new version of ``name``; returns the version entry."""
        versions = self._models.setdefault(name, [])
        if parent_version is not None and not any(
            v.version == parent_version for v in versions
        ):
            raise LifecycleError(
                f"parent version v{parent_version} of {name!r} does not exist"
            )
        entry = ModelVersion(
            name=name,
            version=len(versions) + 1,
            model=model,
            params=dict(params or {}),
            metrics=dict(metrics or {}),
            tags=tuple(tags),
            parent_version=parent_version,
            feature_fingerprint=feature_fingerprint,
        )
        versions.append(entry)
        return entry

    def get(self, name: str, version: int | None = None) -> ModelVersion:
        """A specific version, or the latest when ``version`` is None."""
        versions = self._models.get(name)
        if not versions:
            raise LifecycleError(f"no model named {name!r}")
        if version is None:
            return versions[-1]
        for v in versions:
            if v.version == version:
                return v
        raise LifecycleError(f"{name!r} has no version v{version}")

    def versions(self, name: str) -> list[ModelVersion]:
        if name not in self._models:
            raise LifecycleError(f"no model named {name!r}")
        return list(self._models[name])

    def names(self) -> list[str]:
        return sorted(self._models)

    def lineage(self, name: str, version: int) -> list[ModelVersion]:
        """The ancestor chain of a version, oldest first."""
        chain: list[ModelVersion] = []
        current: int | None = version
        while current is not None:
            entry = self.get(name, current)
            chain.append(entry)
            current = entry.parent_version
        return list(reversed(chain))

    def best(self, name: str, metric: str, higher_is_better: bool = True) -> ModelVersion:
        """The version with the best recorded value of ``metric``."""
        candidates = [v for v in self.versions(name) if metric in v.metrics]
        if not candidates:
            raise LifecycleError(
                f"no version of {name!r} records metric {metric!r}"
            )
        key = lambda v: v.metrics[metric]
        return max(candidates, key=key) if higher_is_better else min(candidates, key=key)

    # -- deployment staging ------------------------------------------------
    def deploy(self, name: str, version: int) -> None:
        """Promote ``version``; the prior deployment (if any) is pushed
        onto a history stack so :meth:`rollback` can restore it. Also
        points the ``"prod"`` alias at the new version."""
        self.get(name, version)  # validates existence
        previous = self._stage.get(name)
        if previous is not None and previous != version:
            self._history.setdefault(name, []).append(previous)
        self._stage[name] = version
        self._aliases.setdefault(name, {})[self.DEPLOYED_ALIAS] = version

    def undeploy(self, name: str) -> ModelVersion:
        """Take ``name`` out of serving; returns the version removed.

        The removed version joins the rollback history, so a subsequent
        :meth:`rollback` re-deploys it.
        """
        if name not in self._stage:
            raise LifecycleError(f"no deployed version of {name!r}")
        version = self._stage.pop(name)
        self._history.setdefault(name, []).append(version)
        self._aliases.get(name, {}).pop(self.DEPLOYED_ALIAS, None)
        return self.get(name, version)

    def rollback(self, name: str) -> ModelVersion:
        """Restore the most recently superseded deployment of ``name``."""
        history = self._history.get(name)
        if not history:
            raise LifecycleError(f"no deployment history for {name!r}")
        version = history.pop()
        self._stage[name] = version
        self._aliases.setdefault(name, {})[self.DEPLOYED_ALIAS] = version
        return self.get(name, version)

    def deployed(self, name: str) -> ModelVersion:
        if name not in self._stage:
            raise LifecycleError(f"no deployed version of {name!r}")
        return self.get(name, self._stage[name])

    # -- named aliases -------------------------------------------------------
    def set_alias(self, name: str, alias: str, version: int) -> None:
        """Point ``alias`` (e.g. ``"canary"``) at a version of ``name``.

        The ``"prod"`` alias is owned by the deployment machinery, so
        setting it delegates to :meth:`deploy` (history included).
        """
        if not alias:
            raise LifecycleError("alias must be a non-empty string")
        if alias == self.DEPLOYED_ALIAS:
            self.deploy(name, version)
            return
        self.get(name, version)  # validates existence
        self._aliases.setdefault(name, {})[alias] = version

    def drop_alias(self, name: str, alias: str) -> None:
        if alias == self.DEPLOYED_ALIAS:
            self.undeploy(name)
            return
        if alias not in self._aliases.get(name, {}):
            raise LifecycleError(f"{name!r} has no alias {alias!r}")
        del self._aliases[name][alias]

    def aliases(self, name: str) -> dict[str, int]:
        """Alias -> version map for ``name`` (may be empty)."""
        self.versions(name)  # validates the model exists
        return dict(self._aliases.get(name, {}))

    def resolve(self, name: str, ref: int | str | None = None) -> ModelVersion:
        """Resolve a version reference: an int version, an alias string,
        or ``None`` for the latest registered version."""
        if ref is None or isinstance(ref, int):
            return self.get(name, ref)
        alias_map = self._aliases.get(name, {})
        if ref not in alias_map:
            raise LifecycleError(f"{name!r} has no alias {ref!r}")
        return self.get(name, alias_map[ref])

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> None:
        """Persist the registry to a JSON file.

        Models of serializable estimator classes are embedded (see
        :mod:`repro.lifecycle.serialize`); other model objects are stored
        as ``null`` with their metadata intact.
        """
        import json
        from pathlib import Path

        from .serialize import dumps_model

        entries = []
        for name in self.names():
            for v in self.versions(name):
                try:
                    model_json = dumps_model(v.model)
                except LifecycleError:
                    model_json = None
                entries.append(
                    {
                        "name": v.name,
                        "version": v.version,
                        "model": model_json,
                        "params": v.params,
                        "metrics": v.metrics,
                        "tags": list(v.tags),
                        "parent_version": v.parent_version,
                        "created_at": v.created_at,
                        "feature_fingerprint": v.feature_fingerprint,
                    }
                )
        payload = {
            "versions": entries,
            "deployed": dict(self._stage),
            "history": {k: list(v) for k, v in self._history.items() if v},
            "aliases": {k: dict(v) for k, v in self._aliases.items() if v},
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path) -> "ModelRegistry":
        """Restore a registry saved with :meth:`save`."""
        import json
        from pathlib import Path

        from .serialize import loads_model

        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise LifecycleError(f"cannot load registry: {exc}") from exc
        registry = cls()
        entries = sorted(
            payload.get("versions", []), key=lambda e: (e["name"], e["version"])
        )
        for entry in entries:
            model = (
                loads_model(entry["model"])
                if entry["model"] is not None
                else None
            )
            version = ModelVersion(
                name=entry["name"],
                version=entry["version"],
                model=model,
                params=entry["params"],
                metrics=entry["metrics"],
                tags=tuple(entry["tags"]),
                parent_version=entry["parent_version"],
                created_at=entry["created_at"],
                # absent in files saved before the feature store existed
                feature_fingerprint=entry.get("feature_fingerprint"),
            )
            registry._models.setdefault(entry["name"], []).append(version)
        registry._stage = {
            name: int(v) for name, v in payload.get("deployed", {}).items()
        }
        registry._history = {
            name: [int(v) for v in versions]
            for name, versions in payload.get("history", {}).items()
        }
        registry._aliases = {
            name: {alias: int(v) for alias, v in aliases.items()}
            for name, aliases in payload.get("aliases", {}).items()
        }
        # Files saved before aliases existed carry deployments only:
        # re-derive their "prod" alias from the staged version.
        for name, version in registry._stage.items():
            registry._aliases.setdefault(name, {}).setdefault(
                cls.DEPLOYED_ALIAS, version
            )
        return registry

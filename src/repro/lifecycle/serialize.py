"""Safe, pickle-free model serialization.

Models are stored as JSON: the estimator class (validated against a
registry of known classes — loading never imports or executes arbitrary
code), its hyperparameters, and its fitted state (trailing-underscore
attributes). Numpy arrays are embedded as base64 with dtype/shape so the
round trip is bit-exact.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import LifecycleError

FORMAT_VERSION = 1


def _known_classes() -> dict[str, type]:
    """Estimator classes eligible for (de)serialization."""
    from ..ml import (
        PCA,
        DecisionTreeClassifier,
        DecisionTreeRegressor,
        GaussianNB,
        KBinsDiscretizer,
        KMeans,
        LinearRegression,
        LinearSVM,
        LogisticRegression,
        MinMaxScaler,
        Ridge,
        StandardScaler,
    )

    classes = [
        PCA,
        DecisionTreeClassifier,
        DecisionTreeRegressor,
        GaussianNB,
        KBinsDiscretizer,
        KMeans,
        LinearRegression,
        LinearSVM,
        LogisticRegression,
        MinMaxScaler,
        Ridge,
        StandardScaler,
    ]
    return {cls.__name__: cls for cls in classes}


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------
def _encode_value(value: Any) -> Any:
    from ..ml.tree import _Node

    if isinstance(value, _Node):
        return {
            "__kind__": "tree_node",
            "prediction": _encode_value(value.prediction),
            "feature": value.feature,
            "threshold": value.threshold,
            "impurity": value.impurity,
            "n_samples": value.n_samples,
            "left": None if value.left is None else _encode_value(value.left),
            "right": None if value.right is None else _encode_value(value.right),
        }
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return {
                "__kind__": "object_array",
                "values": [_encode_value(v) for v in value.tolist()],
            }
        return {
            "__kind__": "ndarray",
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode(),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (list, tuple)):
        return {
            "__kind__": "list" if isinstance(value, list) else "tuple",
            "values": [_encode_value(v) for v in value],
        }
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise LifecycleError(
        f"cannot serialize value of type {type(value).__name__}"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__kind__" in value:
        kind = value["__kind__"]
        if kind == "ndarray":
            raw = base64.b64decode(value["data"])
            return np.frombuffer(raw, dtype=np.dtype(value["dtype"])).reshape(
                value["shape"]
            ).copy()
        if kind == "object_array":
            return np.array(
                [_decode_value(v) for v in value["values"]], dtype=object
            )
        if kind in ("list", "tuple"):
            items = [_decode_value(v) for v in value["values"]]
            return items if kind == "list" else tuple(items)
        if kind == "tree_node":
            from ..ml.tree import _Node

            return _Node(
                prediction=_decode_value(value["prediction"]),
                feature=value["feature"],
                threshold=value["threshold"],
                impurity=value["impurity"],
                n_samples=value["n_samples"],
                left=(
                    None if value["left"] is None else _decode_value(value["left"])
                ),
                right=(
                    None
                    if value["right"] is None
                    else _decode_value(value["right"])
                ),
            )
        raise LifecycleError(f"unknown encoded kind {kind!r}")
    return value


# ----------------------------------------------------------------------
# Model (de)serialization
# ----------------------------------------------------------------------
def dumps_model(model: Any) -> str:
    """Serialize a fitted (or unfitted) estimator to a JSON string."""
    classes = _known_classes()
    name = type(model).__name__
    if name not in classes or type(model) is not classes[name]:
        raise LifecycleError(
            f"{name} is not a serializable estimator; known: {sorted(classes)}"
        )
    state = {
        attr: _encode_value(value)
        for attr, value in vars(model).items()
        if attr.endswith("_") and not attr.startswith("_")
        # optimizer traces are diagnostics, not model state
        and attr != "optim_result_"
    }
    payload = {
        "format_version": FORMAT_VERSION,
        "class": name,
        "params": {k: _encode_value(v) for k, v in model.get_params().items()},
        "state": state,
    }
    return json.dumps(payload)


def loads_model(text: str) -> Any:
    """Reconstruct an estimator from :func:`dumps_model` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LifecycleError(f"malformed model JSON: {exc}") from exc
    if payload.get("format_version") != FORMAT_VERSION:
        raise LifecycleError(
            f"unsupported model format version {payload.get('format_version')!r}"
        )
    classes = _known_classes()
    name = payload.get("class")
    if name not in classes:
        raise LifecycleError(f"unknown model class {name!r}")
    params = {k: _decode_value(v) for k, v in payload["params"].items()}
    model = classes[name](**params)
    for attr, value in payload["state"].items():
        setattr(model, attr, _decode_value(value))
    return model


def save_model(model: Any, path: str | Path) -> None:
    """Serialize an estimator to a file."""
    Path(path).write_text(dumps_model(model))


def load_model(path: str | Path) -> Any:
    """Load an estimator saved with :func:`save_model`."""
    return loads_model(Path(path).read_text())

"""Experiment-run tracking.

An :class:`ExperimentTracker` records runs — parameters, metrics, tags,
and wall-clock — under named experiments, and answers the comparison
queries an ML workflow needs (best run, runs filtered by params/tags).
Runs are append-only; a finished run is immutable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import LifecycleError


@dataclass
class Run:
    """One experiment run."""

    run_id: int
    experiment: str
    params: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    tags: set[str] = field(default_factory=set)
    started_at: float = field(default_factory=time.time)
    finished_at: float | None = None

    @property
    def is_finished(self) -> bool:
        return self.finished_at is not None

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise LifecycleError(f"run {self.run_id} has not finished")
        return self.finished_at - self.started_at

    def log_param(self, name: str, value: Any) -> None:
        self._check_open()
        self.params[name] = value

    def log_metric(self, name: str, value: float) -> None:
        self._check_open()
        self.metrics[name] = float(value)

    def add_tag(self, tag: str) -> None:
        self._check_open()
        self.tags.add(tag)

    def finish(self) -> None:
        self._check_open()
        self.finished_at = time.time()

    def _check_open(self) -> None:
        if self.finished_at is not None:
            raise LifecycleError(f"run {self.run_id} is already finished")


class ExperimentTracker:
    """Append-only store of runs grouped by experiment name."""

    def __init__(self) -> None:
        self._runs: list[Run] = []

    def start_run(
        self,
        experiment: str,
        params: dict[str, Any] | None = None,
        tags: set[str] | None = None,
    ) -> Run:
        run = Run(
            run_id=len(self._runs) + 1,
            experiment=experiment,
            params=dict(params or {}),
            tags=set(tags or ()),
        )
        self._runs.append(run)
        return run

    def runs(
        self,
        experiment: str | None = None,
        tag: str | None = None,
        finished_only: bool = False,
    ) -> list[Run]:
        out = []
        for run in self._runs:
            if experiment is not None and run.experiment != experiment:
                continue
            if tag is not None and tag not in run.tags:
                continue
            if finished_only and not run.is_finished:
                continue
            out.append(run)
        return out

    def best_run(
        self,
        experiment: str,
        metric: str,
        higher_is_better: bool = True,
    ) -> Run:
        candidates = [
            r for r in self.runs(experiment, finished_only=True) if metric in r.metrics
        ]
        if not candidates:
            raise LifecycleError(
                f"no finished run of {experiment!r} records {metric!r}"
            )
        key = lambda r: r.metrics[metric]
        return max(candidates, key=key) if higher_is_better else min(candidates, key=key)

    def experiments(self) -> list[str]:
        return sorted({r.experiment for r in self._runs})

    def __iter__(self) -> Iterator[Run]:
        return iter(self._runs)

    def __len__(self) -> int:
        return len(self._runs)

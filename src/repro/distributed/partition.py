"""Row partitioning schemes for data-parallel training.

How rows are assigned to workers matters: contiguous splits of sorted
data give each worker a biased shard (the distributed analogue of
Bismarck's unshuffled IGD pathology), while round-robin or random
assignment keeps shards exchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

SCHEMES = ("contiguous", "round_robin", "random")


@dataclass
class Partition:
    """One worker's shard."""

    worker_id: int
    indices: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)


def partition_rows(
    n_rows: int,
    num_workers: int,
    scheme: str = "random",
    seed: int | None = 0,
) -> list[Partition]:
    """Assign row indices to workers.

    Every row lands on exactly one worker; shard sizes differ by at most
    one row.
    """
    if num_workers < 1:
        raise ReproError("num_workers must be >= 1")
    if n_rows < num_workers:
        raise ReproError(
            f"need at least one row per worker: {n_rows} rows, "
            f"{num_workers} workers"
        )
    if scheme not in SCHEMES:
        raise ReproError(f"unknown scheme {scheme!r}; known: {SCHEMES}")

    if scheme == "contiguous":
        bounds = np.linspace(0, n_rows, num_workers + 1).astype(int)
        return [
            Partition(w, np.arange(bounds[w], bounds[w + 1]))
            for w in range(num_workers)
        ]
    if scheme == "round_robin":
        return [
            Partition(w, np.arange(w, n_rows, num_workers))
            for w in range(num_workers)
        ]
    order = np.random.default_rng(seed).permutation(n_rows)
    chunks = np.array_split(order, num_workers)
    return [Partition(w, np.sort(chunk)) for w, chunk in enumerate(chunks)]

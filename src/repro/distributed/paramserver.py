"""Parameter-server training with bounded staleness.

The asynchronous alternative to BSP: workers pull (possibly stale)
weights, compute mini-batch gradients locally, and push updates the
server applies in arrival order. The simulation models staleness
explicitly — each gradient is computed against the weights as of
``current_version - s`` with s drawn uniformly from [0, max_staleness] —
so experiment E15 can sweep staleness and watch convergence degrade, the
parameter-server trade-off the tutorial discusses.

Fault tolerance mirrors real parameter servers (SSP/bounded staleness):
the server can enforce a ``staleness_bound`` — a push whose base version
is too far behind the current version is *rejected* rather than applied
— and the training loop survives dropped pushes and failed pulls
(injected at chaos sites ``"paramserver.push"`` / ``"paramserver.pull"``)
by simply moving on: asynchronous SGD is tolerant of lost updates, which
is exactly why the architecture scales. Workers killed at the cluster
level are skipped deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import InjectedFault, ReproError, WorkerFailure
from ..ml.losses import Loss
from ..obs import get_registry
from ..resilience.faults import fault_point
from .cluster import BYTES_PER_FLOAT, CommStats, SimulatedCluster


@dataclass
class ParameterServerResult:
    weights: np.ndarray
    updates_applied: int
    loss_history: list[float] = field(default_factory=list)
    staleness_observed: list[int] = field(default_factory=list)
    comm: CommStats = field(default_factory=CommStats)
    dropped_pushes: int = 0  # pushes lost to injected faults
    failed_pulls: int = 0  # pulls lost to injected faults (step skipped)
    rejected_pushes: int = 0  # pushes rejected by the staleness bound
    worker_reassignments: int = 0  # steps rerouted off dead workers

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")

    @property
    def mean_staleness(self) -> float:
        if not self.staleness_observed:
            return 0.0
        return float(np.mean(self.staleness_observed))


class ParameterServer:
    """Versioned weight store with a bounded history for stale reads.

    Args:
        dim: weight dimensionality.
        history: how many versions are kept for stale pulls.
        staleness_bound: if set, a push carrying ``base_version`` more
            than this many versions behind the current one is rejected
            (SSP-style bounded staleness). ``None`` accepts everything.
    """

    def __init__(
        self,
        dim: int,
        history: int = 256,
        staleness_bound: int | None = None,
    ):
        if staleness_bound is not None and staleness_bound < 0:
            raise ReproError("staleness_bound must be >= 0 or None")
        self.dim = dim
        self._versions: list[np.ndarray] = [np.zeros(dim)]
        self._history = history
        self.staleness_bound = staleness_bound
        self.rejected_pushes = 0

    @property
    def version(self) -> int:
        return len(self._versions) - 1

    @property
    def current(self) -> np.ndarray:
        return self._versions[-1]

    def pull(self, staleness: int = 0) -> tuple[np.ndarray, int]:
        """Weights as of ``version - staleness`` (clamped to history)."""
        fault_point("paramserver.pull", key=self.version)
        staleness = int(min(staleness, self.version, self._history - 1))
        return self._versions[-(staleness + 1)], staleness

    def push(self, delta: np.ndarray, base_version: int | None = None) -> bool:
        """Apply an additive update, creating a new version.

        Returns False (without applying) when the update's
        ``base_version`` violates the server's staleness bound.
        """
        fault_point("paramserver.push", key=self.version)
        if (
            self.staleness_bound is not None
            and base_version is not None
            and self.version - base_version > self.staleness_bound
        ):
            self.rejected_pushes += 1
            get_registry().inc("paramserver.rejected_pushes")
            return False
        new = self._versions[-1] + delta
        self._versions.append(new)
        if len(self._versions) > self._history:
            self._versions.pop(0)
        return True


def train_parameter_server(
    cluster: SimulatedCluster,
    loss: Loss,
    total_updates: int = 500,
    batch_size: int = 32,
    learning_rate: float = 0.1,
    decay: float = 0.001,
    l2: float = 0.0,
    max_staleness: int = 0,
    loss_every: int = 50,
    seed: int | None = 0,
    staleness_bound: int | None = None,
) -> ParameterServerResult:
    """Asynchronous SGD through a parameter server.

    ``max_staleness = 0`` reduces to fully-sequential (sequentially
    consistent) SGD; larger values let workers act on increasingly stale
    weights. ``staleness_bound`` makes the server reject pushes based on
    versions older than the bound (SSP); dropped pushes and failed pulls
    from injected faults are tolerated — the loop moves on to the next
    update, which is the asynchrony the architecture is built on.
    """
    if total_updates < 1:
        raise ReproError("total_updates must be >= 1")
    if max_staleness < 0:
        raise ReproError("max_staleness must be >= 0")
    rng = np.random.default_rng(seed)
    server = ParameterServer(
        cluster.dim,
        history=max(max_staleness + 2, 8),
        staleness_bound=staleness_bound,
    )
    result = ParameterServerResult(
        weights=server.current.copy(), updates_applied=0, comm=cluster.comm
    )
    result.loss_history.append(cluster.global_loss(loss, server.current))

    vector_bytes = cluster.dim * BYTES_PER_FLOAT
    registry = get_registry()
    for step in range(1, total_updates + 1):
        pick = int(rng.integers(cluster.num_workers))
        requested = int(rng.integers(0, max_staleness + 1)) if max_staleness else 0
        if cluster.workers[pick].worker_id in cluster.dead:
            # Deterministic reroute: next surviving worker in id order.
            for offset in range(1, cluster.num_workers + 1):
                candidate = (pick + offset) % cluster.num_workers
                if cluster.workers[candidate].worker_id not in cluster.dead:
                    pick = candidate
                    result.worker_reassignments += 1
                    registry.inc("paramserver.worker_reassignments")
                    break
            else:
                raise WorkerFailure("all parameter-server workers are dead")
        worker = cluster.workers[pick]
        try:
            weights, actual = server.pull(requested)
        except InjectedFault:
            result.failed_pulls += 1
            registry.inc("paramserver.failed_pulls")
            cluster.comm.messages += 1  # the pull that was lost
            continue
        base_version = server.version - actual
        grad = worker.minibatch_gradient(loss, weights, batch_size, rng)
        if l2 > 0:
            grad = grad + l2 * weights
        lr = learning_rate / (1.0 + decay * step)
        try:
            applied = server.push(-lr * grad, base_version=base_version)
        except InjectedFault:
            result.dropped_pushes += 1
            registry.inc("paramserver.dropped_pushes")
            applied = False

        result.staleness_observed.append(actual)
        if applied:
            result.updates_applied += 1
        else:
            result.rejected_pushes = server.rejected_pushes
        cluster.comm.messages += 2  # pull + push
        cluster.comm.bytes_broadcast += vector_bytes
        cluster.comm.bytes_gathered += vector_bytes
        if step % loss_every == 0:
            result.loss_history.append(
                cluster.global_loss(loss, server.current)
            )

    result.weights = server.current.copy()
    result.rejected_pushes = server.rejected_pushes
    if (total_updates % loss_every) != 0:
        result.loss_history.append(cluster.global_loss(loss, server.current))
    return result

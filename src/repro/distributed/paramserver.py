"""Parameter-server training with bounded staleness.

The asynchronous alternative to BSP: workers pull (possibly stale)
weights, compute mini-batch gradients locally, and push updates the
server applies in arrival order. The simulation models staleness
explicitly — each gradient is computed against the weights as of
``current_version - s`` with s drawn uniformly from [0, max_staleness] —
so experiment E15 can sweep staleness and watch convergence degrade, the
parameter-server trade-off the tutorial discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from ..ml.losses import Loss
from .cluster import BYTES_PER_FLOAT, CommStats, SimulatedCluster


@dataclass
class ParameterServerResult:
    weights: np.ndarray
    updates_applied: int
    loss_history: list[float] = field(default_factory=list)
    staleness_observed: list[int] = field(default_factory=list)
    comm: CommStats = field(default_factory=CommStats)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")

    @property
    def mean_staleness(self) -> float:
        if not self.staleness_observed:
            return 0.0
        return float(np.mean(self.staleness_observed))


class ParameterServer:
    """Versioned weight store with a bounded history for stale reads."""

    def __init__(self, dim: int, history: int = 256):
        self.dim = dim
        self._versions: list[np.ndarray] = [np.zeros(dim)]
        self._history = history

    @property
    def version(self) -> int:
        return len(self._versions) - 1

    @property
    def current(self) -> np.ndarray:
        return self._versions[-1]

    def pull(self, staleness: int = 0) -> tuple[np.ndarray, int]:
        """Weights as of ``version - staleness`` (clamped to history)."""
        staleness = int(min(staleness, self.version, self._history - 1))
        return self._versions[-(staleness + 1)], staleness

    def push(self, delta: np.ndarray) -> None:
        """Apply an additive update, creating a new version."""
        new = self._versions[-1] + delta
        self._versions.append(new)
        if len(self._versions) > self._history:
            self._versions.pop(0)


def train_parameter_server(
    cluster: SimulatedCluster,
    loss: Loss,
    total_updates: int = 500,
    batch_size: int = 32,
    learning_rate: float = 0.1,
    decay: float = 0.001,
    l2: float = 0.0,
    max_staleness: int = 0,
    loss_every: int = 50,
    seed: int | None = 0,
) -> ParameterServerResult:
    """Asynchronous SGD through a parameter server.

    ``max_staleness = 0`` reduces to fully-sequential (sequentially
    consistent) SGD; larger values let workers act on increasingly stale
    weights.
    """
    if total_updates < 1:
        raise ReproError("total_updates must be >= 1")
    if max_staleness < 0:
        raise ReproError("max_staleness must be >= 0")
    rng = np.random.default_rng(seed)
    server = ParameterServer(cluster.dim, history=max(max_staleness + 2, 8))
    result = ParameterServerResult(
        weights=server.current.copy(), updates_applied=0, comm=cluster.comm
    )
    result.loss_history.append(cluster.global_loss(loss, server.current))

    vector_bytes = cluster.dim * BYTES_PER_FLOAT
    for step in range(1, total_updates + 1):
        worker = cluster.workers[int(rng.integers(cluster.num_workers))]
        requested = int(rng.integers(0, max_staleness + 1)) if max_staleness else 0
        weights, actual = server.pull(requested)
        grad = worker.minibatch_gradient(loss, weights, batch_size, rng)
        if l2 > 0:
            grad = grad + l2 * weights
        lr = learning_rate / (1.0 + decay * step)
        server.push(-lr * grad)

        result.staleness_observed.append(actual)
        result.updates_applied += 1
        cluster.comm.messages += 2  # pull + push
        cluster.comm.bytes_broadcast += vector_bytes
        cluster.comm.bytes_gathered += vector_bytes
        if step % loss_every == 0:
            result.loss_history.append(
                cluster.global_loss(loss, server.current)
            )

    result.weights = server.current.copy()
    if (total_updates % loss_every) != 0:
        result.loss_history.append(cluster.global_loss(loss, server.current))
    return result

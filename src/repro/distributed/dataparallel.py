"""Bulk-synchronous data-parallel GD and model averaging.

The two classic distributed training strategies the tutorial contrasts:

* **BSP gradient descent** — every round aggregates the exact global
  gradient (one broadcast + one gather per round). Statistically
  identical to single-node GD; all cost is communication rounds.
* **One-shot model averaging** — each worker solves on its shard alone
  and models are averaged once. One round of communication total, but
  statistically weaker on non-IID shards — the trade-off experiment
  E15 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from ..ml.losses import Loss
from ..ml.optim import gradient_descent
from .cluster import BYTES_PER_FLOAT, CommStats, SimulatedCluster


@dataclass
class DistributedResult:
    weights: np.ndarray
    rounds: int
    loss_history: list[float] = field(default_factory=list)
    comm: CommStats = field(default_factory=CommStats)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


def train_bsp_gd(
    cluster: SimulatedCluster,
    loss: Loss,
    rounds: int = 50,
    learning_rate: float = 0.5,
    l2: float = 0.0,
    tol: float = 0.0,
) -> DistributedResult:
    """Synchronous distributed gradient descent.

    One communication round per iteration; the computed trajectory is
    bit-identical to single-node fixed-step GD on the union of shards.
    """
    if rounds < 1:
        raise ReproError("rounds must be >= 1")
    w = np.zeros(cluster.dim)
    history = [cluster.global_loss(loss, w)]
    for _ in range(rounds):
        grad = cluster.global_gradient(loss, w)
        if l2 > 0:
            grad = grad + l2 * w
        w = w - learning_rate * grad
        value = cluster.global_loss(loss, w)
        if l2 > 0:
            value += 0.5 * l2 * float(w @ w)
        history.append(value)
        if tol > 0 and abs(history[-2] - history[-1]) < tol * max(
            abs(history[-2]), 1e-12
        ):
            break
    return DistributedResult(
        weights=w,
        rounds=cluster.comm.rounds,
        loss_history=history,
        comm=cluster.comm,
    )


def train_model_averaging(
    cluster: SimulatedCluster,
    loss: Loss,
    local_iterations: int = 200,
    learning_rate: float = 0.5,
    l2: float = 0.0,
) -> DistributedResult:
    """One-shot parameter mixing: solve locally, average once.

    Communication: a single gather of one model per worker.
    """
    models = []
    weights = []
    for worker in cluster.workers:
        result = gradient_descent(
            loss,
            worker.X,
            worker.y,
            l2=l2,
            learning_rate=learning_rate,
            max_iter=local_iterations,
            warn_on_cap=False,
        )
        models.append(result.weights)
        weights.append(worker.num_rows)
    averaged = np.average(np.vstack(models), axis=0, weights=weights)

    comm = cluster.comm
    comm.rounds += 1
    comm.messages += cluster.num_workers
    comm.bytes_gathered += cluster.num_workers * cluster.dim * BYTES_PER_FLOAT
    final = cluster.global_loss(loss, averaged)
    return DistributedResult(
        weights=averaged,
        rounds=comm.rounds,
        loss_history=[final],
        comm=comm,
    )

"""Simulated distributed ML execution.

The tutorial's distributed-systems pillar: data-parallel BSP gradient
descent, one-shot model averaging, and parameter-server asynchrony with
bounded staleness — simulated on one node with explicit communication
accounting, so strategy comparisons (rounds, bytes, convergence per
update) are measurable without a cluster (see DESIGN.md,
"Substitutions").
"""

from .cluster import CommStats, SimulatedCluster, Worker
from .dataparallel import (
    DistributedResult,
    train_bsp_gd,
    train_model_averaging,
)
from .paramserver import (
    ParameterServer,
    ParameterServerResult,
    train_parameter_server,
)
from .partition import SCHEMES, Partition, partition_rows

__all__ = [
    "CommStats",
    "DistributedResult",
    "ParameterServer",
    "ParameterServerResult",
    "Partition",
    "SCHEMES",
    "SimulatedCluster",
    "Worker",
    "partition_rows",
    "train_bsp_gd",
    "train_model_averaging",
    "train_parameter_server",
]

"""A simulated data-parallel cluster with communication accounting.

Workers hold disjoint row shards and answer gradient/loss requests; the
cluster driver implements bulk-synchronous rounds (broadcast weights,
gather partial gradients, average). The simulation's primary purpose is
to measure the *communication volume* and *convergence per round* that
distinguish distributed strategies, which are scheduling-independent
quantities — but workers can optionally execute their local compute
concurrently on the shared worker pool (``parallel=True``), while the
communication ledger and the reduced results stay deterministic:
partials are always combined in worker order.

Failure semantics mirror lineage-based recovery (MapReduce re-execution,
Spark lineage, SystemML plan recompute): the cluster keeps the immutable
shard assignment, so when a worker dies (``kill_worker``) or its RPC
faults (chaos at site ``"cluster.worker"``), the *same deterministic
request over the same shard* is re-executed by a survivor on behalf of
the lost worker. Because partials are still combined in the original
worker order, recovered rounds produce bit-identical reductions, and
the comm ledger — including the recovery traffic — stays deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..errors import InjectedFault, ReproError, WorkerFailure
from ..ml.losses import Loss
from ..obs import get_registry, span
from ..resilience.faults import fault_point, no_chaos
from ..runtime.parallel import ParallelContext, resolve_context
from .partition import Partition, partition_rows


def _worker_gradient(
    loss: Loss, w: np.ndarray, worker: "Worker"
) -> tuple[np.ndarray, int]:
    return worker.gradient_sum(loss, w)


def _worker_loss(loss: Loss, w: np.ndarray, worker: "Worker") -> tuple[float, int]:
    return worker.loss_sum(loss, w)

BYTES_PER_FLOAT = 8


@dataclass
class CommStats:
    """Cumulative communication ledger."""

    rounds: int = 0
    messages: int = 0
    bytes_broadcast: int = 0  # driver -> workers
    bytes_gathered: int = 0  # workers -> driver
    worker_failures: int = 0  # failed RPCs (dead worker or injected fault)
    lineage_recoveries: int = 0  # shard requests re-executed by a survivor
    bytes_recovered: int = 0  # gather bytes re-sent during recovery

    @property
    def total_bytes(self) -> int:
        return self.bytes_broadcast + self.bytes_gathered


class Worker:
    """One worker: a shard of rows plus local compute."""

    def __init__(self, worker_id: int, X: np.ndarray, y: np.ndarray):
        self.worker_id = worker_id
        self.X = X
        self.y = y
        self.gradient_evaluations = 0
        self.recoveries_executed = 0

    @property
    def num_rows(self) -> int:
        return len(self.y)

    def gradient_sum(self, loss: Loss, w: np.ndarray) -> tuple[np.ndarray, int]:
        """Sum (not mean) of example gradients, plus the example count."""
        self.gradient_evaluations += 1
        grad = loss.gradient(self.X, self.y, w) * self.num_rows
        return grad, self.num_rows

    def loss_sum(self, loss: Loss, w: np.ndarray) -> tuple[float, int]:
        return loss.value(self.X, self.y, w) * self.num_rows, self.num_rows

    def minibatch_gradient(
        self, loss: Loss, w: np.ndarray, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Mean gradient on a random local mini-batch."""
        self.gradient_evaluations += 1
        take = min(batch_size, self.num_rows)
        idx = rng.choice(self.num_rows, size=take, replace=False)
        return loss.gradient(self.X[idx], self.y[idx], w)


class SimulatedCluster:
    """Workers plus a BSP driver."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        num_workers: int,
        scheme: str = "random",
        seed: int | None = 0,
        parallel: bool | ParallelContext = False,
        context: ParallelContext | None = None,
    ):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y):
            raise ReproError(f"X has {len(X)} rows but y has {len(y)}")
        self.partitions: list[Partition] = partition_rows(
            len(X), num_workers, scheme, seed
        )
        self.workers = [
            Worker(p.worker_id, X[p.indices], y[p.indices])
            for p in self.partitions
        ]
        self.dim = X.shape[1]
        self.n_rows = len(X)
        self.comm = CommStats()
        self.dead: set[int] = set()
        self._parallel_ctx = resolve_context(parallel, context)

    # ------------------------------------------------------------------
    # failure semantics
    def kill_worker(self, worker_id: int) -> None:
        """Mark a worker as permanently down.

        Its shard stays assigned (lineage): every subsequent request
        for it is recomputed by a survivor until :meth:`revive_worker`.
        """
        if not any(w.worker_id == worker_id for w in self.workers):
            raise ReproError(f"no worker with id {worker_id}")
        self.dead.add(worker_id)
        get_registry().inc("cluster.workers_killed")

    def revive_worker(self, worker_id: int) -> None:
        """Bring a killed worker back (no state is lost — shards are
        immutable, so a revived worker serves its shard directly again)."""
        self.dead.discard(worker_id)

    def _attempt_request(self, fn, worker: "Worker") -> tuple[str, object]:
        """One RPC to one worker, returning a status-tagged result.

        Failures (dead worker, injected fault at ``cluster.worker``) are
        returned as a sentinel rather than raised, so one lost worker
        never aborts the whole gather — the driver recovers it instead.
        """
        try:
            if worker.worker_id in self.dead:
                raise WorkerFailure(f"worker {worker.worker_id} is down")
            fault_point("cluster.worker", key=worker.worker_id)
            return "ok", fn(worker)
        except (WorkerFailure, InjectedFault) as exc:
            return "failed", exc

    def _recover_partial(self, fn, worker: "Worker", cause: BaseException):
        """Lineage recovery: a survivor re-executes the lost request.

        The recomputation runs over the *same shard* with the *same
        deterministic function*, so the recovered partial is
        bit-identical to what the lost worker would have produced, and
        combining in worker order keeps the reduction exact.
        """
        survivor = next(
            (w for w in self.workers if w.worker_id not in self.dead), None
        )
        if survivor is None:
            raise WorkerFailure(
                "no surviving worker to recover shard "
                f"{worker.worker_id}"
            ) from cause
        survivor.recoveries_executed += 1
        # Recovery traffic: re-send the request, re-gather one vector.
        vector_bytes = self.dim * BYTES_PER_FLOAT
        self.comm.messages += 2
        self.comm.bytes_broadcast += vector_bytes
        self.comm.bytes_gathered += vector_bytes
        self.comm.bytes_recovered += vector_bytes
        self.comm.lineage_recoveries += 1
        registry = get_registry()
        registry.inc("cluster.lineage_recoveries")
        registry.inc("cluster.messages", 2)
        with span(
            "cluster.recover",
            worker=worker.worker_id,
            survivor=survivor.worker_id,
        ):
            # The recompute path is off the failed RPC path — chaos is
            # masked so recovery terminates even at fault rate 1.0.
            with no_chaos():
                return fn(worker)

    def _worker_results(self, fn, site: str) -> list:
        """Run one request per worker, optionally concurrently.

        Results come back in worker order either way, so downstream
        reductions are deterministic. Failed workers are recovered
        lineage-style by :meth:`_recover_partial` before returning.
        """
        ctx = self._parallel_ctx
        attempt = partial(self._attempt_request, fn)
        if ctx is not None and self.num_workers > 1:
            wrapped = ctx.pmap(
                attempt,
                self.workers,
                cost_hint=2.0 * self.n_rows * self.dim,
                site=site,
            )
        else:
            wrapped = [attempt(worker) for worker in self.workers]
        results = []
        for worker, (status, payload) in zip(self.workers, wrapped):
            if status == "ok":
                results.append(payload)
                continue
            self.comm.worker_failures += 1
            get_registry().inc("cluster.worker_failures")
            results.append(self._recover_partial(fn, worker, payload))
        return results

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _account_round(self) -> None:
        """One BSP round: broadcast w down, gather one vector per worker.

        The per-cluster :class:`CommStats` ledger stays the API callers
        read; the same quantities accumulate in the global ``cluster.*``
        metrics so run reports see communication across all clusters.
        """
        self.comm.rounds += 1
        self.comm.messages += 2 * self.num_workers
        vector_bytes = self.dim * BYTES_PER_FLOAT
        self.comm.bytes_broadcast += vector_bytes * self.num_workers
        self.comm.bytes_gathered += vector_bytes * self.num_workers
        registry = get_registry()
        registry.inc("cluster.rounds")
        registry.inc("cluster.messages", 2 * self.num_workers)
        registry.inc(
            "cluster.bytes_broadcast", vector_bytes * self.num_workers
        )
        registry.inc("cluster.bytes_gathered", vector_bytes * self.num_workers)

    def global_gradient(self, loss: Loss, w: np.ndarray) -> np.ndarray:
        """Exact full-data mean gradient via one BSP round."""
        with span("cluster.gradient", workers=self.num_workers, dim=self.dim):
            self._account_round()
            total = np.zeros(self.dim)
            count = 0
            results = self._worker_results(
                partial(_worker_gradient, loss, w), site="cluster.gradient"
            )
            for grad, n in results:
                total += grad
                count += n
            return total / count

    def global_loss(self, loss: Loss, w: np.ndarray) -> float:
        with span("cluster.loss", workers=self.num_workers, dim=self.dim):
            self._account_round()
            total = 0.0
            count = 0
            results = self._worker_results(
                partial(_worker_loss, loss, w), site="cluster.loss"
            )
            for value, n in results:
                total += value
                count += n
            return total / count

"""A simulated data-parallel cluster with communication accounting.

Workers hold disjoint row shards and answer gradient/loss requests; the
cluster driver implements bulk-synchronous rounds (broadcast weights,
gather partial gradients, average). The simulation's primary purpose is
to measure the *communication volume* and *convergence per round* that
distinguish distributed strategies, which are scheduling-independent
quantities — but workers can optionally execute their local compute
concurrently on the shared worker pool (``parallel=True``), while the
communication ledger and the reduced results stay deterministic:
partials are always combined in worker order.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..errors import ReproError
from ..ml.losses import Loss
from ..obs import get_registry, span
from ..runtime.parallel import ParallelContext, resolve_context
from .partition import Partition, partition_rows


def _worker_gradient(
    loss: Loss, w: np.ndarray, worker: "Worker"
) -> tuple[np.ndarray, int]:
    return worker.gradient_sum(loss, w)


def _worker_loss(loss: Loss, w: np.ndarray, worker: "Worker") -> tuple[float, int]:
    return worker.loss_sum(loss, w)

BYTES_PER_FLOAT = 8


@dataclass
class CommStats:
    """Cumulative communication ledger."""

    rounds: int = 0
    messages: int = 0
    bytes_broadcast: int = 0  # driver -> workers
    bytes_gathered: int = 0  # workers -> driver

    @property
    def total_bytes(self) -> int:
        return self.bytes_broadcast + self.bytes_gathered


class Worker:
    """One worker: a shard of rows plus local compute."""

    def __init__(self, worker_id: int, X: np.ndarray, y: np.ndarray):
        self.worker_id = worker_id
        self.X = X
        self.y = y
        self.gradient_evaluations = 0

    @property
    def num_rows(self) -> int:
        return len(self.y)

    def gradient_sum(self, loss: Loss, w: np.ndarray) -> tuple[np.ndarray, int]:
        """Sum (not mean) of example gradients, plus the example count."""
        self.gradient_evaluations += 1
        grad = loss.gradient(self.X, self.y, w) * self.num_rows
        return grad, self.num_rows

    def loss_sum(self, loss: Loss, w: np.ndarray) -> tuple[float, int]:
        return loss.value(self.X, self.y, w) * self.num_rows, self.num_rows

    def minibatch_gradient(
        self, loss: Loss, w: np.ndarray, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Mean gradient on a random local mini-batch."""
        self.gradient_evaluations += 1
        take = min(batch_size, self.num_rows)
        idx = rng.choice(self.num_rows, size=take, replace=False)
        return loss.gradient(self.X[idx], self.y[idx], w)


class SimulatedCluster:
    """Workers plus a BSP driver."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        num_workers: int,
        scheme: str = "random",
        seed: int | None = 0,
        parallel: bool | ParallelContext = False,
        context: ParallelContext | None = None,
    ):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y):
            raise ReproError(f"X has {len(X)} rows but y has {len(y)}")
        self.partitions: list[Partition] = partition_rows(
            len(X), num_workers, scheme, seed
        )
        self.workers = [
            Worker(p.worker_id, X[p.indices], y[p.indices])
            for p in self.partitions
        ]
        self.dim = X.shape[1]
        self.n_rows = len(X)
        self.comm = CommStats()
        self._parallel_ctx = resolve_context(parallel, context)

    def _worker_results(self, fn, site: str) -> list:
        """Run one request per worker, optionally concurrently.

        Results come back in worker order either way, so downstream
        reductions are deterministic.
        """
        ctx = self._parallel_ctx
        if ctx is not None and self.num_workers > 1:
            return ctx.pmap(
                fn,
                self.workers,
                cost_hint=2.0 * self.n_rows * self.dim,
                site=site,
            )
        return [fn(worker) for worker in self.workers]

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _account_round(self) -> None:
        """One BSP round: broadcast w down, gather one vector per worker.

        The per-cluster :class:`CommStats` ledger stays the API callers
        read; the same quantities accumulate in the global ``cluster.*``
        metrics so run reports see communication across all clusters.
        """
        self.comm.rounds += 1
        self.comm.messages += 2 * self.num_workers
        vector_bytes = self.dim * BYTES_PER_FLOAT
        self.comm.bytes_broadcast += vector_bytes * self.num_workers
        self.comm.bytes_gathered += vector_bytes * self.num_workers
        registry = get_registry()
        registry.inc("cluster.rounds")
        registry.inc("cluster.messages", 2 * self.num_workers)
        registry.inc(
            "cluster.bytes_broadcast", vector_bytes * self.num_workers
        )
        registry.inc("cluster.bytes_gathered", vector_bytes * self.num_workers)

    def global_gradient(self, loss: Loss, w: np.ndarray) -> np.ndarray:
        """Exact full-data mean gradient via one BSP round."""
        with span("cluster.gradient", workers=self.num_workers, dim=self.dim):
            self._account_round()
            total = np.zeros(self.dim)
            count = 0
            results = self._worker_results(
                partial(_worker_gradient, loss, w), site="cluster.gradient"
            )
            for grad, n in results:
                total += grad
                count += n
            return total / count

    def global_loss(self, loss: Loss, w: np.ndarray) -> float:
        with span("cluster.loss", workers=self.num_workers, dim=self.dim):
            self._account_round()
            total = 0.0
            count = 0
            results = self._worker_results(
                partial(_worker_loss, loss, w), site="cluster.loss"
            )
            for value, n in results:
                total += value
                count += n
            return total / count

"""Learning over normalized data: factorized ML.

* :class:`NormalizedMatrix` — Morpheus-style factorized linear algebra
  over a star schema (matvec / rmatvec / Gram without the join);
* :class:`FactorizedLinearRegression` / :class:`FactorizedLogisticRegression`
  — Orion-style join-free GLM training;
* :mod:`.hamlet` — schema-statistics rules for when to skip the join
  entirely.
"""

from .hamlet import (
    DEFAULT_TUPLE_RATIO_THRESHOLD,
    AvoidanceReport,
    JoinDecision,
    decide_joins,
    evaluate_join_avoidance,
    risk_bound,
    tuple_ratio_rule,
)
from .kmeans import FactorizedKMeansResult, factorized_kmeans
from .normalized import NormalizedMatrix
from .orion import FactorizedLinearRegression, FactorizedLogisticRegression

__all__ = [
    "DEFAULT_TUPLE_RATIO_THRESHOLD",
    "AvoidanceReport",
    "FactorizedKMeansResult",
    "FactorizedLinearRegression",
    "FactorizedLogisticRegression",
    "JoinDecision",
    "NormalizedMatrix",
    "decide_joins",
    "factorized_kmeans",
    "evaluate_join_avoidance",
    "risk_bound",
    "tuple_ratio_rule",
]

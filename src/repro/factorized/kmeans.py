"""Factorized k-means over normalized data (a Morpheus application).

Every piece of Lloyd's algorithm reduces to the NormalizedMatrix
kernels, so clustering never materializes the join either:

* distances need ``sq_rowsums(X)`` and ``X @ C.T``  (gathered per block);
* the centroid update is ``X.T @ M / counts`` with M the one-hot
  assignment matrix (grouped scatter-adds per block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FactorizationError
from .normalized import NormalizedMatrix


@dataclass
class FactorizedKMeansResult:
    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    inertia_history: list[float] = field(default_factory=list)


def factorized_kmeans(
    X: NormalizedMatrix,
    n_clusters: int,
    max_iter: int = 100,
    tol: float = 1e-7,
    seed: int | None = 0,
) -> FactorizedKMeansResult:
    """Lloyd's algorithm executed entirely on the normalized matrix."""
    if not isinstance(X, NormalizedMatrix):
        raise FactorizationError(
            f"expected a NormalizedMatrix, got {type(X).__name__}"
        )
    n, d = X.shape
    if not 1 <= n_clusters <= n:
        raise FactorizationError(
            f"n_clusters must be in [1, {n}], got {n_clusters}"
        )

    rng = np.random.default_rng(seed)
    # Seed centroids from materialized sample rows (k rows only).
    seed_rows = rng.choice(n, size=n_clusters, replace=False)
    centers = _gather_rows(X, seed_rows)

    x_sq = X.sq_rowsums()  # constant across iterations
    labels = np.zeros(n, dtype=np.int64)
    history: list[float] = []
    it = 0
    for it in range(1, max_iter + 1):
        labels, d2 = _assign(X, x_sq, centers)
        history.append(float(d2.sum()))

        onehot = np.zeros((n, n_clusters))
        onehot[np.arange(n), labels] = 1.0
        counts = onehot.sum(axis=0)
        sums = X.rmatmat(onehot)  # (d, k) without the join
        new_centers = centers.copy()
        nonempty = counts > 0
        new_centers[nonempty] = (sums[:, nonempty] / counts[nonempty]).T
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if shift <= tol:
            break

    labels, d2 = _assign(X, x_sq, centers)
    return FactorizedKMeansResult(
        centers=centers,
        labels=labels,
        inertia=float(d2.sum()),
        iterations=it,
        inertia_history=history,
    )


def _assign(
    X: NormalizedMatrix, x_sq: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    cross = X.matmat(centers.T)  # (n, k) via factorized matmat
    c_sq = np.einsum("ij,ij->i", centers, centers)
    d2 = np.maximum(x_sq[:, None] - 2.0 * cross + c_sq, 0.0)
    labels = np.argmin(d2, axis=1)
    return labels, d2[np.arange(len(labels)), labels]


def _gather_rows(X: NormalizedMatrix, rows: np.ndarray) -> np.ndarray:
    """Materialize just the requested logical rows (for seeding)."""
    parts = []
    if X.S is not None:
        parts.append(X.S[rows])
    for fk, R in zip(X.fks, X.Rs):
        parts.append(R[fk[rows]])
    return np.hstack(parts)

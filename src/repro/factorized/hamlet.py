"""Join avoidance for feature selection (Hamlet).

Hamlet's observation: in a key–foreign-key join, the foreign key
*functionally determines* every attribute-table feature, so from an
information standpoint the FK column already carries everything R can
contribute. When the tuple ratio n_S / n_R is large, replacing R's
features with nothing (or with the FK itself) rarely hurts accuracy —
and the decision can be made from *schema statistics alone*, before any
training.

This module provides the decision rules (the conservative tuple-ratio
heuristic and the VC-dimension-style risk bound) and an empirical
evaluator that measures the accuracy actually given up by avoiding the
join (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.generators import StarSchema
from ..errors import FactorizationError
from ..ml.logreg import LogisticRegression
from ..ml.preprocessing import train_test_split

#: Hamlet's conservative default: avoid the join when n_S / n_R >= 20.
DEFAULT_TUPLE_RATIO_THRESHOLD = 20.0


@dataclass
class JoinDecision:
    """Outcome of a join-avoidance rule for one attribute table."""

    avoid: bool
    tuple_ratio: float
    risk_bound: float
    reason: str


def tuple_ratio_rule(
    n_s: int,
    n_r: int,
    threshold: float = DEFAULT_TUPLE_RATIO_THRESHOLD,
) -> JoinDecision:
    """The conservative tuple-ratio rule.

    Avoid the join when each attribute-table row is referenced by at
    least ``threshold`` entity rows on average: with that much
    replication, the FK column gives the learner as much resolution as
    the R features while the R features mostly add variance.
    """
    if n_s < 1 or n_r < 1:
        raise FactorizationError("table sizes must be positive")
    ratio = n_s / n_r
    avoid = ratio >= threshold
    return JoinDecision(
        avoid=avoid,
        tuple_ratio=ratio,
        risk_bound=risk_bound(n_s, n_r),
        reason=(
            f"tuple ratio {ratio:.1f} {'>=' if avoid else '<'} "
            f"threshold {threshold:.1f}"
        ),
    )


def risk_bound(n_s: int, n_r: int) -> float:
    """Hamlet-style excess-risk proxy for using the FK as a feature.

    Treating the FK as a categorical feature with n_r values adds
    hypothesis-space capacity ~ n_r; the standard deviation-style bound
    sqrt(n_r / n_s) shrinks as the tuple ratio grows. Small bound =>
    safe to avoid the join.
    """
    return float(np.sqrt(n_r / n_s))


def decide_joins(
    n_s: int,
    attribute_table_sizes: list[int],
    threshold: float = DEFAULT_TUPLE_RATIO_THRESHOLD,
) -> list[JoinDecision]:
    """Apply the rule to every attribute table of a star schema."""
    return [tuple_ratio_rule(n_s, n_r, threshold) for n_r in attribute_table_sizes]


@dataclass
class AvoidanceReport:
    """Empirical accuracy comparison for one star-schema dataset."""

    accuracy_with_join: float
    accuracy_no_join: float
    accuracy_fk_onehot: float
    decision: JoinDecision

    @property
    def accuracy_drop(self) -> float:
        """Accuracy lost by dropping R features entirely."""
        return self.accuracy_with_join - self.accuracy_no_join

    @property
    def decision_was_safe(self, tolerance: float = 0.02) -> bool:
        """Did avoiding the join (if recommended) cost < ``tolerance``?"""
        if not self.decision.avoid:
            return True
        best_avoided = max(self.accuracy_no_join, self.accuracy_fk_onehot)
        return (self.accuracy_with_join - best_avoided) <= tolerance


def evaluate_join_avoidance(
    star: StarSchema,
    threshold: float = DEFAULT_TUPLE_RATIO_THRESHOLD,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> AvoidanceReport:
    """Train three models and compare:

    1. with join — features [S, R[fk]];
    2. no join   — features [S] only;
    3. FK one-hot — features [S, onehot(fk)] (the Hamlet substitute).
    """
    y = star.y
    if len(np.unique(y)) != 2:
        raise FactorizationError(
            "evaluate_join_avoidance requires a binary-classification star "
            "schema (use make_star_schema(task='classification'))"
        )

    with_join = star.materialize()
    no_join = star.S
    onehot = np.zeros((len(star.S), len(star.R)))
    onehot[np.arange(len(star.S)), star.fk] = 1.0
    fk_onehot = np.hstack([star.S, onehot])

    accuracies = []
    for features in (with_join, no_join, fk_onehot):
        X_tr, X_te, y_tr, y_te = train_test_split(
            features, y, test_fraction=test_fraction, seed=seed
        )
        model = LogisticRegression(solver="gd", l2=1e-3, max_iter=100)
        model.fit(X_tr, y_tr)
        accuracies.append(model.score(X_te, y_te))

    return AvoidanceReport(
        accuracy_with_join=accuracies[0],
        accuracy_no_join=accuracies[1],
        accuracy_fk_onehot=accuracies[2],
        decision=tuple_ratio_rule(len(star.S), len(star.R), threshold),
    )

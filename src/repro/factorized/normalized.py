"""The normalized matrix: linear algebra over a star schema without joining.

A :class:`NormalizedMatrix` represents the design matrix of a key–foreign
key join ``[S, R1[fk1], R2[fk2], ...]`` *logically*, while physically
keeping the entity table S and each attribute table R_i separate. The
Morpheus rewrites implement matrix ops on this form:

* ``X @ v``    — multiply each R_i once (n_r rows), then *gather* by fk;
* ``X.T @ u``  — *scatter-add* u by fk (group sums), then multiply R_i.T;
* ``X.T @ X``  — block Gram matrix from group counts and group sums.

The arithmetic redundancy avoided is exactly the join's tuple
multiplication: each R row is touched once instead of once per matching
S row.
"""

from __future__ import annotations

import numpy as np

from ..errors import FactorizationError


class NormalizedMatrix:
    """Design matrix of a star-schema join, kept factorized."""

    def __init__(
        self,
        S: np.ndarray | None,
        fks: list[np.ndarray],
        Rs: list[np.ndarray],
    ):
        if len(fks) != len(Rs):
            raise FactorizationError(
                f"{len(fks)} foreign-key vectors for {len(Rs)} attribute tables"
            )
        if S is None and not Rs:
            raise FactorizationError("normalized matrix needs S or at least one R")

        self.Rs = [np.asarray(R, dtype=np.float64) for R in Rs]
        self.fks = [np.asarray(fk, dtype=np.int64) for fk in fks]

        lengths = {len(fk) for fk in self.fks}
        if S is not None:
            S = np.asarray(S, dtype=np.float64)
            if S.ndim != 2:
                raise FactorizationError(f"S must be 2-D, got shape {S.shape}")
            lengths.add(len(S))
        if len(lengths) != 1:
            raise FactorizationError(
                f"S and foreign keys disagree on row count: {sorted(lengths)}"
            )
        self.S = S
        self.n_rows = lengths.pop()

        for i, (fk, R) in enumerate(zip(self.fks, self.Rs)):
            if R.ndim != 2:
                raise FactorizationError(f"R[{i}] must be 2-D, got {R.shape}")
            if len(fk) and (fk.min() < 0 or fk.max() >= len(R)):
                raise FactorizationError(
                    f"fk[{i}] references rows outside R[{i}] (0..{len(R) - 1})"
                )

    # ------------------------------------------------------------------
    # Shape / statistics
    # ------------------------------------------------------------------
    @property
    def d_s(self) -> int:
        return self.S.shape[1] if self.S is not None else 0

    @property
    def d_rs(self) -> list[int]:
        return [R.shape[1] for R in self.Rs]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.d_s + sum(self.d_rs))

    @property
    def tuple_ratios(self) -> list[float]:
        """n_S / n_Ri per attribute table: the redundancy multiplier."""
        return [self.n_rows / len(R) for R in self.Rs]

    def column_offsets(self) -> list[int]:
        """Start column of S and of each R_i in the logical design matrix."""
        offsets = [0]
        cursor = self.d_s
        for d in self.d_rs:
            offsets.append(cursor)
            cursor += d
        return offsets

    # ------------------------------------------------------------------
    # Factorized kernels (the Morpheus rewrites)
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """X @ v without materializing the join."""
        v = np.asarray(v, dtype=np.float64).reshape(-1)
        if len(v) != self.shape[1]:
            raise FactorizationError(
                f"vector length {len(v)} != num columns {self.shape[1]}"
            )
        out = np.zeros(self.n_rows)
        cursor = 0
        if self.S is not None:
            out += self.S @ v[: self.d_s]
            cursor = self.d_s
        for fk, R in zip(self.fks, self.Rs):
            d = R.shape[1]
            partial = R @ v[cursor : cursor + d]  # one product per R row
            out += partial[fk]  # gather
            cursor += d
        return out

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """X.T @ u without materializing the join."""
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if len(u) != self.n_rows:
            raise FactorizationError(
                f"vector length {len(u)} != num rows {self.n_rows}"
            )
        parts = []
        if self.S is not None:
            parts.append(self.S.T @ u)
        for fk, R in zip(self.fks, self.Rs):
            grouped = np.bincount(fk, weights=u, minlength=len(R))  # scatter-add
            parts.append(R.T @ grouped)
        return np.concatenate(parts) if parts else np.empty(0)

    def matmat(self, V: np.ndarray) -> np.ndarray:
        """X @ V for a dense (d, k) matrix, one gather per block.

        The multi-column generalization of :meth:`matvec`: each attribute
        table is multiplied once per output column instead of once per
        joined row.
        """
        V = np.asarray(V, dtype=np.float64)
        if V.ndim == 1:
            return self.matvec(V)
        if V.shape[0] != self.shape[1]:
            raise FactorizationError(
                f"shape mismatch: {self.shape} @ {V.shape}"
            )
        out = np.zeros((self.n_rows, V.shape[1]))
        cursor = 0
        if self.S is not None:
            out += self.S @ V[: self.d_s]
            cursor = self.d_s
        for fk, R in zip(self.fks, self.Rs):
            d = R.shape[1]
            partial = R @ V[cursor : cursor + d]  # (n_r, k)
            out += partial[fk]
            cursor += d
        return out

    def rmatmat(self, U: np.ndarray) -> np.ndarray:
        """X.T @ U for a dense (n, k) matrix via grouped scatter-adds."""
        U = np.asarray(U, dtype=np.float64)
        if U.ndim == 1:
            return self.rmatvec(U)
        if U.shape[0] != self.n_rows:
            raise FactorizationError(
                f"shape mismatch: X.T ({self.shape[1]}, {self.n_rows}) @ {U.shape}"
            )
        parts = []
        if self.S is not None:
            parts.append(self.S.T @ U)
        for fk, R in zip(self.fks, self.Rs):
            grouped = np.zeros((len(R), U.shape[1]))
            np.add.at(grouped, fk, U)
            parts.append(R.T @ grouped)
        return np.vstack(parts) if parts else np.empty((0, U.shape[1]))

    def sq_rowsums(self) -> np.ndarray:
        """Row sums of the squared logical design matrix.

        Per-row squared norms without the join: attribute-table rows'
        squared norms are computed once and gathered — the quantity
        factorized k-means needs every iteration.
        """
        out = np.zeros(self.n_rows)
        if self.S is not None:
            out += np.einsum("ij,ij->i", self.S, self.S)
        for fk, R in zip(self.fks, self.Rs):
            r_norms = np.einsum("ij,ij->i", R, R)
            out += r_norms[fk]
        return out

    def gram(self) -> np.ndarray:
        """X.T @ X assembled blockwise from group counts and sums.

        Blocks:
          * S'S                    — dense product on S only;
          * S'(K_i R_i)            — group-sum S rows by fk_i, multiply R_i;
          * (K_i R_i)'(K_i R_i)    — R_i' diag(counts_i) R_i;
          * (K_i R_i)'(K_j R_j)    — co-occurrence counts between fk_i, fk_j.
        """
        d = self.shape[1]
        out = np.zeros((d, d))
        offsets = self.column_offsets()

        if self.S is not None:
            out[: self.d_s, : self.d_s] = self.S.T @ self.S

        for i, (fk_i, R_i) in enumerate(zip(self.fks, self.Rs)):
            oi = offsets[i + 1]
            di = R_i.shape[1]
            counts = np.bincount(fk_i, minlength=len(R_i)).astype(np.float64)

            # Diagonal block: R' diag(counts) R.
            out[oi : oi + di, oi : oi + di] = (R_i.T * counts) @ R_i

            # Cross block with S: group-sum S rows per R_i key.
            if self.S is not None:
                group_sums = np.zeros((len(R_i), self.d_s))
                np.add.at(group_sums, fk_i, self.S)
                cross = group_sums.T @ R_i  # (d_s, di)
                out[: self.d_s, oi : oi + di] = cross
                out[oi : oi + di, : self.d_s] = cross.T

            # Cross blocks with other attribute tables.
            for j in range(i + 1, len(self.Rs)):
                fk_j, R_j = self.fks[j], self.Rs[j]
                oj = offsets[j + 1]
                dj = R_j.shape[1]
                cooc = np.zeros((len(R_i), len(R_j)))
                np.add.at(cooc, (fk_i, fk_j), 1.0)
                cross = R_i.T @ cooc @ R_j  # (di, dj)
                out[oi : oi + di, oj : oj + dj] = cross
                out[oj : oj + dj, oi : oi + di] = cross.T
        return out

    def colsums(self) -> np.ndarray:
        """Column sums of the logical design matrix."""
        parts = []
        if self.S is not None:
            parts.append(self.S.sum(axis=0))
        for fk, R in zip(self.fks, self.Rs):
            counts = np.bincount(fk, minlength=len(R)).astype(np.float64)
            parts.append(counts @ R)
        return np.concatenate(parts)

    def rowsums(self) -> np.ndarray:
        """Row sums of the logical design matrix, computed factorized."""
        out = np.zeros(self.n_rows)
        if self.S is not None:
            out += self.S.sum(axis=1)
        for fk, R in zip(self.fks, self.Rs):
            out += R.sum(axis=1)[fk]
        return out

    def sum(self) -> float:
        """Sum of every logical cell."""
        return float(self.colsums().sum())

    def sq_sum(self) -> float:
        """Sum of squared logical cells (via per-table norms + counts)."""
        total = 0.0
        if self.S is not None:
            total += float(np.einsum("ij,ij->", self.S, self.S))
        for fk, R in zip(self.fks, self.Rs):
            counts = np.bincount(fk, minlength=len(R)).astype(np.float64)
            total += float(counts @ np.einsum("ij,ij->i", R, R))
        return total

    # ------------------------------------------------------------------
    # Elementwise value rewrites (no join)
    # ------------------------------------------------------------------
    def map_values(self, fn) -> "NormalizedMatrix":
        """New normalized matrix with ``fn`` applied to every logical cell.

        Elementwise maps commute with the fk gather, so applying ``fn``
        to S and each R_i once is exact — n_r-sized work instead of
        n_s-sized. ``fn`` must be a vectorized elementwise map.
        """
        S = fn(self.S) if self.S is not None else None
        return NormalizedMatrix(S, self.fks, [fn(R) for R in self.Rs])

    def scale(self, alpha: float) -> "NormalizedMatrix":
        """alpha * X on the factorized form."""
        alpha = float(alpha)
        return self.map_values(lambda values: values * alpha)

    def add_scalar(self, c: float) -> "NormalizedMatrix":
        """X + c on the factorized form."""
        c = float(c)
        return self.map_values(lambda values: values + c)

    def materialize(self) -> np.ndarray:
        """The denormalized design matrix (what the join would produce)."""
        parts = []
        if self.S is not None:
            parts.append(self.S)
        for fk, R in zip(self.fks, self.Rs):
            parts.append(R[fk])
        return np.hstack(parts)

    def to_dense(self) -> np.ndarray:
        """Uniform operand-protocol alias for :meth:`materialize`."""
        return self.materialize()

    def __matmul__(self, other):
        other = np.asarray(other, dtype=np.float64)
        return self.matvec(other) if other.ndim == 1 else self.matmat(other)

    # ------------------------------------------------------------------
    # Cost accounting (used by benchmarks and the crossover analysis)
    # ------------------------------------------------------------------
    def factorized_matvec_flops(self) -> int:
        flops = 0
        if self.S is not None:
            flops += 2 * self.n_rows * self.d_s
        for R in self.Rs:
            flops += 2 * R.shape[0] * R.shape[1] + self.n_rows
        return flops

    def materialized_matvec_flops(self) -> int:
        return 2 * self.n_rows * self.shape[1]

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the factorized tables + foreign-key vectors."""
        total = self.S.nbytes if self.S is not None else 0
        for fk, R in zip(self.fks, self.Rs):
            total += fk.nbytes + R.nbytes
        return total

    @property
    def redundancy_ratio(self) -> float:
        """Materialized cells / factorized cells (>1 means savings)."""
        factorized = (self.n_rows * self.d_s if self.S is not None else 0) + sum(
            R.size for R in self.Rs
        )
        return (self.n_rows * self.shape[1]) / max(factorized, 1)

"""Factorized GLM training over normalized data (Orion).

The estimators here accept a :class:`~repro.factorized.normalized.NormalizedMatrix`
and train *without ever materializing the join*: linear regression via the
factorized Gram matrix, logistic regression via factorized
matvec/rmatvec inside gradient descent. They expose the same fitted
attributes as their dense counterparts in :mod:`repro.ml`, so results are
directly comparable (experiment E1).
"""

from __future__ import annotations

import numpy as np

from ..errors import FactorizationError, ModelError, NotFittedError
from ..ml.losses import sigmoid
from .normalized import NormalizedMatrix


class FactorizedLinearRegression:
    """Least squares over a normalized matrix via the factorized Gram.

    Solves (X'X + l2 I) w = X'y where X'X comes from
    :meth:`NormalizedMatrix.gram` and X'y from
    :meth:`NormalizedMatrix.rmatvec` — join-free normal equations.
    """

    def __init__(self, l2: float = 0.0):
        self.l2 = l2

    def fit(self, X: NormalizedMatrix, y: np.ndarray) -> "FactorizedLinearRegression":
        _check_normalized(X, y)
        y = np.asarray(y, dtype=np.float64)
        gram = X.gram()
        if self.l2 > 0:
            gram = gram + self.l2 * np.eye(gram.shape[0])
        rhs = X.rmatvec(y)
        try:
            self.coef_ = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            self.coef_ = np.linalg.pinv(gram) @ rhs
        return self

    def predict(self, X: NormalizedMatrix | np.ndarray) -> np.ndarray:
        if not hasattr(self, "coef_"):
            raise NotFittedError("fit must be called before predict")
        if isinstance(X, NormalizedMatrix):
            return X.matvec(self.coef_)
        return np.asarray(X, dtype=np.float64) @ self.coef_

    def score(self, X: NormalizedMatrix | np.ndarray, y: np.ndarray) -> float:
        from ..ml.metrics import r2_score

        return r2_score(np.asarray(y), self.predict(X))


class FactorizedLogisticRegression:
    """Logistic regression trained by factorized gradient descent.

    Each iteration computes margins with :meth:`NormalizedMatrix.matvec`
    and the gradient with :meth:`NormalizedMatrix.rmatvec` — the Orion
    pattern: per-iteration cost scales with |S| + |R|, not |join|.
    """

    def __init__(
        self,
        l2: float = 0.0,
        learning_rate: float = 1.0,
        max_iter: int = 200,
        tol: float = 1e-7,
    ):
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X: NormalizedMatrix, y: np.ndarray) -> "FactorizedLogisticRegression":
        _check_normalized(X, y)
        y = np.asarray(y)
        classes = np.unique(y)
        if len(classes) != 2:
            raise ModelError(f"need exactly 2 classes, got {len(classes)}")
        self.classes_ = classes
        y_pm = np.where(y == classes[1], 1.0, -1.0)

        n = X.n_rows
        w = np.zeros(X.shape[1])
        previous = self._loss(X, y_pm, w)
        self.loss_history_ = [previous]
        for it in range(1, self.max_iter + 1):
            margins = y_pm * X.matvec(w)
            coeff = -y_pm * sigmoid(-margins)
            grad = X.rmatvec(coeff) / n + self.l2 * w
            # Backtracking line search on the factorized loss.
            step = self.learning_rate
            for _ in range(30):
                candidate = w - step * grad
                loss = self._loss(X, y_pm, candidate)
                if loss <= previous - 1e-4 * step * float(grad @ grad):
                    break
                step *= 0.5
            else:
                candidate, loss = w, previous
            w = candidate
            self.loss_history_.append(loss)
            if abs(previous - loss) / max(abs(previous), 1e-12) < self.tol:
                break
            previous = loss
        self.coef_ = w
        self.n_iter_ = it
        return self

    def _loss(self, X: NormalizedMatrix, y_pm: np.ndarray, w: np.ndarray) -> float:
        margins = y_pm * X.matvec(w)
        value = float(np.mean(np.logaddexp(0.0, -margins)))
        if self.l2 > 0:
            value += 0.5 * self.l2 * float(w @ w)
        return value

    def decision_function(self, X: NormalizedMatrix | np.ndarray) -> np.ndarray:
        if not hasattr(self, "coef_"):
            raise NotFittedError("fit must be called before predict")
        if isinstance(X, NormalizedMatrix):
            return X.matvec(self.coef_)
        return np.asarray(X, dtype=np.float64) @ self.coef_

    def predict_proba(self, X: NormalizedMatrix | np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(X))

    def predict(self, X: NormalizedMatrix | np.ndarray) -> np.ndarray:
        p = self.predict_proba(X)
        return np.where(p >= 0.5, self.classes_[1], self.classes_[0])

    def score(self, X: NormalizedMatrix | np.ndarray, y: np.ndarray) -> float:
        from ..ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))


def _check_normalized(X: NormalizedMatrix, y: np.ndarray) -> None:
    if not isinstance(X, NormalizedMatrix):
        raise FactorizationError(
            f"expected a NormalizedMatrix, got {type(X).__name__}"
        )
    y = np.asarray(y)
    if y.ndim != 1 or len(y) != X.n_rows:
        raise FactorizationError(
            f"y must be 1-D with {X.n_rows} entries, got shape {y.shape}"
        )

"""Unified observability: tracing + metrics across every runtime layer.

The surveyed systems drive their optimizers from runtime statistics —
SystemML re-compiles on observed sparsity, Bismarck balances partitions
on observed timings, selection managers budget on observed costs. This
package is the one substrate those statistics flow through here:

* :func:`span` — nested timed spans (``with span("executor.matmul",
  rows=n):``), gated by ``REPRO_TRACE`` / :func:`set_tracing`; off by
  default and nearly free when off.
* :func:`counter` / :func:`gauge` / :func:`histogram` and the one-shot
  :func:`inc` / :func:`set_gauge` / :func:`observe` — typed metrics in
  the process-global, thread-safe, resettable :class:`MetricsRegistry`.
* :func:`report` / :func:`write_report` — one JSON document holding the
  span trees and every metric; what CI's regression gate reads.
* :func:`reset` — clear spans + metrics (tests do this between cases).

Instrumented layers: DSL executor, parallel engine, buffer pool /
block store, UDA driver, compression planner, simulated cluster, and
grid/random search. The pre-existing per-instance stats objects
(``ExecutionStats``, ``ParallelStats``, ``PoolStats``, ``CommStats``)
are unchanged views of single runs; they now dual-write into the
registry so one exporter sees everything.
"""

from .metrics import (
    RESERVOIR_SIZE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_metrics,
)
from .report import SCHEMA, report, reset, write_report
from .trace import (
    MAX_ROOT_SPANS,
    Span,
    annotate,
    current_span,
    dropped_span_count,
    reset_trace,
    set_tracing,
    span,
    span_roots,
    tracing_enabled,
)


def counter(name: str) -> Counter:
    """The named counter in the global registry (created on first use)."""
    return get_registry().counter(name)


def gauge(name: str) -> Gauge:
    return get_registry().gauge(name)


def histogram(name: str) -> Histogram:
    return get_registry().histogram(name)


def inc(name: str, amount: float = 1.0) -> None:
    """Increment the named global counter."""
    get_registry().inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    get_registry().set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Add one observation to the named global histogram."""
    get_registry().observe(name, value)


def metric_value(name: str, default: float = 0.0) -> float:
    """Read a counter/gauge value (histograms: mean) without creating it."""
    return get_registry().value(name, default)


__all__ = [
    "MAX_ROOT_SPANS",
    "RESERVOIR_SIZE",
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "annotate",
    "counter",
    "current_span",
    "dropped_span_count",
    "gauge",
    "get_registry",
    "histogram",
    "inc",
    "metric_value",
    "observe",
    "report",
    "reset",
    "reset_metrics",
    "reset_trace",
    "set_gauge",
    "set_tracing",
    "span",
    "span_roots",
    "tracing_enabled",
    "write_report",
]

"""JSON run-report exporter: span trees + metrics in one document.

The report is the machine-readable contract CI gates on
(``benchmarks/check_regression.py``) and the artifact
``run_experiments.py --report`` uploads per experiment. Schema::

    {
      "schema": "repro.obs/v1",
      "tracing": bool,            # was REPRO_TRACE / set_tracing on?
      "spans": [ <span tree>* ],  # empty when tracing is off
      "dropped_spans": int,
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

Each span tree node: ``{"name", "duration_s", "status", "attrs"?,
"error"?, "thread"?, "children"?}``.
"""

from __future__ import annotations

import json
from typing import Any

from .metrics import get_registry, reset_metrics
from .trace import dropped_span_count, reset_trace, span_roots, tracing_enabled

SCHEMA = "repro.obs/v1"


def report() -> dict[str, Any]:
    """Serialize the current spans + metrics (JSON-safe, no side effects)."""
    return {
        "schema": SCHEMA,
        "tracing": tracing_enabled(),
        "spans": [root.as_dict() for root in span_roots()],
        "dropped_spans": dropped_span_count(),
        "metrics": get_registry().as_dict(),
    }


def write_report(path: str) -> dict[str, Any]:
    """Dump :func:`report` to ``path`` as indented JSON; returns the dict."""
    doc = report()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


def reset() -> None:
    """Clear spans and metrics (the between-runs / between-tests hook)."""
    reset_trace()
    reset_metrics()

"""Typed metrics in a process-global, thread-safe, resettable registry.

Every runtime layer (executor, parallel engine, buffer pool, UDA driver,
compression planner, simulated cluster, model selection) publishes into
one :class:`MetricsRegistry` instead of keeping only private counters —
the substrate the surveyed systems' optimizers assume: SystemML's
compiler reads runtime statistics to re-optimize, Bismarck's scheduler
reads partition timings, model-selection managers read per-config costs.

Three metric types:

* :class:`Counter` — monotonically increasing float (``inc``),
* :class:`Gauge` — last-write-wins float (``set``),
* :class:`Histogram` — streaming count/sum/min/max over observations.

All updates are cheap (one small lock per metric) and always on; the
expensive part of observability — span trees — lives in
:mod:`repro.obs.trace` behind the ``REPRO_TRACE`` gate. Each metric also
counts its *updates* so the overhead microbenchmark (E20) can bound the
total instrumentation cost of a run from first principles.
"""

from __future__ import annotations

import math
import threading
from typing import Any

from ..errors import ReproError


class Counter:
    """Monotonic counter. ``inc`` with a negative amount is an error."""

    __slots__ = ("name", "value", "updates", "_lock")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updates = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self.value += amount
            self.updates += 1

    def as_dict(self) -> dict[str, Any]:
        return {"value": self.value, "updates": self.updates}


class Gauge:
    """Last-write-wins value (pool occupancy, sample fraction, ...)."""

    __slots__ = ("name", "value", "updates", "_lock")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updates = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.updates += 1

    def as_dict(self) -> dict[str, Any]:
        return {"value": self.value, "updates": self.updates}


#: number of recent observations a histogram keeps for percentiles.
RESERVOIR_SIZE = 512


class Histogram:
    """Streaming summary: count, sum, min, max (mean derived), plus
    nearest-rank percentiles over a bounded window of the most recent
    :data:`RESERVOIR_SIZE` observations (a deterministic ring buffer —
    no sampling randomness, so two identical runs report identical
    p50/p95/p99)."""

    __slots__ = ("name", "count", "total", "min", "max", "updates",
                 "_samples", "_next_slot", "_lock")

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.updates = 0
        self._samples: list[float] = []
        self._next_slot = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) < RESERVOIR_SIZE:
                self._samples.append(value)
            else:
                self._samples[self._next_slot] = value
                self._next_slot = (self._next_slot + 1) % RESERVOIR_SIZE
            self.updates += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def samples(self) -> list[float]:
        """The retained window in observation order (oldest first).

        Streaming consumers (the drift monitor) fold these into their
        own frozen-bucket state; the ring is deterministic, so two
        identical runs hand back identical windows.
        """
        with self._lock:
            if len(self._samples) < RESERVOIR_SIZE or self._next_slot == 0:
                return list(self._samples)
            return self._samples[self._next_slot:] + self._samples[: self._next_slot]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the window."""
        if not 0.0 <= q <= 100.0:
            raise ReproError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * len(samples)))
        return samples[rank - 1]

    def as_dict(self) -> dict[str, Any]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": 0.0, "updates": self.updates}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "updates": self.updates,
        }


class MetricsRegistry:
    """Name -> metric map; creation is locked, updates lock per metric.

    Metric names are dot-separated (``"bufferpool.hits"``). Requesting an
    existing name with a different type raises — a name means one thing.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # Convenience one-shots (the call shape instrumentation sites use).
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter/gauge (0 observations -> default)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.mean
        return metric.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def total_updates(self) -> int:
        """Total metric updates since the last reset (E20's event count)."""
        return sum(m.updates for m in list(self._metrics.values()))

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """Serialize grouped by type, names sorted — the report schema."""
        out: dict[str, dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[metric.kind + "s"][name] = metric.as_dict()
        return out


# ----------------------------------------------------------------------
# Process-global registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _registry


def reset_metrics() -> None:
    _registry.reset()

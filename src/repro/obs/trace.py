"""Nested timed spans, gated by ``REPRO_TRACE``.

``with span("executor.matmul", rows=n):`` opens a timed span; spans nest
through a thread-local stack, so the executor's per-operator spans hang
off the surrounding ``execute`` span, which hangs off the experiment
span — a tree the JSON report serializes. A span that exits through an
exception records ``status="error"`` (and the exception repr) before
re-raising, so traces of failed runs still close cleanly.

Tracing defaults to **off** and costs one function call plus a flag test
when off (the E20 microbenchmark bounds this below 3% of an E19 quick
run). Enable with the ``REPRO_TRACE=1`` environment variable or
:func:`set_tracing`; ``set_tracing(None)`` re-reads the environment.

Spans opened on worker threads (the parallel engine's pool) have no
parent on their own stack and are recorded as additional roots, tagged
with the thread name — cross-thread parenting is deliberately not
attempted. Finished root spans are kept up to a bounded count; overflow
increments a drop counter rather than growing without bound.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

#: root spans retained per process between resets; extras are dropped.
MAX_ROOT_SPANS = 1024

_TRUTHY = ("1", "true", "yes", "on")


def _env_tracing() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY


_enabled: bool = _env_tracing()
_state_lock = threading.Lock()
_roots: list["Span"] = []
_dropped_spans = 0
_local = threading.local()


def tracing_enabled() -> bool:
    return _enabled


def set_tracing(enabled: bool | None) -> None:
    """Force tracing on/off; ``None`` restores the ``REPRO_TRACE`` default."""
    global _enabled
    _enabled = _env_tracing() if enabled is None else bool(enabled)


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = (
        "name", "attrs", "start", "end", "status", "error",
        "children", "thread",
    )

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.end: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.children: list[Span] = []
        self.thread = threading.current_thread().name

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on this span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc is not None:
            self.status = "error"
            self.error = repr(exc)
        stack = _stack()
        # Pop defensively: a mis-nested exit (manual __exit__ misuse)
        # must not corrupt the rest of the stack.
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:
            stack.remove(self)
        if stack:
            stack[-1].children.append(self)
        else:
            _record_root(self)
        return None  # never swallow the exception

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        if self.error is not None:
            out["error"] = self.error
        if self.thread != "MainThread":
            out["thread"] = self.thread
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _NoopSpan:
    """Shared do-nothing span for the disabled path (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


def _stack() -> list[Span]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _record_root(root: Span) -> None:
    global _dropped_spans
    with _state_lock:
        if len(_roots) < MAX_ROOT_SPANS:
            _roots.append(root)
        else:
            _dropped_spans += 1


def span(name: str, **attrs: Any):
    """Open a timed span (no-op unless tracing is enabled)."""
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


def current_span() -> Span | None:
    """Innermost active span on this thread, if tracing is enabled."""
    if not _enabled:
        return None
    stack = _stack()
    return stack[-1] if stack else None


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost active span (no-op otherwise)."""
    active = current_span()
    if active is not None:
        active.attrs.update(attrs)


def span_roots() -> list[Span]:
    """Snapshot of finished root spans (insertion order)."""
    with _state_lock:
        return list(_roots)


def dropped_span_count() -> int:
    with _state_lock:
        return _dropped_spans


def reset_trace() -> None:
    """Clear recorded spans and this thread's stack (not the enable flag)."""
    global _dropped_spans
    with _state_lock:
        _roots.clear()
        _dropped_spans = 0
    if getattr(_local, "stack", None):
        _local.stack = []

"""Offline materialization and incremental refresh of feature views.

The offline path computes a :class:`~repro.features.view.FeatureView`
batch-wise through the executor and parks the resulting columns in the
:class:`~repro.materialize.MaterializationStore` under the view's
data-crossed fingerprint, with lineage back to the base-table bytes.
A second materialization of the same definition over the same data is
a store hit — the *same bytes*, not a recomputation — which is what
makes train-time features reproducible artifacts rather than ephemeral
dataframes.

The refresh path (:class:`FeatureViewMaintainer`) subscribes a view to
a :class:`~repro.incremental.DynamicTable` change stream through the
:class:`~repro.incremental.DeltaConsumer` discipline: each delta folds
in O(|delta|) by recomputing features for exactly the touched rows
(row-locality makes the folded bytes identical to a full recompute),
and chaos or version gaps repair by lineage recompute, never silent
staleness.
"""

from __future__ import annotations

import numpy as np

from ..errors import FeatureStoreError
from ..incremental.maintainer import DeltaConsumer
from ..incremental.stream import ChangeStream, Delta, DynamicTable
from ..materialize.store import MaterializationStore
from ..obs import get_registry
from ..resilience import no_chaos
from ..storage.table import Table
from .view import FeatureView


class MaterializedFeatures:
    """One materialized (view, table) result: entities + feature columns.

    Rows are addressed by entity value; every accessor hands back
    copies, so callers can never mutate the materialized bytes.
    """

    def __init__(
        self,
        view: FeatureView,
        key: str,
        entities: np.ndarray,
        columns: dict[str, np.ndarray],
        from_cache: bool,
    ):
        self.view = view
        self.key = key
        self.entities = entities
        self.columns = columns
        self.from_cache = from_cache
        self._positions = {e: i for i, e in enumerate(entities.tolist())}
        # Feature-major matrix assembled once; row() slices out of it.
        self._matrix = np.column_stack(
            [columns[f] for f in view.feature_names]
        ) if len(entities) else np.empty(
            (0, len(view.feature_names)), dtype=np.float64
        )

    @property
    def num_rows(self) -> int:
        return len(self.entities)

    def position(self, entity) -> int:
        pos = self._positions.get(entity)
        if pos is None:
            raise FeatureStoreError(
                f"entity {entity!r} not materialized in view "
                f"{self.view.name!r}"
            )
        return pos

    def row(self, entity) -> np.ndarray:
        """One entity's features, in declaration order (a copy)."""
        return np.array(self._matrix[self.position(entity)], copy=True)

    def slice(self, entities) -> np.ndarray:
        """A (len(entities), F) matrix in the requested entity order."""
        idx = [self.position(e) for e in entities]
        return np.array(self._matrix[idx], copy=True)

    def matrix(self) -> np.ndarray:
        """All rows, storage order (a copy)."""
        return np.array(self._matrix, copy=True)


class FeatureStore:
    """Versioned offline feature materialization over a shared store.

    A directory-less :class:`MaterializationStore` (with the flops
    admission floor lowered to zero — feature tables are cheap per byte
    but expensive to get wrong) is created when none is shared in.
    """

    def __init__(self, store: MaterializationStore | None = None):
        self.store = store if store is not None else MaterializationStore(
            min_flops=0.0
        )
        self.materializations = 0
        self.hits = 0

    def materialize(
        self, view: FeatureView, table: Table
    ) -> MaterializedFeatures:
        """Compute (or re-serve) a view over a table's current bytes."""
        fp = view.fingerprint(table)
        registry = get_registry()
        payload = self.store.lookup(fp)
        if payload is not None:
            self.hits += 1
            registry.inc("features.offline_hits")
            return MaterializedFeatures(
                view, fp.key, payload["entities"], payload["columns"],
                from_cache=True,
            )
        entities = view.entities_of(table)
        columns = view.compute_columns(table)
        nbytes = int(
            sum(c.nbytes for c in columns.values())
            + getattr(entities, "nbytes", 0)
        )
        # Rough executor cost: one elementwise pass per feature per row —
        # enough for eviction ordering; admission is floor-free here.
        flops = float(table.num_rows * len(view.feature_names))
        self.store.put(
            fp,
            {"entities": entities, "columns": columns},
            label=f"features:{view.name}",
            flops=flops,
            structural=view.version,
            children=(fp.operands[0],),
            source="features",
            nbytes=nbytes,
        )
        self.materializations += 1
        registry.inc("features.materializations")
        return MaterializedFeatures(
            view, fp.key, entities, columns, from_cache=False
        )

    def ledger(self) -> dict:
        return {
            "materializations": self.materializations,
            "hits": self.hits,
        }


class FeatureViewMaintainer(DeltaConsumer):
    """Keeps a view's feature rows fresh against a dynamic base table.

    Inherits the full delta discipline (staleness, version gaps, chaos
    at the fault site, checksum verification, lineage recompute) from
    :class:`DeltaConsumer`; folding recomputes features for exactly the
    delta's rows, so refresh cost is O(|delta|) and — by row-locality —
    the refreshed bytes are identical to a full recompute.
    """

    FAULT_SITE = "features.refresh"
    OBS_PREFIX = "features.refresh"

    def __init__(
        self, view: FeatureView, table: DynamicTable, stream: ChangeStream
    ):
        super().__init__(table, stream)
        self.view = view
        self._rebuild()

    # -- delta discipline ----------------------------------------------
    def _fold(self, delta: Delta) -> int:
        folded = 0
        if delta.kind in ("delete", "update"):
            for entity in self.view.entities_of(delta.old_rows).tolist():
                pos = self._positions.pop(entity, None)
                if pos is None:
                    raise FeatureStoreError(
                        f"delta {delta.version} removes unknown entity "
                        f"{entity!r}"
                    )
                self._rows[pos] = None
        if delta.kind in ("insert", "update"):
            entities = self.view.entities_of(delta.rows)
            columns = self.view.compute_columns(delta.rows)
            batch = np.column_stack(
                [columns[f] for f in self.view.feature_names]
            )
            for i, entity in enumerate(entities.tolist()):
                if entity in self._positions:
                    raise FeatureStoreError(
                        f"delta {delta.version} inserts duplicate entity "
                        f"{entity!r}"
                    )
                self._positions[entity] = len(self._rows)
                self._rows.append(np.array(batch[i], copy=True))
            folded += len(entities)
        if delta.kind == "delete":
            folded += delta.num_rows
        get_registry().inc("features.refreshes")
        return folded

    def _rebuild(self) -> None:
        entities = self.view.entities_of(self.table)
        columns = self.view.compute_columns(self.table)
        batch = np.column_stack(
            [columns[f] for f in self.view.feature_names]
        ) if len(entities) else np.empty(
            (0, len(self.view.feature_names)), dtype=np.float64
        )
        self._rows: list[np.ndarray | None] = [
            np.array(batch[i], copy=True) for i in range(len(entities))
        ]
        self._positions: dict = {
            e: i for i, e in enumerate(entities.tolist())
        }

    # -- row access (the online server's source) ------------------------
    @property
    def num_rows(self) -> int:
        return len(self._positions)

    def entity_values(self) -> list:
        return list(self._positions)

    def row(self, entity) -> np.ndarray:
        pos = self._positions.get(entity)
        if pos is None:
            raise FeatureStoreError(
                f"entity {entity!r} not maintained in view "
                f"{self.view.name!r}"
            )
        return np.array(self._rows[pos], copy=True)

    def parity_check(self) -> bool:
        """Assert every maintained row is bitwise equal to a fresh
        recompute of the current base table (chaos held off)."""
        self.stats.parity_checks += 1
        get_registry().inc("features.parity_checks")
        if self.staleness != 0:
            raise FeatureStoreError(
                f"parity check with {self.staleness} unapplied "
                f"version(s); drain the stream first"
            )
        with no_chaos():
            entities = self.view.entities_of(self.table)
            columns = self.view.compute_columns(self.table)
        fresh = np.column_stack(
            [columns[f] for f in self.view.feature_names]
        ) if len(entities) else np.empty((0, len(self.view.feature_names)))
        if len(entities) != self.num_rows:
            raise FeatureStoreError(
                f"maintained view holds {self.num_rows} entities; base "
                f"table has {len(entities)}"
            )
        for i, entity in enumerate(entities.tolist()):
            maintained = self.row(entity)
            if maintained.tobytes() != np.ascontiguousarray(
                fresh[i], dtype=np.float64
            ).tobytes():
                raise FeatureStoreError(
                    f"maintained features for entity {entity!r} diverged "
                    f"from recompute"
                )
        return True

"""Drift-gated rollout: promotion refuses to outrun the feature data.

A :class:`DriftGate` watches the serving-side distribution of every
feature in a view through per-feature
:class:`~repro.feateng.StreamingDriftMonitor` instances (bucket edges
frozen over the training reference) and sits in the promotion path of a
:class:`~repro.serving.ModelServer` / ``ShardedServer``. At promotion
time it checks two things:

* **version integrity** — the candidate :class:`ModelVersion` carries a
  ``feature_fingerprint``; if it doesn't match the live view's version,
  the model was trained on different feature definitions and promotion
  is held.
* **covariate stability** — if any sufficiently-observed feature's PSI
  or KS statistic has crossed its threshold, promotion is held and
  (when ``auto_rollback`` is on) the endpoint's canary is rolled back,
  so a shifted stream cannot graduate to full traffic.

Every decision lands in an exact local ledger (observations,
evaluations, holds, rollbacks, promotes) mirrored into the global
``features.*`` counters — replayable against an analytic oracle, since
the monitors' statistics are pure functions of the frozen edges and the
observation list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FeatureStoreError, PromotionHeldError, ReproError
from ..feateng.drift import (
    KS_DEFAULT_THRESHOLD,
    PSI_DEFAULT_THRESHOLD,
    DriftStats,
    StreamingDriftMonitor,
)
from ..obs import get_registry
from .view import FeatureView

#: drift verdicts need this many serving observations per feature
#: before they can hold a promotion (tiny samples alias as shift).
DEFAULT_MIN_OBSERVATIONS = 100


@dataclass(frozen=True)
class GateDecision:
    """A clean promotion verdict (holds raise instead)."""

    endpoint: str
    promoted: bool
    reasons: tuple[str, ...]
    scores: dict


class DriftGate:
    """Holds/rolls back canary promotion on feature drift or version skew.

    Args:
        view: the feature view the endpoint's model was trained on.
        reference: training-time feature values — a
            :class:`~repro.features.store.MaterializedFeatures` or a
            mapping of feature name -> array. Bucket edges freeze here.
        psi_threshold / ks_threshold: per-feature alarm levels.
        min_observations: serving observations required per feature
            before its drift verdict can hold a promotion.
        auto_rollback: when a drift hold fires, also clear the
            endpoint's canary on the controller.
    """

    def __init__(
        self,
        view: FeatureView,
        reference,
        psi_threshold: float = PSI_DEFAULT_THRESHOLD,
        ks_threshold: float = KS_DEFAULT_THRESHOLD,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        auto_rollback: bool = True,
    ):
        self.view = view
        self.min_observations = int(min_observations)
        self.auto_rollback = auto_rollback
        columns = getattr(reference, "columns", reference)
        self.monitors: dict[str, StreamingDriftMonitor] = {}
        for fname in view.feature_names:
            if fname not in columns:
                raise FeatureStoreError(
                    f"gate reference is missing feature {fname!r}"
                )
            self.monitors[fname] = StreamingDriftMonitor(
                fname,
                columns[fname],
                psi_threshold=psi_threshold,
                ks_threshold=ks_threshold,
            )
        self.observations = 0
        self.evaluations = 0
        self.holds = 0
        self.rollbacks = 0
        self.promotes = 0

    # -- serving-side accumulation -------------------------------------
    def observe(self, row) -> None:
        """Fold one served feature row (declaration order) into the
        per-feature monitors."""
        values = np.asarray(row, dtype=np.float64).reshape(-1)
        if len(values) != len(self.view.feature_names):
            raise FeatureStoreError(
                f"gate observed {len(values)} values for "
                f"{len(self.view.feature_names)} features"
            )
        for fname, value in zip(self.view.feature_names, values):
            self.monitors[fname].observe(float(value))
        self.observations += 1
        get_registry().inc("features.gate.observations")

    def observe_many(self, rows) -> None:
        for row in np.asarray(rows, dtype=np.float64).reshape(
            -1, len(self.view.feature_names)
        ):
            self.observe(row)

    def drift_snapshot(self) -> dict[str, DriftStats]:
        """Current per-feature statistics (all features)."""
        return {f: m.snapshot() for f, m in self.monitors.items()}

    def drifted_features(self) -> dict[str, DriftStats]:
        """Features whose verdict can hold a promotion right now."""
        out: dict[str, DriftStats] = {}
        for fname, monitor in self.monitors.items():
            if monitor.observed < self.min_observations:
                continue
            stats = monitor.snapshot()
            if stats.drifted:
                out[fname] = stats
        return out

    # -- the promotion hook --------------------------------------------
    def authorize(self, controller, endpoint: str, entry=None) -> GateDecision:
        """Decide one promotion; raise :class:`PromotionHeldError` to
        refuse it.

        ``controller`` is whatever owns the canary (a ``ModelServer`` or
        ``ShardedServer`` — anything with ``clear_canary(name)``);
        ``entry`` is the candidate :class:`ModelVersion`, checked for
        feature-fingerprint skew when it carries one.
        """
        self.evaluations += 1
        registry = get_registry()
        registry.inc("features.gate.evaluations")
        reasons: list[str] = []
        trained_on = getattr(entry, "feature_fingerprint", None)
        if trained_on is not None and trained_on != self.view.version:
            reasons.append(
                f"feature fingerprint mismatch: model trained on "
                f"{trained_on[:12]}, live view is {self.view.version[:12]}"
            )
        drifted = self.drifted_features()
        scores = {
            f: {"psi": s.psi, "ks": s.ks, "observed": s.observed}
            for f, s in self.drift_snapshot().items()
        }
        for fname, stats in sorted(drifted.items()):
            reasons.append(
                f"feature {fname!r} drifted (psi={stats.psi:.3f}, "
                f"ks={stats.ks:.3f} over {stats.observed} observations)"
            )
        if reasons:
            self.holds += 1
            registry.inc("features.holds")
            rolled_back = False
            if drifted and self.auto_rollback:
                try:
                    controller.clear_canary(endpoint)
                    rolled_back = True
                    self.rollbacks += 1
                    registry.inc("features.rollbacks")
                except ReproError:
                    pass  # no canary staged; the hold alone suffices
            raise PromotionHeldError(
                endpoint, reasons, scores=scores, rolled_back=rolled_back
            )
        self.promotes += 1
        registry.inc("features.gate.promotes")
        return GateDecision(
            endpoint=endpoint, promoted=True, reasons=(), scores=scores
        )

    def reset_monitors(self) -> None:
        """Clear accumulated serving counts (frozen edges survive) —
        the post-investigation restart after a hold."""
        for monitor in self.monitors.values():
            monitor.reset()

    def ledger(self) -> dict:
        return {
            "observations": self.observations,
            "evaluations": self.evaluations,
            "holds": self.holds,
            "rollbacks": self.rollbacks,
            "promotes": self.promotes,
        }

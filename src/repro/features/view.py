"""Versioned feature views: named features as row-local DSL plans.

A :class:`FeatureView` declares an ordered set of named features, each a
DSL expression over the columns of a base table. The definition is
content-addressed through the materialization layer's canonical plan
serialization: :attr:`FeatureView.version` is a SHA-256 over the
entity key plus every feature's canonical plan, so the same definition
always yields the same version and any edit — an operator, a constant,
a column rename, feature order — yields a new one. The version is what
:mod:`repro.lifecycle` records on a :class:`ModelVersion` and what the
drift gate checks at promotion time.

Features must be **row-local**: elementwise expressions (plus scalar
constants) only, validated at declaration time by walking the
instantiated plan. Row-locality is the property the whole store leans
on — computing a feature over an n-row batch applies the identical
per-element float operations as computing it over any single row, so
the online path's one-row recompute is *bitwise* equal to the offline
batch bytes, and a delta refresh can fold just the changed rows.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Mapping

import numpy as np

from ..errors import FeatureStoreError
from ..lang.ast import Binary, Constant, Data, Node, Unary, walk
from ..lang.dsl import MExpr, matrix
from ..compiler.planner import compile_expr
from ..materialize.fingerprint import Fingerprint, canonical_plan
from ..runtime import execute
from ..storage.lineage import table_fingerprint
from ..storage.table import Table

#: fingerprint namespace; bump on any change to version semantics.
FLAGS = "features/v1"

#: row count features are instantiated at for validation/versioning —
#: 2 rows, so a constant-only (non-row-local) feature is caught by its
#: (1, 1) output shape, which n=1 could not distinguish.
_PROBE_ROWS = 2

_ROW_LOCAL_NODES = (Data, Constant, Binary, Unary)

#: compiled plans cached per (feature, num_rows); bounded because delta
#: batches arrive in a handful of sizes (1 for online recompute, the
#: delta size for refresh, the table size for materialization).
_PLAN_CACHE_LIMIT = 128


class ColumnSpace:
    """Column namespace handed to feature builders.

    ``cols.price`` (or ``cols["price"]``) is the base table's column as
    an (n, 1) DSL matrix; every access is recorded so the view knows
    exactly which base columns a feature reads.
    """

    def __init__(self, num_rows: int, referenced: set[str]):
        self._num_rows = num_rows
        self._referenced = referenced

    def __getitem__(self, name: str) -> MExpr:
        self._referenced.add(name)
        return matrix(name, (self._num_rows, 1))

    def __getattr__(self, name: str) -> MExpr:
        if name.startswith("_"):
            raise AttributeError(name)
        return self[name]


class FeatureView:
    """An ordered, versioned set of named row-local features.

    Args:
        name: the view's human name (labels, ledger entries).
        entity_key: base-table column uniquely identifying each row;
            the online path serves by entity value.
        features: ordered mapping of feature name -> builder. A builder
            receives a :class:`ColumnSpace` and returns the feature's
            DSL expression (an :class:`MExpr` or raw AST node).
    """

    def __init__(
        self,
        name: str,
        entity_key: str,
        features: Mapping[str, Callable[[ColumnSpace], MExpr | Node]],
    ):
        if not features:
            raise FeatureStoreError(f"view {name!r} declares no features")
        self.name = name
        self.entity_key = entity_key
        self._builders = dict(features)
        self.feature_names: tuple[str, ...] = tuple(features)
        referenced: set[str] = set()
        probe = {
            fname: self._instantiate(fname, _PROBE_ROWS, referenced)
            for fname in self.feature_names
        }
        for fname, node in probe.items():
            self._validate_row_local(fname, node)
        self.referenced_columns: tuple[str, ...] = tuple(sorted(referenced))
        if entity_key in self.feature_names:
            raise FeatureStoreError(
                f"view {name!r}: entity key {entity_key!r} collides with "
                f"a feature name"
            )
        self.version = self._version_of(probe)
        self._plans: dict[tuple[str, int], object] = {}

    # -- definition identity -------------------------------------------
    def _instantiate(
        self, fname: str, num_rows: int, referenced: set[str] | None = None
    ) -> Node:
        sink: set[str] = set() if referenced is None else referenced
        expr = self._builders[fname](ColumnSpace(num_rows, sink))
        node = expr.node if isinstance(expr, MExpr) else expr
        if not isinstance(node, Node):
            raise FeatureStoreError(
                f"feature {fname!r} builder returned {type(expr).__name__}, "
                f"not a DSL expression"
            )
        return node

    def _validate_row_local(self, fname: str, node: Node) -> None:
        for sub in walk(node):
            if not isinstance(sub, _ROW_LOCAL_NODES):
                raise FeatureStoreError(
                    f"feature {fname!r} is not row-local: "
                    f"{type(sub).__name__} nodes mix rows"
                )
            if isinstance(sub, Constant) and sub.shape != (1, 1):
                raise FeatureStoreError(
                    f"feature {fname!r} embeds a non-scalar constant "
                    f"{sub.shape}; only scalars are row-local"
                )
        if node.shape != (_PROBE_ROWS, 1):
            raise FeatureStoreError(
                f"feature {fname!r} has shape {node.shape} over "
                f"{_PROBE_ROWS} rows; it must read at least one column "
                f"and produce one value per row"
            )

    def _version_of(self, probe: dict[str, Node]) -> str:
        h = hashlib.sha256()
        h.update(FLAGS.encode("utf-8"))
        h.update(b"|entity:")
        h.update(self.entity_key.encode("utf-8"))
        for fname in self.feature_names:
            canon, order = canonical_plan(probe[fname])
            h.update(b"|feature:")
            h.update(fname.encode("utf-8"))
            h.update(b"=")
            h.update(canon.encode("utf-8"))
            h.update(b"@")
            h.update(",".join(order).encode("utf-8"))
        return h.hexdigest()

    def fingerprint(self, table: Table) -> Fingerprint:
        """Content address of this view *over this data*: the view
        version crossed with the base bytes it reads (entity key plus
        referenced columns), so the materialization store can only hit
        when both the definition and the data are unchanged."""
        return Fingerprint(
            structural=self.version,
            operands=(self.base_fingerprint(table),),
            flags=FLAGS,
        )

    def base_fingerprint(self, table: Table) -> str:
        """``table:sha256`` over exactly the columns this view reads."""
        used = [self.entity_key] + [
            c for c in self.referenced_columns if c != self.entity_key
        ]
        return table_fingerprint(table.select(used))

    # -- computation ---------------------------------------------------
    def compute_columns(self, table: Table) -> dict[str, np.ndarray]:
        """Every feature over every row, through the executor.

        Returns feature name -> float64 vector of length ``len(table)``,
        in declaration order. Row-locality makes this the *only*
        computation path: the online one-row recompute and the delta
        refresh call this very method on smaller tables and get the
        same bytes per row.
        """
        num_rows = table.num_rows
        if num_rows == 0:
            return {f: np.empty(0, dtype=np.float64) for f in self.feature_names}
        bindings = {
            col: np.ascontiguousarray(
                table.column(col), dtype=np.float64
            ).reshape(-1, 1)
            for col in self.referenced_columns
        }
        out: dict[str, np.ndarray] = {}
        for fname in self.feature_names:
            value = execute(self._plan_for(fname, num_rows), bindings)
            out[fname] = np.asarray(value, dtype=np.float64).reshape(-1)
        return out

    def _plan_for(self, fname: str, num_rows: int):
        """Compiled plan for one feature at one batch size.

        Compilation dominates small-batch evaluation (the executor's
        compile pass costs more than the vector math below a few
        thousand rows), and both the online one-row recompute and the
        delta-refresh fold live entirely in that regime — so plans are
        cached per shape. Compilation is deterministic, so a cached
        plan yields the same bytes as a fresh one.
        """
        key = (fname, num_rows)
        plan = self._plans.get(key)
        if plan is None:
            if len(self._plans) >= _PLAN_CACHE_LIMIT:
                self._plans.clear()
            plan = compile_expr(self._instantiate(fname, num_rows))
            self._plans[key] = plan
        return plan

    def entities_of(self, table: Table) -> np.ndarray:
        """The entity-key column, with uniqueness enforced."""
        entities = table.column(self.entity_key)
        if len(np.unique(entities)) != len(entities):
            raise FeatureStoreError(
                f"view {self.name!r}: entity key {self.entity_key!r} has "
                f"duplicate values"
            )
        return entities

    def __repr__(self) -> str:
        return (
            f"FeatureView({self.name!r}, entity={self.entity_key!r}, "
            f"features={list(self.feature_names)}, "
            f"version={self.version[:12]})"
        )

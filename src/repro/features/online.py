"""Online feature serving with exact offline parity.

The online path answers "features for entity X, now" out of a
materialized (or incrementally maintained) source — and guarantees the
answer is **bitwise** the offline bytes. The guarantee holds for the
same reason the serving scorer's does: there is exactly one computation
path. Row-local features apply identical per-element float operations
whether computed over the full base table or over the single row, so
the fallback recompute (taken when chaos kills a read at the
``features.serve`` fault site) produces the same bits the materialized
slice holds. :meth:`OnlineFeatureServer.parity_check` is the oracle
that proves it on demand, and the local ledger (serves, fallbacks,
parity checks) is exact — replayable against the chaos plan's own
injection count.
"""

from __future__ import annotations

import numpy as np

from ..errors import FeatureStoreError, InjectedFault
from ..obs import get_registry
from ..resilience import fault_point, no_chaos
from ..storage.table import Table
from .view import FeatureView

#: chaos site crossed by every online serve.
FAULT_SITE = "features.serve"


class OnlineFeatureServer:
    """Serves single-entity feature rows bit-identically to offline.

    Args:
        view: the feature view being served.
        source: row source — a
            :class:`~repro.features.store.MaterializedFeatures` or a
            :class:`~repro.features.store.FeatureViewMaintainer`
            (anything with ``row(entity)``).
        table: the base table for on-demand recompute. Defaults to the
            source's own base table when it has one (a maintainer does).
    """

    FAULT_SITE = FAULT_SITE

    def __init__(
        self,
        view: FeatureView,
        source,
        table: Table | None = None,
    ):
        self.view = view
        self.source = source
        self.table = table if table is not None else getattr(
            source, "table", None
        )
        if self.table is None:
            raise FeatureStoreError(
                "online server needs a base table for fallback recompute"
            )
        self.serves = 0
        self.fallbacks = 0
        self.parity_checks = 0

    # ------------------------------------------------------------------
    def serve(self, entity) -> np.ndarray:
        """One entity's feature row (declaration order, float64).

        Every serve crosses the ``features.serve`` fault site; an
        injected fault (or corrupted read) falls back to recomputing
        the row from the base table under :func:`no_chaos` — by
        row-locality, the same bytes the clean path serves.
        """
        self.serves += 1
        get_registry().inc("features.serves")
        try:
            status = fault_point(self.FAULT_SITE, key=entity)
        except InjectedFault:
            return self._fallback(entity)
        if status == "corrupt":
            # The read came back untrusted; discard it and recompute.
            return self._fallback(entity)
        return self.source.row(entity)

    def serve_many(self, entities) -> np.ndarray:
        """A (len(entities), F) matrix of serve() rows, in order."""
        rows = [self.serve(e) for e in entities]
        if not rows:
            return np.empty((0, len(self.view.feature_names)))
        return np.vstack(rows)

    def _fallback(self, entity) -> np.ndarray:
        self.fallbacks += 1
        get_registry().inc("features.fallbacks")
        with no_chaos():
            return self.recompute_row(entity)

    def recompute_row(self, entity) -> np.ndarray:
        """Compute one entity's features from base-table bytes alone."""
        keys = self.table.column(self.view.entity_key)
        positions = np.flatnonzero(keys == entity)
        if len(positions) != 1:
            raise FeatureStoreError(
                f"entity {entity!r} matches {len(positions)} base rows; "
                f"need exactly 1"
            )
        one = self.table.take(positions)
        columns = self.view.compute_columns(one)
        return np.array(
            [columns[f][0] for f in self.view.feature_names],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    def parity_check(self, entities=None) -> bool:
        """Oracle: served bytes == recomputed bytes, for every entity.

        Runs with chaos held off (this is the reference comparison, not
        a resilience test) and raises :class:`FeatureStoreError` on the
        first divergent entity.
        """
        self.parity_checks += 1
        get_registry().inc("features.parity_checks")
        if entities is None:
            entities = self.table.column(self.view.entity_key).tolist()
        with no_chaos():
            for entity in entities:
                served = self.source.row(entity)
                fresh = self.recompute_row(entity)
                if served.tobytes() != fresh.tobytes():
                    raise FeatureStoreError(
                        f"online/offline parity violated for entity "
                        f"{entity!r} in view {self.view.name!r}"
                    )
        return True

    def ledger(self) -> dict:
        """Exact local serve ledger (the global ``features.*`` counters
        accumulate the same events across all servers)."""
        return {
            "serves": self.serves,
            "fallbacks": self.fallbacks,
            "parity_checks": self.parity_checks,
        }

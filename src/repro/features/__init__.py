"""Versioned feature store closing the train/serve loop.

The lifecycle pillar's missing data layer: named features declared as
row-local DSL plans over base tables (:class:`FeatureView`),
content-addressed so the same definition always has the same version;
materialized offline through the executor into the materialization
store with lineage to the base bytes (:class:`FeatureStore`); kept
fresh against dynamic tables in O(|delta|)
(:class:`FeatureViewMaintainer`); and served online **bit-identically**
to the offline bytes (:class:`OnlineFeatureServer`), with a
:class:`DriftGate` that holds or rolls back canary promotion when
serving-side feature distributions shift. See DESIGN.md, "Feature
store"; gated by E27 (``benchmarks/bench_features.py``).
"""

from .gate import DEFAULT_MIN_OBSERVATIONS, DriftGate, GateDecision
from .online import OnlineFeatureServer
from .store import FeatureStore, FeatureViewMaintainer, MaterializedFeatures
from .view import FLAGS, ColumnSpace, FeatureView

__all__ = [
    "DEFAULT_MIN_OBSERVATIONS",
    "ColumnSpace",
    "DriftGate",
    "FLAGS",
    "FeatureStore",
    "FeatureView",
    "FeatureViewMaintainer",
    "GateDecision",
    "MaterializedFeatures",
    "OnlineFeatureServer",
]

"""Expression AST for the declarative linear-algebra language.

Programs are trees of :class:`Node`. Shapes are inferred at construction
time — scalar results are modeled as (1, 1) matrices, mirroring how
SystemML's HOP DAG treats aggregates. Nodes are immutable; every node has
a structural ``key()`` used by common-subexpression elimination to turn
the tree into a DAG.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import CompilerError, ShapeError

Shape = tuple[int, int]

#: element-wise binary operators
EWISE_OPS = {"+", "-", "*", "/", "^", "min", "max"}
#: element-wise unary operators
UNARY_OPS = {"neg", "exp", "log", "sqrt", "abs", "sigmoid", "sign", "round"}
#: full or axis aggregates
AGG_OPS = {"sum", "mean", "min", "max", "trace"}


class Node:
    """Base class for AST nodes."""

    shape: Shape
    children: tuple["Node", ...]

    @property
    def is_scalar(self) -> bool:
        return self.shape == (1, 1)

    def key(self) -> tuple:
        """Structural identity used for hash-consing / CSE."""
        raise NotImplementedError

    def with_children(self, children: list["Node"]) -> "Node":
        """A copy of this node over new children (shape re-inferred)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return pretty(self)


class Data(Node):
    """A named input matrix bound at execution time."""

    def __init__(self, name: str, shape: Shape):
        if shape[0] < 1 or shape[1] < 1:
            raise ShapeError(f"input {name!r} must have positive dims, got {shape}")
        self.name = name
        self.shape = (int(shape[0]), int(shape[1]))
        self.children = ()

    def key(self):
        return ("data", self.name, self.shape)

    def with_children(self, children):
        if children:
            raise CompilerError("Data nodes have no children")
        return self


class Constant(Node):
    """A literal matrix or scalar embedded in the program."""

    def __init__(self, value):
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1, 1)
        elif arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        elif arr.ndim != 2:
            raise ShapeError(f"constants must be at most 2-D, got {arr.ndim}-D")
        self.value = arr
        self.shape = arr.shape
        self.children = ()

    def key(self):
        return ("const", self.shape, self.value.tobytes())

    def with_children(self, children):
        if children:
            raise CompilerError("Constant nodes have no children")
        return self

    @property
    def scalar_value(self) -> float:
        if not self.is_scalar:
            raise CompilerError("not a scalar constant")
        return float(self.value[0, 0])


class Binary(Node):
    """Element-wise binary operation with scalar broadcasting."""

    def __init__(self, op: str, left: Node, right: Node):
        if op not in EWISE_OPS:
            raise CompilerError(f"unknown element-wise op {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self.children = (left, right)
        self.shape = _broadcast_shape(op, left.shape, right.shape)

    def key(self):
        return ("binary", self.op, self.left.key(), self.right.key())

    def with_children(self, children):
        left, right = children
        return Binary(self.op, left, right)


class Unary(Node):
    """Element-wise unary operation."""

    def __init__(self, op: str, child: Node):
        if op not in UNARY_OPS:
            raise CompilerError(f"unknown unary op {op!r}")
        self.op = op
        self.child = child
        self.children = (child,)
        self.shape = child.shape

    def key(self):
        return ("unary", self.op, self.child.key())

    def with_children(self, children):
        (child,) = children
        return Unary(self.op, child)


class MatMul(Node):
    """Matrix multiplication."""

    def __init__(self, left: Node, right: Node):
        if left.shape[1] != right.shape[0]:
            raise ShapeError(
                f"matmul shape mismatch: {left.shape} @ {right.shape}"
            )
        self.left = left
        self.right = right
        self.children = (left, right)
        self.shape = (left.shape[0], right.shape[1])

    def key(self):
        return ("matmul", self.left.key(), self.right.key())

    def with_children(self, children):
        left, right = children
        return MatMul(left, right)


class Transpose(Node):
    """Matrix transpose."""

    def __init__(self, child: Node):
        self.child = child
        self.children = (child,)
        self.shape = (child.shape[1], child.shape[0])

    def key(self):
        return ("transpose", self.child.key())

    def with_children(self, children):
        (child,) = children
        return Transpose(child)


class Aggregate(Node):
    """Full (axis=None), column-wise (axis=0), or row-wise (axis=1) aggregate.

    ``trace`` requires a square input and axis=None.
    """

    def __init__(self, op: str, child: Node, axis: int | None = None):
        if op not in AGG_OPS:
            raise CompilerError(f"unknown aggregate {op!r}")
        if op == "trace":
            if axis is not None:
                raise CompilerError("trace takes no axis")
            if child.shape[0] != child.shape[1]:
                raise ShapeError(f"trace requires a square matrix, got {child.shape}")
        if axis not in (None, 0, 1):
            raise CompilerError(f"axis must be None, 0, or 1, got {axis!r}")
        self.op = op
        self.child = child
        self.axis = axis
        self.children = (child,)
        if axis is None:
            self.shape = (1, 1)
        elif axis == 0:
            self.shape = (1, child.shape[1])
        else:
            self.shape = (child.shape[0], 1)

    def key(self):
        return ("agg", self.op, self.axis, self.child.key())

    def with_children(self, children):
        (child,) = children
        return Aggregate(self.op, child, self.axis)


#: physical storage representations a Convert node can target
REPRESENTATIONS = {"dense", "csr", "cla", "factorized"}


class Convert(Node):
    """Representation-conversion marker inserted by the reprplan pass.

    Semantically the identity: the logical value is unchanged, only the
    physical storage of the operand below it is (re)targeted. The
    executor converts the child's value to ``target`` unless it is
    already stored that way, so pre-converted bindings make this a
    no-op per iteration.
    """

    def __init__(self, child: Node, target: str):
        if target not in REPRESENTATIONS:
            raise CompilerError(
                f"unknown representation {target!r}; "
                f"expected one of {sorted(REPRESENTATIONS)}"
            )
        self.child = child
        self.target = target
        self.children = (child,)
        self.shape = child.shape

    def key(self):
        return ("convert", self.target, self.child.key())

    def with_children(self, children):
        (child,) = children
        return Convert(child, self.target)


class Fused(Node):
    """A fused physical operator produced by the fusion pass.

    ``kind`` names a kernel in :mod:`repro.runtime.ops`; the children are
    its inputs. Shape must be supplied by the fusion rule that builds it.
    """

    def __init__(self, kind: str, children: Iterable[Node], shape: Shape):
        self.kind = kind
        self.children = tuple(children)
        self.shape = (int(shape[0]), int(shape[1]))

    def key(self):
        return ("fused", self.kind, tuple(c.key() for c in self.children))

    def with_children(self, children):
        return Fused(self.kind, children, self.shape)


def _broadcast_shape(op: str, left: Shape, right: Shape) -> Shape:
    if left == right:
        return left
    if left == (1, 1):
        return right
    if right == (1, 1):
        return left
    # Row/column vector broadcasting against a matrix.
    if left[0] == right[0] and (left[1] == 1 or right[1] == 1):
        return (left[0], max(left[1], right[1]))
    if left[1] == right[1] and (left[0] == 1 or right[0] == 1):
        return (max(left[0], right[0]), left[1])
    raise ShapeError(f"cannot broadcast {left} {op} {right}")


def pretty(node: Node, max_depth: int = 12) -> str:
    """Human-readable rendering of an expression tree."""
    if max_depth <= 0:
        return "..."
    if isinstance(node, Data):
        return node.name
    if isinstance(node, Constant):
        if node.is_scalar:
            return f"{node.scalar_value:g}"
        return f"const{node.shape}"
    if isinstance(node, Binary):
        return (
            f"({pretty(node.left, max_depth - 1)} {node.op} "
            f"{pretty(node.right, max_depth - 1)})"
        )
    if isinstance(node, Unary):
        return f"{node.op}({pretty(node.child, max_depth - 1)})"
    if isinstance(node, MatMul):
        return (
            f"({pretty(node.left, max_depth - 1)} %*% "
            f"{pretty(node.right, max_depth - 1)})"
        )
    if isinstance(node, Transpose):
        return f"t({pretty(node.child, max_depth - 1)})"
    if isinstance(node, Aggregate):
        axis = "" if node.axis is None else f", axis={node.axis}"
        return f"{node.op}({pretty(node.child, max_depth - 1)}{axis})"
    if isinstance(node, Convert):
        return f"convert[{node.target}]({pretty(node.child, max_depth - 1)})"
    if isinstance(node, Fused):
        inner = ", ".join(pretty(c, max_depth - 1) for c in node.children)
        return f"fused:{node.kind}({inner})"
    return f"<{type(node).__name__}>"


def walk(node: Node):
    """Post-order traversal of all nodes (children before parents)."""
    for child in node.children:
        yield from walk(child)
    yield node


def count_nodes(node: Node) -> int:
    """Number of nodes in the tree (with repetition)."""
    return sum(1 for _ in walk(node))


def collect_inputs(node: Node) -> dict[str, Shape]:
    """Names and shapes of every Data input referenced by the expression."""
    inputs: dict[str, Shape] = {}
    for n in walk(node):
        if isinstance(n, Data):
            existing = inputs.get(n.name)
            if existing is not None and existing != n.shape:
                raise CompilerError(
                    f"input {n.name!r} used with conflicting shapes "
                    f"{existing} and {n.shape}"
                )
            inputs[n.name] = n.shape
    return inputs

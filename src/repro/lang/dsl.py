"""User-facing DSL over the expression AST.

:class:`MExpr` wraps an AST node with numpy-like operators so programs
read like the R-ish scripts of declarative ML systems:

>>> X = matrix("X", (1000, 10))
>>> w = matrix("w", (10, 1))
>>> grad = X.T @ (X @ w) / 1000
>>> loss = sumall((X @ w) ** 2)

Expressions are lazy; compile and run them with
:func:`repro.compiler.compile_expr` / :func:`repro.runtime.execute`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .ast import Aggregate, Binary, Constant, Data, MatMul, Node, Transpose, Unary


class MExpr:
    """A lazy matrix (or scalar) expression."""

    def __init__(self, node: Node):
        self.node = node

    # -- metadata ---------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.node.shape

    @property
    def is_scalar(self) -> bool:
        return self.node.is_scalar

    def __repr__(self) -> str:
        return f"MExpr[{self.shape[0]}x{self.shape[1]}]: {self.node!r}"

    # -- structure ---------------------------------------------------------
    @property
    def T(self) -> "MExpr":
        return MExpr(Transpose(self.node))

    def __matmul__(self, other: Any) -> "MExpr":
        return MExpr(MatMul(self.node, _lift(other)))

    def __rmatmul__(self, other: Any) -> "MExpr":
        return MExpr(MatMul(_lift(other), self.node))

    # -- element-wise arithmetic -------------------------------------------
    def __add__(self, other: Any) -> "MExpr":
        return MExpr(Binary("+", self.node, _lift(other)))

    def __radd__(self, other: Any) -> "MExpr":
        return MExpr(Binary("+", _lift(other), self.node))

    def __sub__(self, other: Any) -> "MExpr":
        return MExpr(Binary("-", self.node, _lift(other)))

    def __rsub__(self, other: Any) -> "MExpr":
        return MExpr(Binary("-", _lift(other), self.node))

    def __mul__(self, other: Any) -> "MExpr":
        return MExpr(Binary("*", self.node, _lift(other)))

    def __rmul__(self, other: Any) -> "MExpr":
        return MExpr(Binary("*", _lift(other), self.node))

    def __truediv__(self, other: Any) -> "MExpr":
        return MExpr(Binary("/", self.node, _lift(other)))

    def __rtruediv__(self, other: Any) -> "MExpr":
        return MExpr(Binary("/", _lift(other), self.node))

    def __pow__(self, exponent: Any) -> "MExpr":
        return MExpr(Binary("^", self.node, _lift(exponent)))

    def __neg__(self) -> "MExpr":
        return MExpr(Unary("neg", self.node))


def matrix(name: str, shape: tuple[int, int]) -> MExpr:
    """Declare a named input matrix of the given shape."""
    return MExpr(Data(name, shape))

def scalar_input(name: str) -> MExpr:
    """Declare a named scalar input (a 1x1 matrix)."""
    return MExpr(Data(name, (1, 1)))


def const(value) -> MExpr:
    """Embed a numpy array or Python scalar as a literal."""
    return MExpr(Constant(value))


def _lift(value: Any) -> Node:
    if isinstance(value, MExpr):
        return value.node
    if isinstance(value, Node):
        return value
    if isinstance(value, (int, float, np.ndarray, list)):
        return Constant(value)
    raise TypeError(f"cannot use {type(value).__name__} in a matrix expression")


# ----------------------------------------------------------------------
# Free functions (R-script style)
# ----------------------------------------------------------------------
def exp(x: MExpr) -> MExpr:
    return MExpr(Unary("exp", _lift(x)))


def log(x: MExpr) -> MExpr:
    return MExpr(Unary("log", _lift(x)))


def sqrt(x: MExpr) -> MExpr:
    return MExpr(Unary("sqrt", _lift(x)))


def absval(x: MExpr) -> MExpr:
    return MExpr(Unary("abs", _lift(x)))


def sigmoid(x: MExpr) -> MExpr:
    return MExpr(Unary("sigmoid", _lift(x)))


def sumall(x: MExpr) -> MExpr:
    """Sum over all cells (a scalar)."""
    return MExpr(Aggregate("sum", _lift(x)))


def mean(x: MExpr) -> MExpr:
    return MExpr(Aggregate("mean", _lift(x)))


def minall(x: MExpr) -> MExpr:
    return MExpr(Aggregate("min", _lift(x)))


def maxall(x: MExpr) -> MExpr:
    return MExpr(Aggregate("max", _lift(x)))


def colsums(x: MExpr) -> MExpr:
    """Column sums (a 1 x d row vector)."""
    return MExpr(Aggregate("sum", _lift(x), axis=0))


def rowsums(x: MExpr) -> MExpr:
    """Row sums (an n x 1 column vector)."""
    return MExpr(Aggregate("sum", _lift(x), axis=1))


def colmeans(x: MExpr) -> MExpr:
    return MExpr(Aggregate("mean", _lift(x), axis=0))


def rowmeans(x: MExpr) -> MExpr:
    return MExpr(Aggregate("mean", _lift(x), axis=1))


def trace(x: MExpr) -> MExpr:
    """Sum of the diagonal of a square matrix."""
    return MExpr(Aggregate("trace", _lift(x)))


def emin(x: MExpr, y) -> MExpr:
    """Element-wise minimum (scalars broadcast)."""
    return MExpr(Binary("min", _lift(x), _lift(y)))


def emax(x: MExpr, y) -> MExpr:
    """Element-wise maximum (scalars broadcast); emax(x, 0) is ReLU."""
    return MExpr(Binary("max", _lift(x), _lift(y)))

"""GLM algorithms authored in the declarative DSL.

These are the reproduction's 'algorithm scripts': linear algebra written
once as DSL expressions, compiled once (rewrites, mmchain, fusion, CSE),
then iterated by a thin driver that only rebinds inputs. The compiler —
not the algorithm author — decides evaluation order and fused kernels,
which is the core promise of declarative ML systems.

``X`` may be a dense array or any storage representation
(:class:`~repro.compression.CompressedMatrix`,
:class:`~repro.sparse.CSRMatrix`,
:class:`~repro.factorized.NormalizedMatrix`): the iteration loop then
runs on the representation's native kernels without materializing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..compiler import compile_expr, plan_representations
from ..compiler import feedback as _feedback
from ..errors import ModelError
from ..lang import matrix, sigmoid
from ..obs import get_registry
from ..resilience.checkpoint import IterativeCheckpointer
from ..resilience.retry import RetryPolicy, resilient_call
from ..runtime import execute
from ..runtime.executor import ExecutionStats


@dataclass
class AlgorithmResult:
    """Weights plus per-run accounting for a DSL-driven algorithm."""

    weights: np.ndarray
    iterations: int
    converged: bool
    objective_history: list[float] = field(default_factory=list)
    flops_executed: int = 0
    #: adaptive re-optimization: representation switches adopted mid-run
    replans: int = 0
    #: plan decisions adopted, e.g. "iter 2: X -> dense (csr demoted ...)"
    plan_history: list[str] = field(default_factory=list)

    @property
    def final_objective(self) -> float:
        return self.objective_history[-1] if self.objective_history else float("nan")


def _as_column(v: np.ndarray) -> np.ndarray:
    return np.asarray(v, dtype=np.float64).reshape(-1)


def _prepare_design(X):
    """Pass representation operands through; coerce the rest to dense."""
    from ..runtime import repops

    if repops.is_representation(X):
        return X
    return np.asarray(X, dtype=np.float64)


#: consecutive no-change re-plan checks after which a driver stops
#: re-planning: the plan has converged against the observed evidence,
#: and each further check would pay the sampling cost for nothing.
REPLAN_STABLE_CHECKS = 2


def replan_operand(
    plan,
    operands: dict,
    name: str,
    bindings: dict,
    store,
    iteration: int,
    plan_history: list[str],
) -> bool:
    """Re-plan one operand's representation between driver epochs.

    Consults :func:`~repro.compiler.plan_representations` with the
    feedback ``store`` and, when the decision differs from the operand's
    current form, converts it in place in ``operands``. Conversions are
    exact (densify and CSR round-trips are bitwise), so the iteration
    trajectory after a switch matches a run that started in the new
    representation from the same state. Returns True when a switch was
    adopted.
    """
    from ..runtime import repops

    planned = plan_representations(plan, bindings, feedback=store)
    choice = planned.repr_plan.choices[name]
    current = repops.kind_of(operands[name])
    if choice.representation == current:
        if iteration == 0:
            plan_history.append(
                f"iter 0: {name} stays {current} ({choice.reason})"
            )
        return False
    operands[name] = repops.convert_value(
        operands[name], choice.representation
    )
    plan_history.append(
        f"iter {iteration}: {name} -> {choice.representation} "
        f"({choice.reason})"
    )
    if iteration > 0:
        get_registry().inc("feedback.replans")
    return True


def linreg_direct(X: np.ndarray, y: np.ndarray, l2: float = 0.0) -> AlgorithmResult:
    """Least squares via the closed form, with the Gram matrix compiled.

    The ``t(X) %*% X`` product compiles to the fused tsmm kernel; the
    small d x d solve runs in the driver.
    """
    X = _prepare_design(X)
    y = _as_column(y)
    n, d = X.shape
    Xm = matrix("X", (n, d))
    ym = matrix("y", (n, 1))
    gram_plan = compile_expr(Xm.T @ Xm)
    xty_plan = compile_expr(Xm.T @ ym)

    stats = ExecutionStats()
    gram, s1 = execute(gram_plan, {"X": X}, collect_stats=True)
    rhs, s2 = execute(xty_plan, {"X": X, "y": y}, collect_stats=True)
    if l2 > 0:
        gram = gram + l2 * np.eye(d)
    try:
        w = np.linalg.solve(gram, rhs[:, 0])
    except np.linalg.LinAlgError:
        w = (np.linalg.pinv(gram) @ rhs)[:, 0]
    residual = X @ w - y
    objective = 0.5 * float(residual @ residual) / n
    return AlgorithmResult(
        weights=w,
        iterations=1,
        converged=True,
        objective_history=[objective],
        flops_executed=s1.flops + s2.flops,
    )


def linreg_cg(
    X: np.ndarray,
    y: np.ndarray,
    l2: float = 0.0,
    max_iter: int | None = None,
    tol: float = 1e-10,
) -> AlgorithmResult:
    """Conjugate gradient on the normal equations (SystemML's LinearRegCG).

    Never forms X'X: each iteration's Hessian-vector product
    ``t(X) %*% (X %*% p) + l2 p`` is one compiled plan whose mvchain
    fusion keeps the cost at O(n d) per iteration.
    """
    X = _prepare_design(X)
    y = _as_column(y)
    n, d = X.shape
    if max_iter is None:
        max_iter = d
    Xm = matrix("X", (n, d))
    pm = matrix("p", (d, 1))
    ym = matrix("y", (n, 1))
    hvp_plan = compile_expr(Xm.T @ (Xm @ pm) + l2 * pm)
    rhs_plan = compile_expr(Xm.T @ ym)

    total_flops = 0
    rhs, s = execute(rhs_plan, {"X": X, "y": y}, collect_stats=True)
    total_flops += s.flops
    b = rhs[:, 0]

    w = np.zeros(d)
    r = b.copy()  # residual b - A w with w = 0
    p = r.copy()
    rs = float(r @ r)
    b_norm = np.sqrt(float(b @ b)) or 1.0
    history = [np.sqrt(rs) / b_norm]
    converged = history[-1] <= tol
    it = 0
    while not converged and it < max_iter:
        it += 1
        Ap_col, s = execute(hvp_plan, {"X": X, "p": p}, collect_stats=True)
        total_flops += s.flops
        Ap = Ap_col[:, 0]
        denominator = float(p @ Ap)
        if denominator <= 0:
            break  # numerically singular direction
        alpha = rs / denominator
        w = w + alpha * p
        r = r - alpha * Ap
        rs_new = float(r @ r)
        history.append(np.sqrt(rs_new) / b_norm)
        if history[-1] <= tol:
            converged = True
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return AlgorithmResult(
        weights=w,
        iterations=it,
        converged=converged,
        objective_history=history,
        flops_executed=total_flops,
    )


def logreg_gd(
    X: np.ndarray,
    y: np.ndarray,
    l2: float = 0.0,
    learning_rate: float = 1.0,
    max_iter: int = 200,
    tol: float = 1e-8,
    checkpointer: IterativeCheckpointer | None = None,
    retry: RetryPolicy | None = None,
    adaptive: "bool | _feedback.FeedbackStore | None" = None,
    replan_interval: int = 1,
) -> AlgorithmResult:
    """Logistic regression by gradient descent over compiled plans.

    Labels must be in {0, 1}. The loss and gradient are each one DSL
    program compiled once; the driver loop only rebinds ``w``.
    Uses the probability form: grad = t(X) %*% (sigmoid(Xw) - y) / n.

    With a ``checkpointer``, finished iterations are persisted and a
    fresh call resumes from the newest valid checkpoint — because each
    step is a deterministic function of ``(w, history)``, the resumed
    run's final model is bit-identical to an uninterrupted one. With a
    ``retry`` policy, each step runs through
    :func:`~repro.resilience.retry.resilient_call` at site
    ``"glm.logreg_gd.step"`` and survives injected transient faults.

    ``adaptive`` enables SystemML-style runtime re-optimization: the
    design matrix's representation is planned up front and re-planned
    every ``replan_interval`` iterations against the feedback store
    (``None`` uses the active global store if feedback is enabled,
    ``True`` the global store unconditionally, or pass a
    :class:`~repro.compiler.feedback.FeedbackStore`). Representation
    switches are exact conversions, so the post-switch trajectory is
    bit-identical to a run started in the corrected representation from
    the same state. Once ``REPLAN_STABLE_CHECKS`` consecutive checks
    adopt no change the driver stops re-planning (the plan has converged
    against the evidence), bounding the sampling overhead.
    ``result.replans`` / ``result.plan_history`` record the adopted
    plans.
    """
    X = _prepare_design(X)
    y = _as_column(y)
    if not set(np.unique(y)) <= {0.0, 1.0}:
        raise ModelError("logreg_gd expects labels in {0, 1}")
    n, d = X.shape
    Xm = matrix("X", (n, d))
    wm = matrix("w", (d, 1))
    ym = matrix("y", (n, 1))

    probabilities = sigmoid(Xm @ wm)
    grad_expr = Xm.T @ (probabilities - ym) / n + l2 * wm
    grad_plan = compile_expr(grad_expr)

    store = _feedback.resolve_store(adaptive)
    operands = {"X": X}
    replans = 0
    stable_checks = 0
    plan_history: list[str] = []

    def loss_value(weights: np.ndarray) -> float:
        margins = X @ weights
        base = float(np.mean(np.logaddexp(0.0, margins) - y * margins))
        return base + 0.5 * l2 * float(weights @ weights)

    def _replan(iteration: int) -> None:
        nonlocal replans, stable_checks
        switched = replan_operand(
            grad_plan,
            operands,
            "X",
            {"X": operands["X"], "w": np.zeros(d), "y": y},
            store,
            iteration,
            plan_history,
        )
        if switched:
            stable_checks = 0
            if iteration > 0:
                replans += 1
        else:
            stable_checks += 1

    def _step(weights: np.ndarray, prev_value: float):
        """One gradient step + line search, pure in its inputs."""
        g_col, s = execute(
            grad_plan,
            {"X": operands["X"], "w": weights, "y": y},
            collect_stats=True,
        )
        g = g_col[:, 0]
        # Backtracking line search on the driver-side loss.
        step = learning_rate
        g_norm_sq = float(g @ g)
        for _ in range(30):
            candidate = weights - step * g
            value = loss_value(candidate)
            if value <= prev_value - 1e-4 * step * g_norm_sq:
                break
            step *= 0.5
        else:
            candidate, value = weights, prev_value
        return candidate, value, s.flops

    w = np.zeros(d)
    history = [loss_value(w)]
    total_flops = 0
    converged = False
    it = 0
    start_it = 1
    if checkpointer is not None:
        latest = checkpointer.load_latest()
        if latest is not None:
            it, state = latest
            w = state["w"]
            history = list(state["history"])
            total_flops = state["flops"]
            converged = state["converged"]
            start_it = it + 1
    with _feedback.feedback_scope(store):
        if store is not None:
            _replan(0)
        if not converged:
            for it in range(start_it, max_iter + 1):
                w, value, flops = resilient_call(
                    partial(_step, w, history[-1]),
                    site="glm.logreg_gd.step",
                    key=it,
                    retry=retry,
                )
                total_flops += flops
                history.append(value)
                converged = (
                    abs(history[-2] - value) / max(abs(history[-2]), 1e-12)
                    < tol
                )
                if checkpointer is not None and (
                    converged or checkpointer.should_checkpoint(it)
                ):
                    checkpointer.save(
                        it,
                        {
                            "w": w,
                            "history": list(history),
                            "flops": total_flops,
                            "converged": converged,
                        },
                    )
                if converged:
                    break
                if (
                    store is not None
                    and stable_checks < REPLAN_STABLE_CHECKS
                    and it % replan_interval == 0
                ):
                    _replan(it)
    return AlgorithmResult(
        weights=w,
        iterations=it,
        converged=converged,
        objective_history=history,
        flops_executed=total_flops,
        replans=replans,
        plan_history=plan_history,
    )

"""PCA authored in the declarative DSL.

The O(n d^2) covariance computation is a compiled DSL program (centering
fused with the tsmm Gram kernel); the O(d^3) eigendecomposition of the
small d x d covariance runs in the driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compiler import compile_expr
from ..errors import ModelError
from ..lang import colmeans, matrix
from ..runtime import execute


@dataclass
class PCAResult:
    components: np.ndarray  # (k, d) principal directions
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray
    mean: np.ndarray
    flops_executed: int


def pca_dsl(X: np.ndarray, n_components: int) -> PCAResult:
    """Principal components via a compiled covariance program."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    n, d = X.shape
    if not 1 <= n_components <= min(n, d):
        raise ModelError(
            f"n_components must be in [1, {min(n, d)}], got {n_components}"
        )

    Xm = matrix("X", (n, d))
    centered = Xm - colmeans(Xm)  # row-vector broadcast
    cov_plan = compile_expr(centered.T @ centered / max(n - 1, 1))
    mean_plan = compile_expr(colmeans(Xm))

    cov, s1 = execute(cov_plan, {"X": X}, collect_stats=True)
    mean_row, s2 = execute(mean_plan, {"X": X}, collect_stats=True)

    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.maximum(eigenvalues[order], 0.0)
    components = eigenvectors[:, order].T[:n_components]
    # Deterministic sign convention (largest coordinate positive).
    for i in range(n_components):
        pivot = np.argmax(np.abs(components[i]))
        if components[i, pivot] < 0:
            components[i] = -components[i]
    total = float(eigenvalues.sum()) or 1.0
    return PCAResult(
        components=components,
        explained_variance=eigenvalues[:n_components],
        explained_variance_ratio=eigenvalues[:n_components] / total,
        mean=mean_row[0],
        flops_executed=s1.flops + s2.flops,
    )

"""Algorithm scripts authored in the declarative DSL.

Each algorithm writes its linear algebra as DSL expressions, compiles
them once through the optimizer (rewrites, mmchain, fusion, CSE), and
iterates by rebinding inputs — the SystemML algorithm-library pattern.
"""

from .clustering import KMeansResult, kmeans_dsl
from .decomposition import PCAResult, pca_dsl
from .glm import AlgorithmResult, linreg_cg, linreg_direct, logreg_gd

__all__ = [
    "AlgorithmResult",
    "KMeansResult",
    "PCAResult",
    "kmeans_dsl",
    "linreg_cg",
    "linreg_direct",
    "logreg_gd",
    "pca_dsl",
]

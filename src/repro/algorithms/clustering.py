"""K-means authored in the declarative DSL.

The distance computation — the dominant cost of Lloyd's algorithm — is
one compiled DSL program using the expansion
``D = rowsums(X^2) - 2 X C' + t(rowsums(C^2))``; the tiny argmin and
centroid update run in the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler import compile_expr
from ..errors import ModelError
from ..lang import matrix, rowsums
from ..runtime import execute


@dataclass
class KMeansResult:
    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    inertia_history: list[float] = field(default_factory=list)
    flops_executed: int = 0


def kmeans_dsl(
    X: np.ndarray,
    n_clusters: int,
    max_iter: int = 100,
    tol: float = 1e-7,
    seed: int | None = 0,
) -> KMeansResult:
    """Lloyd's algorithm with compiled distance evaluation."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    n, d = X.shape
    if not 1 <= n_clusters <= n:
        raise ModelError(f"n_clusters must be in [1, {n}], got {n_clusters}")

    Xm = matrix("X", (n, d))
    Cm = matrix("C", (n_clusters, d))
    # Squared distances; the compiler fuses the sq-sums and orders the chain.
    dist_expr = rowsums(Xm**2) - 2.0 * (Xm @ Cm.T) + rowsums(Cm**2).T
    dist_plan = compile_expr(dist_expr)

    rng = np.random.default_rng(seed)
    centers = X[rng.choice(n, size=n_clusters, replace=False)].copy()

    labels = np.zeros(n, dtype=np.int64)
    history: list[float] = []
    total_flops = 0
    it = 0
    for it in range(1, max_iter + 1):
        D, stats = execute(
            dist_plan, {"X": X, "C": centers}, collect_stats=True
        )
        total_flops += stats.flops
        labels = np.argmin(D, axis=1)
        inertia = float(np.maximum(D[np.arange(n), labels], 0.0).sum())
        history.append(inertia)

        new_centers = centers.copy()
        for k in range(n_clusters):
            members = X[labels == k]
            if len(members):
                new_centers[k] = members.mean(axis=0)
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if shift <= tol:
            break

    D, stats = execute(dist_plan, {"X": X, "C": centers}, collect_stats=True)
    total_flops += stats.flops
    labels = np.argmin(D, axis=1)
    inertia = float(np.maximum(D[np.arange(n), labels], 0.0).sum())
    return KMeansResult(
        centers=centers,
        labels=labels,
        inertia=inertia,
        iterations=it,
        inertia_history=history,
        flops_executed=total_flops,
    )

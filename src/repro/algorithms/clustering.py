"""K-means authored in the declarative DSL.

The distance computation — the dominant cost of Lloyd's algorithm — is
one compiled DSL program using the expansion
``D = rowsums(X^2) - 2 X C' + t(rowsums(C^2))``; the tiny argmin and
centroid update run in the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..compiler import compile_expr
from ..compiler import feedback as _feedback
from ..errors import ModelError
from ..lang import matrix, rowsums
from ..resilience.checkpoint import IterativeCheckpointer
from ..resilience.retry import RetryPolicy, resilient_call
from ..runtime import execute
from .glm import REPLAN_STABLE_CHECKS, replan_operand


@dataclass
class KMeansResult:
    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    inertia_history: list[float] = field(default_factory=list)
    flops_executed: int = 0
    #: adaptive re-optimization: representation switches adopted mid-run
    replans: int = 0
    #: plan decisions adopted for the design matrix
    plan_history: list[str] = field(default_factory=list)


def _gather_rows(X, rows: np.ndarray) -> np.ndarray:
    """Rows of a representation operand via one-hot t(X) %*% E."""
    picker = np.zeros((X.shape[0], len(rows)))
    picker[rows, np.arange(len(rows))] = 1.0
    return np.asarray(X.rmatmat(picker), dtype=np.float64).T


def _cluster_sums(X, labels: np.ndarray, n_clusters: int) -> np.ndarray:
    """Per-cluster row sums via a one-hot membership indicator."""
    member = np.zeros((X.shape[0], n_clusters))
    member[np.arange(len(labels)), labels] = 1.0
    return np.asarray(X.rmatmat(member), dtype=np.float64).T


def kmeans_dsl(
    X: np.ndarray,
    n_clusters: int,
    max_iter: int = 100,
    tol: float = 1e-7,
    seed: int | None = 0,
    checkpointer: IterativeCheckpointer | None = None,
    retry: RetryPolicy | None = None,
    adaptive: "bool | _feedback.FeedbackStore | None" = None,
    replan_interval: int = 1,
) -> KMeansResult:
    """Lloyd's algorithm with compiled distance evaluation.

    ``X`` may be dense or any storage representation; the rep path
    gathers rows and centroid sums through ``rmatmat`` with one-hot
    indicators so the data never materializes.

    With a ``checkpointer``, the run resumes from the newest valid
    snapshot (centers + history), skipping re-initialization; each
    Lloyd step is deterministic given the centers, so resumed runs end
    bit-identical. With a ``retry`` policy, steps run through
    :func:`~repro.resilience.retry.resilient_call` at site
    ``"clustering.kmeans_dsl.step"``.

    ``adaptive`` re-plans ``X``'s representation against the feedback
    store every ``replan_interval`` iterations (see
    :func:`~repro.algorithms.glm.logreg_gd` — same contract): exact
    conversions, decisions recorded in ``result.plan_history``.
    """
    from ..runtime import repops

    is_rep = repops.is_representation(X)
    if not is_rep:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
    n, d = X.shape
    if not 1 <= n_clusters <= n:
        raise ModelError(f"n_clusters must be in [1, {n}], got {n_clusters}")

    Xm = matrix("X", (n, d))
    Cm = matrix("C", (n_clusters, d))
    # Squared distances; the compiler fuses the sq-sums and orders the chain.
    dist_expr = rowsums(Xm**2) - 2.0 * (Xm @ Cm.T) + rowsums(Cm**2).T
    dist_plan = compile_expr(dist_expr)

    store = _feedback.resolve_store(adaptive)
    operands = {"X": X}
    replans = 0
    stable_checks = 0
    plan_history: list[str] = []

    def _replan(iteration: int) -> None:
        nonlocal replans, stable_checks
        switched = replan_operand(
            dist_plan,
            operands,
            "X",
            {"X": operands["X"], "C": np.zeros((n_clusters, d))},
            store,
            iteration,
            plan_history,
        )
        if switched:
            stable_checks = 0
            if iteration > 0:
                replans += 1
        else:
            stable_checks += 1

    def _step(current: np.ndarray):
        """One Lloyd step, pure in the current centers."""
        Xop = operands["X"]
        step_is_rep = repops.is_representation(Xop)
        D, stats = execute(
            dist_plan, {"X": Xop, "C": current}, collect_stats=True
        )
        step_labels = np.argmin(D, axis=1)
        inertia = float(
            np.maximum(D[np.arange(n), step_labels], 0.0).sum()
        )
        new_centers = current.copy()
        if step_is_rep:
            counts = np.bincount(step_labels, minlength=n_clusters)
            sums = _cluster_sums(Xop, step_labels, n_clusters)
            nonempty = counts > 0
            new_centers[nonempty] = (
                sums[nonempty] / counts[nonempty, None]
            )
        else:
            for k in range(n_clusters):
                members = Xop[step_labels == k]
                if len(members):
                    new_centers[k] = members.mean(axis=0)
        shift = float(np.max(np.linalg.norm(new_centers - current, axis=1)))
        return new_centers, step_labels, inertia, shift, stats.flops

    labels = np.zeros(n, dtype=np.int64)
    history: list[float] = []
    total_flops = 0
    it = 0
    start_it = 1
    done = False
    restored = None
    if checkpointer is not None:
        restored = checkpointer.load_latest()
    with _feedback.feedback_scope(store):
        if store is not None:
            _replan(0)
        if restored is not None:
            it, state = restored
            centers = state["centers"]
            history = list(state["history"])
            total_flops = state["flops"]
            done = state["done"]
            start_it = it + 1
        else:
            rng = np.random.default_rng(seed)
            seed_rows = rng.choice(n, size=n_clusters, replace=False)
            Xop = operands["X"]
            if repops.is_representation(Xop):
                centers = _gather_rows(Xop, seed_rows)
            else:
                centers = Xop[seed_rows].copy()
        if not done:
            for it in range(start_it, max_iter + 1):
                centers, labels, inertia, shift, flops = resilient_call(
                    partial(_step, centers),
                    site="clustering.kmeans_dsl.step",
                    key=it,
                    retry=retry,
                )
                total_flops += flops
                history.append(inertia)
                done = shift <= tol
                if checkpointer is not None and (
                    done or checkpointer.should_checkpoint(it)
                ):
                    checkpointer.save(
                        it,
                        {
                            "centers": centers,
                            "history": list(history),
                            "flops": total_flops,
                            "done": done,
                        },
                    )
                if done:
                    break
                if (
                    store is not None
                    and stable_checks < REPLAN_STABLE_CHECKS
                    and it % replan_interval == 0
                ):
                    _replan(it)

        D, stats = execute(
            dist_plan, {"X": operands["X"], "C": centers}, collect_stats=True
        )
    total_flops += stats.flops
    labels = np.argmin(D, axis=1)
    inertia = float(np.maximum(D[np.arange(n), labels], 0.0).sum())
    return KMeansResult(
        centers=centers,
        labels=labels,
        inertia=inertia,
        iterations=it,
        inertia_history=history,
        flops_executed=total_flops,
        replans=replans,
        plan_history=plan_history,
    )

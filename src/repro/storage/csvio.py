"""CSV import/export for tables.

Types are inferred per column (int -> float -> bool -> str fallback) unless
a schema is supplied. This exists so examples and benchmarks can round-trip
datasets through files the way the surveyed in-RDBMS systems load data.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

import numpy as np

from ..errors import StorageError
from .schema import ColumnType, Schema
from .table import Table

_TRUE = {"true", "t", "yes", "1"}
_FALSE = {"false", "f", "no", "0"}


def read_csv(path: str | Path, schema: Schema | None = None) -> Table:
    """Load a CSV file (header row required) into a table."""
    with open(path, newline="") as f:
        return _read(f, schema)


def read_csv_string(text: str, schema: Schema | None = None) -> Table:
    """Load CSV content from a string (header row required)."""
    return _read(io.StringIO(text), schema)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to a CSV file with a header row."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(table.schema.names)
        writer.writerows(table.rows())


def _read(f, schema: Schema | None) -> Table:
    reader = csv.reader(f)
    try:
        header = next(reader)
    except StopIteration:
        raise StorageError("CSV input is empty (expected a header row)") from None
    rows = list(reader)
    for row in rows:
        if len(row) != len(header):
            raise StorageError(
                f"ragged CSV row: expected {len(header)} fields, got {len(row)}"
            )
    columns = [[row[i] for row in rows] for i in range(len(header))]

    if schema is not None:
        if list(schema.names) != header:
            raise StorageError(
                f"CSV header {header} does not match schema {list(schema.names)}"
            )
        arrays = [
            _coerce(values, schema.type_of(name))
            for name, values in zip(header, columns)
        ]
        return Table(schema, arrays)

    data = {name: _infer(values) for name, values in zip(header, columns)}
    return Table.from_columns(data)


def _coerce(values: Sequence[str], ctype: ColumnType) -> np.ndarray:
    try:
        if ctype == ColumnType.INT:
            return np.array([int(v) for v in values], dtype=np.int64)
        if ctype == ColumnType.FLOAT:
            return np.array([float(v) for v in values], dtype=np.float64)
        if ctype == ColumnType.BOOL:
            return np.array([_parse_bool(v) for v in values], dtype=bool)
        return np.array(list(values), dtype=object)
    except ValueError as exc:
        raise StorageError(f"cannot parse column as {ctype.value}: {exc}") from exc


def _parse_bool(value: str) -> bool:
    v = value.strip().lower()
    if v in _TRUE:
        return True
    if v in _FALSE:
        return False
    raise ValueError(f"not a boolean: {value!r}")


def _infer(values: Sequence[str]) -> np.ndarray:
    for ctype in (ColumnType.INT, ColumnType.FLOAT, ColumnType.BOOL):
        try:
            return _coerce(values, ctype)
        except StorageError:
            continue
    return np.array(list(values), dtype=object)

"""Materialized query results with version-based invalidation.

Feature queries are re-issued constantly during model iteration — the
same GROUP BY mart feeding every hyperparameter trial. A
:class:`QueryCache` memoizes SELECT results keyed by (query text, the
versions of every table it reads); registering new data under a table
name bumps that table's version and invalidates exactly the cached
queries that read it. Tables that mutate in place (a
:class:`~repro.incremental.DynamicTable`) contribute their own mutation
epoch to the key, so a stream of inserts/deletes/updates invalidates
cached queries without any re-registration.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import StorageError
from .catalog import Catalog
from .sql import parse_sql, run_sql
from .table import Table


class VersionedCatalog(Catalog):
    """A catalog that counts mutations per table name."""

    def __init__(self) -> None:
        super().__init__()
        self._versions: dict[str, int] = {}

    def register(self, name: str, table: Table, replace: bool = False) -> None:
        super().register(name, table, replace)
        self._versions[name] = self._versions.get(name, 0) + 1

    def drop(self, name: str) -> None:
        super().drop(name)
        self._versions[name] = self._versions.get(name, 0) + 1

    def version(self, name: str) -> int:
        """Mutation counter for a table name (0 if never registered)."""
        return self._versions.get(name, 0)


@dataclass
class QueryCacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryCache:
    """LRU cache of SELECT results over a :class:`VersionedCatalog`."""

    def __init__(self, catalog: VersionedCatalog, capacity: int = 64):
        if not isinstance(catalog, VersionedCatalog):
            raise StorageError("QueryCache requires a VersionedCatalog")
        if capacity < 1:
            raise StorageError("capacity must be >= 1")
        self.catalog = catalog
        self.capacity = capacity
        self._entries: OrderedDict[str, tuple[tuple, Table]] = OrderedDict()
        self.stats = QueryCacheStats()

    def _table_versions(self, text: str) -> tuple:
        query = parse_sql(text)
        names = [query.table] + [j.table for j in query.joins]
        return tuple(
            (name, self.catalog.version(name), self._table_epoch(name))
            for name in sorted(set(names))
        )

    def _table_epoch(self, name: str) -> int:
        """Mutation epoch of the registered table object itself.

        The catalog version only moves on register/drop; a
        :class:`~repro.incremental.DynamicTable` mutates *in place* and
        bumps its own ``version``. Folding that epoch into the cache key
        means an insert/delete/update can never leave a stale cached
        result servable.
        """
        if name not in self.catalog:
            return 0
        return int(getattr(self.catalog.get(name), "version", 0))

    def run(self, text: str) -> Table:
        """Execute a SELECT, serving an identical-version repeat from cache."""
        versions = self._table_versions(text)
        cached = self._entries.get(text)
        if cached is not None:
            cached_versions, result = cached
            if cached_versions == versions:
                self.stats.hits += 1
                self._entries.move_to_end(text)
                return result
            # A referenced table changed: drop the stale entry.
            del self._entries[text]
            self.stats.invalidations += 1
        self.stats.misses += 1
        result = run_sql(text, self.catalog)
        self._entries[text] = (versions, result)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

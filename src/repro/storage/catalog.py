"""A named-table catalog: the 'database' the in-DB ML layer runs against."""

from __future__ import annotations

from typing import Iterator

from ..errors import StorageError
from .table import Table


class Catalog:
    """A mutable mapping of table names to tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def register(self, name: str, table: Table, replace: bool = False) -> None:
        """Add a table under ``name``.

        Raises:
            StorageError: if the name exists and ``replace`` is false.
        """
        if name in self._tables and not replace:
            raise StorageError(f"table {name!r} already registered")
        self._tables[name] = table

    def get(self, name: str) -> Table:
        if name not in self._tables:
            raise StorageError(
                f"no table named {name!r}; have {sorted(self._tables)}"
            )
        return self._tables[name]

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise StorageError(f"no table named {name!r}")
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    def __len__(self) -> int:
        return len(self._tables)

"""Table-operator fingerprints and materialized-operator reuse.

The materialization store's matching rule — content-hashed identity over
structure x operands x flags — applies to the relational layer as well
as to linear-algebra sub-plans: a feature mart built by a deterministic
operator pipeline over byte-identical base tables is the same mart, no
matter which workload asks for it. This module supplies the relational
half of that identity:

* :func:`table_fingerprint` — a SHA-256 over a table's schema and
  column bytes (pure content; the table's catalog name never enters).
* :func:`operator_fingerprint` — a full
  :class:`~repro.materialize.fingerprint.Fingerprint` for one operator
  application: the operator name plus its canonicalized parameters form
  the structural component, input-table content hashes the operand
  component.
* :func:`materialized_operator` — the reuse wrapper: consult an (opt-in)
  store before running the operator, offer the result after. Unlike the
  version-keyed :class:`~repro.storage.querycache.QueryCache`, entries
  survive process restarts and match across *different* catalogs bound
  to the same bytes — and a re-registered table that happens to be
  byte-identical still hits, where a version counter would invalidate.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable

import numpy as np

from ..materialize.fingerprint import Fingerprint
from ..materialize.store import MaterializationStore, active_store
from .table import Table

#: flops-estimate stand-in for operator cost: rows processed per call.
#: Relational operators are memory-bound, so "rows touched" is the unit
#: the store's admission floor sees (set ``min_flops`` accordingly on
#: stores dedicated to table reuse).
_ROWS_AS_FLOPS = 1.0


def table_fingerprint(table: Table) -> str:
    """``table:sha256`` over a table's schema and column content."""
    h = hashlib.sha256()
    for col in table.schema:
        h.update(f"{col.name}:{col.ctype.name};".encode("utf-8"))
    for name in table.schema.names:
        arr = table.column(name)
        h.update(name.encode("utf-8"))
        h.update(b":")
        if arr.dtype.kind in ("U", "S", "O"):
            for v in arr:
                h.update(str(v).encode("utf-8"))
                h.update(b"\x00")
        else:
            h.update(np.ascontiguousarray(arr).tobytes())
        h.update(b"|")
    return f"table:{h.hexdigest()}"


def _canonical_params(params: dict[str, Any]) -> str:
    try:
        return json.dumps(params, sort_keys=True, default=str)
    except TypeError:
        return repr(sorted(params.items()))


def operator_fingerprint(
    op: str, inputs: tuple[Table, ...] | list[Table], params: dict[str, Any]
) -> Fingerprint:
    """Fingerprint one relational-operator application.

    Structural component: the operator name and its canonicalized
    parameters (sorted-key JSON). Operand component: the input tables'
    content hashes, in argument order. Flags are unused at this layer.
    """
    structural = hashlib.sha256(
        f"tableop:{op}({_canonical_params(params)})".encode("utf-8")
    ).hexdigest()
    operands = tuple(table_fingerprint(t) for t in inputs)
    return Fingerprint(structural=structural, operands=operands, flags="")


def materialized_operator(
    op: str,
    fn: Callable[..., Table],
    *inputs: Table,
    params: dict[str, Any] | None = None,
    store: MaterializationStore | None = None,
    pin: bool = False,
) -> Table:
    """Run ``fn(*inputs, **params)`` through the materialization store.

    With no store (argument or active global), this is a plain call.
    Otherwise the operator's fingerprint is looked up first; a miss runs
    the operator and offers the result with ``source="table"`` lineage
    whose children are the input tables' content hashes — so provenance
    reads end-to-end from base bytes to derived mart.
    """
    params = params or {}
    store = store if store is not None else active_store()
    if store is None:
        return fn(*inputs, **params)
    fp = operator_fingerprint(op, inputs, params)
    cached = store.lookup(fp)
    if cached is not None:
        return cached
    result = fn(*inputs, **params)
    rows = sum(t.num_rows for t in inputs) or getattr(result, "num_rows", 0)
    store.put(
        fp,
        result,
        label=f"tableop:{op}",
        flops=rows * _ROWS_AS_FLOPS,
        structural=f"tableop:{op}({_canonical_params(params)})",
        children=fp.operands,
        pin=pin,
        source="table",
        nbytes=_table_bytes(result) if isinstance(result, Table) else None,
    )
    # record the base tables so lineage bottoms out at real content
    for t, key in zip(inputs, fp.operands):
        if key not in store.lineage:
            store.lineage.record(
                key,
                "table:base",
                key,
                shape=(t.num_rows, t.num_columns),
                nbytes=_table_bytes(t),
                source="table",
            )
    return result


def _table_bytes(table: Table) -> int:
    return sum(int(np.asarray(c).nbytes) for c in table.columns().values())

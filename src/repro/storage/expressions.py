"""Vectorized row expressions for predicates and computed columns.

Expressions form a small tree evaluated column-at-a-time against a
:class:`~repro.storage.table.Table`:

>>> from repro.storage import col, lit
>>> expr = (col("age") >= 18) & (col("country") == "FR")
>>> mask = expr.evaluate(table)        # boolean numpy array

Comparison and arithmetic operators are overloaded on :class:`Expr`;
plain Python values are lifted to literals automatically.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import StorageError
from .table import Table


class Expr:
    """Base class of the expression tree."""

    def evaluate(self, table: Table) -> np.ndarray:
        raise NotImplementedError

    # -- comparisons ----------------------------------------------------
    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinaryOp("==", self, lift(other), np.equal)

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinaryOp("!=", self, lift(other), np.not_equal)

    def __lt__(self, other: Any) -> "Expr":
        return BinaryOp("<", self, lift(other), np.less)

    def __le__(self, other: Any) -> "Expr":
        return BinaryOp("<=", self, lift(other), np.less_equal)

    def __gt__(self, other: Any) -> "Expr":
        return BinaryOp(">", self, lift(other), np.greater)

    def __ge__(self, other: Any) -> "Expr":
        return BinaryOp(">=", self, lift(other), np.greater_equal)

    __hash__ = None  # type: ignore[assignment]  # == builds an Expr, not a bool

    # -- boolean connectives --------------------------------------------
    def __and__(self, other: Any) -> "Expr":
        return BinaryOp("and", self, lift(other), np.logical_and)

    def __or__(self, other: Any) -> "Expr":
        return BinaryOp("or", self, lift(other), np.logical_or)

    def __invert__(self) -> "Expr":
        return UnaryOp("not", self, np.logical_not)

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return BinaryOp("+", self, lift(other), np.add)

    def __radd__(self, other: Any) -> "Expr":
        return BinaryOp("+", lift(other), self, np.add)

    def __sub__(self, other: Any) -> "Expr":
        return BinaryOp("-", self, lift(other), np.subtract)

    def __rsub__(self, other: Any) -> "Expr":
        return BinaryOp("-", lift(other), self, np.subtract)

    def __mul__(self, other: Any) -> "Expr":
        return BinaryOp("*", self, lift(other), np.multiply)

    def __rmul__(self, other: Any) -> "Expr":
        return BinaryOp("*", lift(other), self, np.multiply)

    def __truediv__(self, other: Any) -> "Expr":
        return BinaryOp("/", self, lift(other), np.divide)

    def __rtruediv__(self, other: Any) -> "Expr":
        return BinaryOp("/", lift(other), self, np.divide)

    def __neg__(self) -> "Expr":
        return UnaryOp("neg", self, np.negative)

    # -- convenience ------------------------------------------------------
    def isin(self, values: Any) -> "Expr":
        """True where the expression value is one of ``values``."""
        value_set = list(values)

        def _isin(arr: np.ndarray) -> np.ndarray:
            return np.isin(arr, value_set)

        return UnaryOp("isin", self, _isin)

    def is_null(self) -> "Expr":
        """True where the value is None or NaN."""

        def _isnull(arr: np.ndarray) -> np.ndarray:
            if arr.dtype.kind == "f":
                return np.isnan(arr)
            if arr.dtype == object:
                return np.array([v is None for v in arr], dtype=bool)
            return np.zeros(len(arr), dtype=bool)

        return UnaryOp("is_null", self, _isnull)


class ColumnRef(Expr):
    """Reference to a named column of the input table."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, table: Table) -> np.ndarray:
        return table.column(self.name)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expr):
    """A constant broadcast across all rows."""

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, table: Table) -> np.ndarray:
        return np.full(table.num_rows, self.value)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class BinaryOp(Expr):
    """A vectorized binary operation."""

    def __init__(self, symbol: str, left: Expr, right: Expr, fn: Callable):
        self.symbol = symbol
        self.left = left
        self.right = right
        self.fn = fn

    def evaluate(self, table: Table) -> np.ndarray:
        # Literals do not need materializing to full arrays for binary ops;
        # numpy broadcasting handles scalars directly.
        left = (
            self.left.value
            if isinstance(self.left, Literal)
            else self.left.evaluate(table)
        )
        right = (
            self.right.value
            if isinstance(self.right, Literal)
            else self.right.evaluate(table)
        )
        try:
            return self.fn(left, right)
        except TypeError as exc:
            raise StorageError(
                f"cannot evaluate {self!r}: incompatible operand types"
            ) from exc

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class UnaryOp(Expr):
    """A vectorized unary operation."""

    def __init__(self, symbol: str, operand: Expr, fn: Callable):
        self.symbol = symbol
        self.operand = operand
        self.fn = fn

    def evaluate(self, table: Table) -> np.ndarray:
        return self.fn(self.operand.evaluate(table))

    def __repr__(self) -> str:
        return f"{self.symbol}({self.operand!r})"


def col(name: str) -> ColumnRef:
    """Reference a column by name."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Wrap a constant as an expression."""
    return Literal(value)


def lift(value: Any) -> Expr:
    """Lift a plain Python value to an expression (no-op for Expr)."""
    return value if isinstance(value, Expr) else Literal(value)

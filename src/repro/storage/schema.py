"""Schemas for the column-store relational substrate.

A :class:`Schema` is an ordered collection of named, typed columns. It is
immutable: every transformation returns a new ``Schema``. Types are
deliberately small — the four types cover everything the in-database ML
layer (``repro.indb``) needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """Logical column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store values of this logical type."""
        return _NUMPY_DTYPES[self]

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "ColumnType":
        """Infer the logical type for a numpy dtype.

        Raises:
            SchemaError: if the dtype has no logical equivalent.
        """
        kind = np.dtype(dtype).kind
        if kind in "iu":
            return cls.INT
        if kind == "f":
            return cls.FLOAT
        if kind == "b":
            return cls.BOOL
        if kind in "UOS":
            return cls.STR
        raise SchemaError(f"unsupported numpy dtype {dtype!r}")


_NUMPY_DTYPES = {
    ColumnType.INT: np.dtype(np.int64),
    ColumnType.FLOAT: np.dtype(np.float64),
    ColumnType.STR: np.dtype(object),
    ColumnType.BOOL: np.dtype(np.bool_),
}


@dataclass(frozen=True)
class Column:
    """A named, typed column in a schema."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


class Schema:
    """An ordered, immutable list of :class:`Column` with unique names."""

    def __init__(self, columns: Iterable[Column]):
        self._columns = tuple(columns)
        names = [c.name for c in self._columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        self._index = {c.name: i for i, c in enumerate(self._columns)}

    @classmethod
    def of(cls, **types: ColumnType | str) -> "Schema":
        """Build a schema from keyword arguments.

        >>> Schema.of(id="int", name="str")
        """
        cols = []
        for name, ctype in types.items():
            if isinstance(ctype, str):
                ctype = ColumnType(ctype)
            cols.append(Column(name, ctype))
        return cls(cols)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise SchemaError(f"no column named {name!r}; have {self.names}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"Schema({inner})"

    def position(self, name: str) -> int:
        """Ordinal position of a column."""
        if name not in self._index:
            raise SchemaError(f"no column named {name!r}; have {self.names}")
        return self._index[name]

    def type_of(self, name: str) -> ColumnType:
        return self[name].ctype

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema([self[n] for n in names])

    def drop(self, names: Iterable[str]) -> "Schema":
        """Schema without the given columns."""
        dropped = set(names)
        missing = dropped - set(self.names)
        if missing:
            raise SchemaError(f"cannot drop unknown columns {sorted(missing)}")
        return Schema([c for c in self._columns if c.name not in dropped])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with columns renamed according to ``mapping``."""
        missing = set(mapping) - set(self.names)
        if missing:
            raise SchemaError(f"cannot rename unknown columns {sorted(missing)}")
        return Schema(
            [Column(mapping.get(c.name, c.name), c.ctype) for c in self._columns]
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema with the columns of ``other`` appended."""
        return Schema(self._columns + other._columns)

    def prefixed(self, prefix: str) -> "Schema":
        """Schema with every column name prefixed (used to disambiguate joins)."""
        return Schema([Column(prefix + c.name, c.ctype) for c in self._columns])

"""A SQL front-end for the relational substrate.

Implements the query subset an in-RDBMS ML workflow actually issues —
the MADlib-style feature queries of the tutorial's first pillar:

    SELECT [DISTINCT] cols | aggregates
    FROM table
    [JOIN table ON a = b]...
    [WHERE predicate]
    [GROUP BY cols [HAVING predicate]]
    [ORDER BY col [DESC]]
    [LIMIT n]

Queries compile onto the operators of :mod:`repro.storage.operators`:

>>> run_sql("SELECT city, AVG(income) AS avg_income FROM people "
...         "GROUP BY city ORDER BY avg_income DESC", catalog)

The dialect supports arithmetic and boolean expressions, ``IN`` lists,
``IS [NOT] NULL``, column aliases, and inner/left joins.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from ..errors import StorageError
from .aggregates import AggSpec, agg
from .catalog import Catalog
from .expressions import Expr, col, lit
from .operators import (
    distinct,
    extend,
    filter_rows,
    group_by,
    hash_join,
    limit,
    order_by,
)
from .table import Table


class SQLError(StorageError):
    """The query is malformed or refers to missing objects."""


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>\d+\.\d*|\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<symbol><>|!=|<=|>=|=|<|>|\(|\)|,|\*|\+|-|/|\.)
    )
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "JOIN", "LEFT", "INNER", "ON", "WHERE",
    "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "AS", "AND", "OR", "NOT",
    "IN", "IS", "NULL", "DESC", "ASC", "TRUE", "FALSE",
}

AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass
class Token:
    kind: str  # 'number' | 'string' | 'ident' | 'keyword' | 'symbol' | 'end'
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.start() != pos:
            raise SQLError(f"unexpected character {text[pos]!r} at {pos}")
        kind = match.lastgroup or "symbol"
        value = match.group(kind)
        if kind == "ident" and value.upper() in KEYWORDS:
            tokens.append(Token("keyword", value.upper(), pos))
        else:
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    tokens.append(Token("end", "", len(text)))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass
class SelectItem:
    """One output column: a plain expression or an aggregate call."""

    expression: Expr | None  # None for aggregate items
    aggregate: AggSpec | None
    alias: str | None
    source_text: str


@dataclass
class JoinClause:
    table: str
    left_key: str
    right_key: str
    how: str  # 'inner' | 'left'


@dataclass
class SelectQuery:
    items: list[SelectItem]
    star: bool
    table: str
    joins: list[JoinClause] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[str] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[str] = field(default_factory=list)
    order_desc: bool = False
    limit: int | None = None
    distinct: bool = False


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[Token], text: str):
        self.tokens = tokens
        self.text = text
        self.index = 0

    # -- token helpers ----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            want = value or kind
            raise SQLError(
                f"expected {want} at position {self.current.position}, "
                f"got {self.current.value!r}"
            )
        return token

    # -- grammar -----------------------------------------------------------
    def parse(self) -> SelectQuery:
        self.expect("keyword", "SELECT")
        is_distinct = self.accept("keyword", "DISTINCT") is not None
        star, items = self._select_list()
        self.expect("keyword", "FROM")
        table = self.expect("ident").value

        joins = []
        while True:
            how = "inner"
            if self.accept("keyword", "LEFT"):
                how = "left"
                self.expect("keyword", "JOIN")
            elif self.accept("keyword", "INNER"):
                self.expect("keyword", "JOIN")
            elif not self.accept("keyword", "JOIN"):
                break
            join_table = self.expect("ident").value
            self.expect("keyword", "ON")
            left_key = self.expect("ident").value
            self.expect("symbol", "=")
            right_key = self.expect("ident").value
            joins.append(JoinClause(join_table, left_key, right_key, how))

        where = None
        if self.accept("keyword", "WHERE"):
            where = self._expression()

        group_cols: list[str] = []
        having = None
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_cols.append(self.expect("ident").value)
            while self.accept("symbol", ","):
                group_cols.append(self.expect("ident").value)
            if self.accept("keyword", "HAVING"):
                having = self._expression()

        order_cols: list[str] = []
        desc = False
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_cols.append(self.expect("ident").value)
            while self.accept("symbol", ","):
                order_cols.append(self.expect("ident").value)
            if self.accept("keyword", "DESC"):
                desc = True
            else:
                self.accept("keyword", "ASC")

        limit_n = None
        if self.accept("keyword", "LIMIT"):
            limit_n = int(self.expect("number").value)

        self.expect("end")
        return SelectQuery(
            items=items,
            star=star,
            table=table,
            joins=joins,
            where=where,
            group_by=group_cols,
            having=having,
            order_by=order_cols,
            order_desc=desc,
            limit=limit_n,
            distinct=is_distinct,
        )

    def _select_list(self) -> tuple[bool, list[SelectItem]]:
        if self.accept("symbol", "*"):
            return True, []
        items = [self._select_item()]
        while self.accept("symbol", ","):
            items.append(self._select_item())
        return False, items

    def _select_item(self) -> SelectItem:
        start = self.current.position
        token = self.current
        if (
            token.kind == "ident"
            and token.value.upper() in AGGREGATE_NAMES
            and self.tokens[self.index + 1].value == "("
        ):
            spec = self._aggregate_call()
            alias = self._alias()
            if alias:
                spec = AggSpec(spec.func, spec.column, alias)
            return SelectItem(None, spec, alias, self.text[start:])
        expression = self._expression()
        alias = self._alias()
        return SelectItem(expression, None, alias, self.text[start:])

    def _aggregate_call(self) -> AggSpec:
        name = self.expect("ident").value.upper()
        self.expect("symbol", "(")
        if name == "COUNT" and self.accept("symbol", "*"):
            self.expect("symbol", ")")
            return agg("count")
        column = self.expect("ident").value
        self.expect("symbol", ")")
        mapping = {"SUM": "sum", "AVG": "avg", "MIN": "min", "MAX": "max",
                   "COUNT": "count"}
        if name == "COUNT":
            # COUNT(col) counts rows; nulls are not tracked separately here.
            return agg("count", output=f"count_{column}")
        return agg(mapping[name], column)

    def _alias(self) -> str | None:
        if self.accept("keyword", "AS"):
            return self.expect("ident").value
        return None

    # -- expression grammar -------------------------------------------------
    def _expression(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self.accept("keyword", "OR"):
            left = left | self._and()
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self.accept("keyword", "AND"):
            left = left & self._not()
        return left

    def _not(self) -> Expr:
        if self.accept("keyword", "NOT"):
            return ~self._not()
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self.current
        if token.kind == "symbol" and token.value in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            self.advance()
            right = self._additive()
            ops = {
                "=": lambda a, b: a == b,
                "!=": lambda a, b: a != b,
                "<>": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }
            return ops[token.value](left, right)
        if self.accept("keyword", "IN"):
            self.expect("symbol", "(")
            values = [self._literal_value()]
            while self.accept("symbol", ","):
                values.append(self._literal_value())
            self.expect("symbol", ")")
            return left.isin(values)
        if self.accept("keyword", "IS"):
            negated = self.accept("keyword", "NOT") is not None
            self.expect("keyword", "NULL")
            null_check = left.is_null()
            return ~null_check if negated else null_check
        return left

    def _additive(self) -> Expr:
        left = self._term()
        while True:
            if self.accept("symbol", "+"):
                left = left + self._term()
            elif self.accept("symbol", "-"):
                left = left - self._term()
            else:
                return left

    def _term(self) -> Expr:
        left = self._factor()
        while True:
            if self.accept("symbol", "*"):
                left = left * self._factor()
            elif self.accept("symbol", "/"):
                left = left / self._factor()
            else:
                return left

    def _factor(self) -> Expr:
        if self.accept("symbol", "("):
            inner = self._expression()
            self.expect("symbol", ")")
            return inner
        if self.accept("symbol", "-"):
            return -self._factor()
        token = self.current
        if token.kind == "number":
            self.advance()
            return lit(_number(token.value))
        if token.kind == "string":
            self.advance()
            return lit(_unquote(token.value))
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return lit(token.value == "TRUE")
        if token.kind == "keyword" and token.value == "NULL":
            self.advance()
            return lit(None)
        if token.kind == "ident":
            self.advance()
            return col(token.value)
        raise SQLError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    def _literal_value(self) -> Any:
        token = self.current
        if token.kind == "number":
            self.advance()
            return _number(token.value)
        if token.kind == "string":
            self.advance()
            return _unquote(token.value)
        raise SQLError(
            f"expected a literal at position {token.position}, "
            f"got {token.value!r}"
        )


def _number(text: str):
    return float(text) if "." in text else int(text)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def parse_sql(text: str) -> SelectQuery:
    """Parse a SELECT statement into a query AST."""
    return _Parser(tokenize(text), text).parse()


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
def run_sql(text: str, catalog: Catalog, optimize: bool = True) -> Table:
    """Parse and execute a SELECT against tables in a catalog.

    With ``optimize`` (default), single-table WHERE conjuncts are pushed
    below the joins (see :mod:`repro.storage.sqlopt`).
    """
    from .sqlopt import conjoin, plan_pushdown

    query = parse_sql(text)
    table = catalog.get(query.table)
    join_tables = [catalog.get(j.table) for j in query.joins]

    if optimize:
        plan = plan_pushdown(query.where, table, query.joins, join_tables)
        for predicate in plan.base_predicates:
            table = filter_rows(table, predicate)
        for i, join in enumerate(query.joins):
            right = join_tables[i]
            for predicate in plan.join_predicates.get(i, []):
                right = filter_rows(right, predicate)
            table = hash_join(
                table,
                right,
                on=join.left_key,
                right_on=join.right_key,
                how=join.how,
            )
        residual = conjoin(plan.residual)
        if residual is not None:
            table = filter_rows(table, residual)
    else:
        for join, right in zip(query.joins, join_tables):
            table = hash_join(
                table,
                right,
                on=join.left_key,
                right_on=join.right_key,
                how=join.how,
            )
        if query.where is not None:
            table = filter_rows(table, query.where)

    if query.group_by or any(item.aggregate for item in query.items):
        table = _execute_aggregation(table, query)
    elif not query.star:
        table = _execute_projection(table, query)

    if query.distinct:
        table = distinct(table)
    if query.order_by:
        table = order_by(table, query.order_by, descending=query.order_desc)
    if query.limit is not None:
        table = limit(table, query.limit)
    return table


def explain_sql(text: str, catalog: Catalog) -> str:
    """Describe predicate placement with estimated row counts.

    Pushed predicates are annotated with histogram-based selectivity
    estimates for the table they run against.
    """
    from .sqlopt import conjoin, plan_pushdown
    from .stats import TableStats, estimate_rows

    query = parse_sql(text)
    base = catalog.get(query.table)
    join_tables = [catalog.get(j.table) for j in query.joins]
    plan = plan_pushdown(query.where, base, query.joins, join_tables)

    lines = [
        f"FROM {query.table}"
        + "".join(f" {j.how.upper()} JOIN {j.table}" for j in query.joins)
    ]
    base_stats = TableStats.collect(base)
    base_pred = conjoin(plan.base_predicates)
    if base_pred is not None:
        lines.append(
            f"push to base table ({query.table}, {base.num_rows} rows): "
            f"{base_pred!r} -> ~{estimate_rows(base_pred, base_stats)} rows"
        )
    for i, join in enumerate(query.joins):
        preds = plan.join_predicates.get(i, [])
        if not preds:
            continue
        right = join_tables[i]
        right_stats = TableStats.collect(right)
        pred = conjoin(preds)
        lines.append(
            f"push to join #{i} right side ({join.table}, {right.num_rows} "
            f"rows): {pred!r} -> ~{estimate_rows(pred, right_stats)} rows"
        )
    for p in plan.residual:
        lines.append(f"evaluate after joins: {p!r}")
    if query.where is None:
        lines.append("(no WHERE clause)")
    return "\n".join(lines)


def _execute_projection(table: Table, query: SelectQuery) -> Table:
    names = []
    for i, item in enumerate(query.items):
        if item.aggregate is not None:
            raise SQLError("aggregate outside GROUP BY context")
        name = item.alias or _plain_column_name(item.expression)
        if name is None:
            name = f"expr_{i}"
        if (
            _plain_column_name(item.expression) == name
            and name in table.schema
        ):
            names.append(name)
        else:
            table = extend(table, name, item.expression)
            names.append(name)
    return table.select(names)


def _execute_aggregation(table: Table, query: SelectQuery) -> Table:
    aggregates = []
    output_names = []
    for item in query.items:
        if item.aggregate is not None:
            aggregates.append(item.aggregate)
            output_names.append(item.aggregate.output)
        else:
            name = _plain_column_name(item.expression)
            if name is None or name not in query.group_by:
                raise SQLError(
                    "non-aggregate SELECT items must be GROUP BY columns"
                )
            output_names.append(name)
    if not aggregates:
        raise SQLError("GROUP BY requires at least one aggregate")
    result = group_by(table, query.group_by, aggregates)
    if query.having is not None:
        result = filter_rows(result, query.having)
    return result.select(output_names) if output_names else result


def _plain_column_name(expression: Expr | None) -> str | None:
    from .expressions import ColumnRef

    if isinstance(expression, ColumnRef):
        return expression.name
    return None

"""Relational operators over column-store tables.

These are classic single-node, vectorized implementations: predicates are
evaluated column-at-a-time, joins hash-partition the build side, and
group-by maps keys to dense group ids and reduces with per-group
vectorized aggregates. Together with :mod:`repro.storage.table` they form
the relational substrate the in-database ML layer runs on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SchemaError, StorageError
from .aggregates import AggSpec
from .expressions import Expr
from .table import Table


def filter_rows(table: Table, predicate: Expr) -> Table:
    """Rows where the predicate evaluates to true."""
    mask = np.asarray(predicate.evaluate(table), dtype=bool)
    return table.mask(mask)


def project(table: Table, names: Sequence[str]) -> Table:
    """Projection onto the named columns."""
    return table.select(names)


def extend(table: Table, name: str, expression: Expr) -> Table:
    """Table with a computed column appended."""
    return table.with_column(name, expression.evaluate(table))


def order_by(
    table: Table, names: Sequence[str], descending: bool = False
) -> Table:
    """Rows sorted by the given key columns (stable sort)."""
    if not names:
        raise StorageError("order_by requires at least one key column")
    keys = [table.column(n) for n in reversed(names)]
    order = np.lexsort([_sortable(k) for k in keys])
    if descending:
        order = order[::-1]
    return table.take(order)


def limit(table: Table, n: int) -> Table:
    """The first ``n`` rows."""
    return table.head(n)


def union_all(tables: Sequence[Table]) -> Table:
    """Concatenation of same-schema tables."""
    if not tables:
        raise StorageError("union_all requires at least one table")
    out = tables[0]
    for t in tables[1:]:
        out = out.concat_rows(t)
    return out


def distinct(table: Table, names: Sequence[str] | None = None) -> Table:
    """Rows deduplicated by the given key columns (first occurrence kept)."""
    names = list(names) if names is not None else list(table.schema.names)
    _, first_idx = _group_ids(table, names)
    return table.take(np.sort(first_idx))


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
def hash_join(
    left: Table,
    right: Table,
    on: str | Sequence[str],
    right_on: str | Sequence[str] | None = None,
    how: str = "inner",
) -> Table:
    """Hash join of two tables.

    Args:
        on: key column(s) of the left table.
        right_on: key column(s) of the right table (defaults to ``on``).
        how: ``"inner"`` or ``"left"``. Left join pads unmatched right
            columns with type defaults (0 / NaN / None / False).

    The right side is used as the build side. Non-key right columns whose
    names collide with left columns are disambiguated with a ``right_``
    prefix. Key columns are emitted once (from the left).
    """
    left_keys = [on] if isinstance(on, str) else list(on)
    right_keys = (
        left_keys
        if right_on is None
        else ([right_on] if isinstance(right_on, str) else list(right_on))
    )
    if len(left_keys) != len(right_keys):
        raise StorageError(
            f"join key arity mismatch: {left_keys} vs {right_keys}"
        )
    if how not in ("inner", "left"):
        raise StorageError(f"unsupported join type {how!r}")

    build = _build_hash_index(right, right_keys)
    probe_rows = zip(*[left.column(k) for k in left_keys])

    left_idx: list[int] = []
    right_idx: list[int] = []
    for i, key in enumerate(probe_rows):
        matches = build.get(key)
        if matches is not None:
            left_idx.extend([i] * len(matches))
            right_idx.extend(matches)
        elif how == "left":
            left_idx.append(i)
            right_idx.append(-1)

    left_out = left.take(np.asarray(left_idx, dtype=np.int64))

    # Assemble the right-side payload (non-key columns).
    payload_names = [n for n in right.schema.names if n not in right_keys]
    out = left_out
    right_positions = np.asarray(right_idx, dtype=np.int64)
    unmatched = right_positions < 0
    safe_positions = np.where(unmatched, 0, right_positions)
    for name in payload_names:
        values = right.column(name)[safe_positions] if len(right) else _defaults(
            right, name, len(right_positions)
        )
        if unmatched.any():
            values = _pad_unmatched(values, unmatched)
        out_name = name if name not in out.schema else f"right_{name}"
        out = out.with_column(out_name, values)
    return out


def _build_hash_index(table: Table, keys: Sequence[str]) -> dict:
    index: dict[tuple, list[int]] = {}
    for i, key in enumerate(zip(*[table.column(k) for k in keys])):
        index.setdefault(key, []).append(i)
    return index


def _defaults(table: Table, name: str, n: int) -> np.ndarray:
    dtype = table.column(name).dtype
    if dtype.kind == "f":
        return np.full(n, np.nan)
    if dtype.kind in "iu":
        return np.zeros(n, dtype=np.int64)
    if dtype.kind == "b":
        return np.zeros(n, dtype=bool)
    return np.array([None] * n, dtype=object)


def _pad_unmatched(values: np.ndarray, unmatched: np.ndarray) -> np.ndarray:
    values = values.copy()
    if values.dtype.kind == "f":
        values[unmatched] = np.nan
    elif values.dtype.kind in "iu":
        values[unmatched] = 0
    elif values.dtype.kind == "b":
        values[unmatched] = False
    else:
        values[unmatched] = None
    return values


# ----------------------------------------------------------------------
# Group-by
# ----------------------------------------------------------------------
def group_by(
    table: Table, keys: Sequence[str], aggregates: Sequence[AggSpec]
) -> Table:
    """Group rows by key columns and compute aggregates per group.

    Output schema: key columns (one row per distinct key combination, in
    first-occurrence order) followed by one column per aggregate.
    """
    if not aggregates:
        raise StorageError("group_by requires at least one aggregate")
    seen = set()
    for spec in aggregates:
        if spec.output in seen or spec.output in keys:
            raise SchemaError(f"duplicate output column {spec.output!r}")
        seen.add(spec.output)

    group_ids, first_idx = _group_ids(table, keys)
    num_groups = len(first_idx)

    out = table.take(first_idx).select(keys) if keys else Table.from_columns({})
    if not keys:
        # Full-table aggregation: a single group.
        group_ids = np.zeros(table.num_rows, dtype=np.int64)
        num_groups = 1
        out = None

    result_cols: dict[str, np.ndarray] = {}
    for spec in aggregates:
        values = table.column(spec.column) if spec.column is not None else None
        result_cols[spec.output] = spec.func.apply(values, group_ids, num_groups)

    if out is None:
        return Table.from_columns(result_cols)
    for name, values in result_cols.items():
        out = out.with_column(name, values)
    return out


def aggregate(table: Table, aggregates: Sequence[AggSpec]) -> Table:
    """Full-table aggregation (a one-row result)."""
    return group_by(table, [], aggregates)


def _group_ids(table: Table, keys: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Map each row to a dense group id; also return first-row index per group.

    Group ids are assigned in first-occurrence order so the output
    preserves the order groups appear in the input.
    """
    if not keys:
        n = table.num_rows
        return np.zeros(n, dtype=np.int64), np.zeros(min(n, 1), dtype=np.int64)
    key_columns = [table.column(k) for k in keys]
    ids = np.empty(table.num_rows, dtype=np.int64)
    first: list[int] = []
    mapping: dict[tuple, int] = {}
    for i, key in enumerate(zip(*key_columns)):
        gid = mapping.get(key)
        if gid is None:
            gid = len(mapping)
            mapping[key] = gid
            first.append(i)
        ids[i] = gid
    return ids, np.asarray(first, dtype=np.int64)


def _sortable(values: np.ndarray) -> np.ndarray:
    """Coerce object (string) columns to a sortable representation."""
    if values.dtype == object:
        return np.array(["" if v is None else str(v) for v in values])
    return values

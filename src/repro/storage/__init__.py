"""Column-store relational substrate.

The in-RDBMS ML techniques the tutorial surveys (MADlib, Bismarck) run
*inside* a database engine; this package is that engine for the
reproduction: typed schemas, numpy-backed column-store tables, vectorized
expressions, and the classic operators (filter, project, hash join,
group-by with aggregates).
"""

from .aggregates import AggregateFunction, AggSpec, agg
from .catalog import Catalog
from .csvio import read_csv, read_csv_string, write_csv
from .expressions import Expr, col, lit
from .lineage import (
    materialized_operator,
    operator_fingerprint,
    table_fingerprint,
)
from .operators import (
    aggregate,
    distinct,
    extend,
    filter_rows,
    group_by,
    hash_join,
    limit,
    order_by,
    project,
    union_all,
)
from .querycache import QueryCache, QueryCacheStats, VersionedCatalog
from .schema import Column, ColumnType, Schema
from .sql import SQLError, explain_sql, parse_sql, run_sql
from .stats import (
    NumericHistogram,
    TableStats,
    estimate_rows,
    estimate_selectivity,
)
from .table import Table

__all__ = [
    "AggSpec",
    "AggregateFunction",
    "Catalog",
    "Column",
    "ColumnType",
    "Expr",
    "NumericHistogram",
    "QueryCache",
    "QueryCacheStats",
    "Schema",
    "TableStats",
    "Table",
    "VersionedCatalog",
    "agg",
    "aggregate",
    "col",
    "distinct",
    "estimate_rows",
    "estimate_selectivity",
    "extend",
    "filter_rows",
    "group_by",
    "hash_join",
    "limit",
    "lit",
    "explain_sql",
    "order_by",
    "parse_sql",
    "project",
    "read_csv",
    "read_csv_string",
    "run_sql",
    "SQLError",
    "materialized_operator",
    "operator_fingerprint",
    "table_fingerprint",
    "union_all",
    "write_csv",
]

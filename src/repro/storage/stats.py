"""Table statistics and selectivity estimation.

Equi-depth histograms per numeric column plus distinct-value counts per
string column, and a selectivity estimator for simple predicates — the
statistics layer a cost-based engine consults before choosing a plan.
:func:`explain_sql` uses these to annotate expected row counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .expressions import BinaryOp, ColumnRef, Expr, Literal, UnaryOp
from .schema import ColumnType
from .table import Table

DEFAULT_BUCKETS = 16
#: fallback selectivity for predicates the estimator cannot analyze
UNKNOWN_SELECTIVITY = 0.33


@dataclass
class NumericHistogram:
    """Equi-depth histogram: each bucket holds ~the same number of rows."""

    edges: np.ndarray  # (k+1,) bucket boundaries
    counts: np.ndarray  # (k,) rows per bucket
    n_rows: int

    @classmethod
    def build(cls, values: np.ndarray, buckets: int = DEFAULT_BUCKETS):
        values = np.asarray(values, dtype=np.float64)
        values = values[np.isfinite(values)]
        if len(values) == 0:
            return cls(np.array([0.0, 0.0]), np.array([0]), 0)
        quantiles = np.linspace(0, 100, buckets + 1)
        edges = np.percentile(values, quantiles)
        edges = np.unique(edges)  # collapse duplicate boundaries
        if len(edges) < 2:
            edges = np.array([edges[0], edges[0]])
            return cls(edges, np.array([len(values)]), len(values))
        counts, _ = np.histogram(values, bins=edges)
        return cls(edges, counts, len(values))

    def fraction_below(self, threshold: float, inclusive: bool) -> float:
        """Estimated fraction of rows with value < (or <=) threshold."""
        if self.n_rows == 0:
            return 0.0
        if threshold < self.edges[0]:
            return 0.0
        if threshold >= self.edges[-1]:
            return 1.0
        total = 0.0
        for i in range(len(self.counts)):
            lo, hi = self.edges[i], self.edges[i + 1]
            if threshold >= hi:
                total += self.counts[i]
            elif threshold > lo:
                width = hi - lo
                covered = (threshold - lo) / width if width > 0 else 1.0
                total += self.counts[i] * covered
                break
            else:
                break
        return float(total) / self.n_rows

    def fraction_equal(self, value: float) -> float:
        """Estimated fraction equal to a point value (uniform-in-bucket)."""
        if self.n_rows == 0:
            return 0.0
        for i in range(len(self.counts)):
            lo, hi = self.edges[i], self.edges[i + 1]
            if lo <= value <= hi:
                # Assume ~distinct-per-bucket uniformity.
                bucket_fraction = self.counts[i] / self.n_rows
                return float(bucket_fraction / max(self.counts[i] ** 0.5, 1.0))
        return 0.0


@dataclass
class TableStats:
    """Per-column statistics for one table."""

    n_rows: int
    histograms: dict[str, NumericHistogram] = field(default_factory=dict)
    distinct: dict[str, int] = field(default_factory=dict)

    @classmethod
    def collect(cls, table: Table, buckets: int = DEFAULT_BUCKETS):
        stats = cls(n_rows=table.num_rows)
        for column in table.schema:
            values = table.column(column.name)
            if column.ctype in (ColumnType.INT, ColumnType.FLOAT):
                stats.histograms[column.name] = NumericHistogram.build(
                    values.astype(np.float64), buckets
                )
                stats.distinct[column.name] = len(np.unique(values))
            elif column.ctype == ColumnType.STR:
                stats.distinct[column.name] = len(set(values.tolist()))
            else:  # BOOL
                stats.distinct[column.name] = len(np.unique(values))
        return stats


def estimate_selectivity(expr: Expr, stats: TableStats) -> float:
    """Estimated fraction of rows a predicate keeps.

    Handles column-vs-literal comparisons via histograms, equality via
    distinct counts, AND/OR/NOT composition (independence assumption),
    and falls back to :data:`UNKNOWN_SELECTIVITY` otherwise.
    """
    if isinstance(expr, BinaryOp):
        if expr.symbol == "and":
            return estimate_selectivity(expr.left, stats) * estimate_selectivity(
                expr.right, stats
            )
        if expr.symbol == "or":
            a = estimate_selectivity(expr.left, stats)
            b = estimate_selectivity(expr.right, stats)
            return min(1.0, a + b - a * b)
        return _comparison_selectivity(expr, stats)
    if isinstance(expr, UnaryOp) and expr.symbol == "not":
        return 1.0 - estimate_selectivity(expr.operand, stats)
    if isinstance(expr, UnaryOp) and expr.symbol == "isin":
        return UNKNOWN_SELECTIVITY
    return UNKNOWN_SELECTIVITY


def _comparison_selectivity(expr: BinaryOp, stats: TableStats) -> float:
    column, literal, symbol = _normalize_comparison(expr)
    if column is None:
        return UNKNOWN_SELECTIVITY

    if symbol in ("==",):
        d = stats.distinct.get(column)
        if d:
            return min(1.0, 1.0 / d)
        return UNKNOWN_SELECTIVITY
    if symbol in ("!=",):
        d = stats.distinct.get(column)
        if d:
            return max(0.0, 1.0 - 1.0 / d)
        return UNKNOWN_SELECTIVITY

    histogram = stats.histograms.get(column)
    if histogram is None or not isinstance(literal, (int, float)):
        return UNKNOWN_SELECTIVITY
    value = float(literal)
    if symbol == "<":
        return histogram.fraction_below(value, inclusive=False)
    if symbol == "<=":
        return histogram.fraction_below(value, inclusive=True)
    if symbol == ">":
        return 1.0 - histogram.fraction_below(value, inclusive=True)
    if symbol == ">=":
        return 1.0 - histogram.fraction_below(value, inclusive=False)
    return UNKNOWN_SELECTIVITY


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _normalize_comparison(expr: BinaryOp):
    """Return (column, literal, symbol) with the column on the left."""
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left.name, expr.right.value, expr.symbol
    if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        return expr.right.name, expr.left.value, _FLIP.get(expr.symbol, expr.symbol)
    return None, None, expr.symbol


def estimate_rows(expr: Expr | None, stats: TableStats) -> int:
    """Estimated surviving row count for a predicate over a table."""
    if expr is None:
        return stats.n_rows
    return int(round(stats.n_rows * estimate_selectivity(expr, stats)))

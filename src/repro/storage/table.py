"""Column-store tables backed by numpy arrays.

A :class:`Table` stores each column as a contiguous numpy array. Tables are
logically immutable: operators in :mod:`repro.storage.operators` return new
tables that share column arrays where possible (copy-on-write discipline is
the caller's responsibility; the engine itself never mutates a column it
did not allocate).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError, StorageError
from .schema import Column, ColumnType, Schema


class Table:
    """An immutable column-store relation."""

    def __init__(self, schema: Schema, columns: Sequence[np.ndarray]):
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} columns but {len(columns)} arrays given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        self._schema = schema
        self._columns = [np.asarray(c) for c in columns]
        self._nrows = len(self._columns[0]) if self._columns else 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, data: Mapping[str, Sequence[Any]]) -> "Table":
        """Build a table from a name -> values mapping, inferring types.

        >>> t = Table.from_columns({"id": [1, 2], "name": ["a", "b"]})
        """
        cols: list[Column] = []
        arrays: list[np.ndarray] = []
        for name, values in data.items():
            arr = _as_column_array(values)
            cols.append(Column(name, ColumnType.from_numpy(arr.dtype)))
            arrays.append(arr)
        return cls(Schema(cols), arrays)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from row tuples conforming to ``schema``."""
        rows = list(rows)
        arrays = []
        for i, col in enumerate(schema):
            values = [row[i] for row in rows]
            arrays.append(np.array(values, dtype=col.ctype.numpy_dtype))
        return cls(schema, arrays)

    @classmethod
    def from_matrix(
        cls,
        X: np.ndarray,
        names: Sequence[str] | None = None,
        label: np.ndarray | None = None,
        label_name: str = "label",
    ) -> "Table":
        """Build a table from a numeric (n, d) matrix.

        Columns are named ``names`` (default f0..f{d-1}); an optional
        label vector is appended. The bridge from the linear-algebra
        world back into the relational engine.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise StorageError(f"expected a 2-D matrix, got {X.ndim}-D")
        if names is None:
            names = [f"f{j}" for j in range(X.shape[1])]
        names = list(names)
        if len(names) != X.shape[1]:
            raise StorageError(
                f"{len(names)} names for {X.shape[1]} columns"
            )
        data = {name: X[:, j] for j, name in enumerate(names)}
        if label is not None:
            label = np.asarray(label)
            if len(label) != len(X):
                raise StorageError(
                    f"label length {len(label)} != matrix rows {len(X)}"
                )
            data[label_name] = label
        return cls.from_columns(data)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        arrays = [np.empty(0, dtype=c.ctype.numpy_dtype) for c in schema]
        return cls(schema, arrays)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._nrows

    @property
    def num_columns(self) -> int:
        return len(self._schema)

    def column(self, name: str) -> np.ndarray:
        """The backing array of a column. Treat as read-only."""
        return self._columns[self._schema.position(name)]

    def columns(self) -> dict[str, np.ndarray]:
        """All columns as a name -> array mapping."""
        return {c.name: arr for c, arr in zip(self._schema, self._columns)}

    def row(self, i: int) -> tuple:
        """Row ``i`` as a tuple (slow path; for tests and small results)."""
        if not 0 <= i < self._nrows:
            raise StorageError(f"row index {i} out of range [0, {self._nrows})")
        return tuple(col[i] for col in self._columns)

    def rows(self) -> Iterator[tuple]:
        """Iterate over rows as tuples (slow path)."""
        for i in range(self._nrows):
            yield tuple(col[i] for col in self._columns)

    def to_dicts(self) -> list[dict[str, Any]]:
        """All rows as dictionaries (slow path; for tests and display)."""
        names = self._schema.names
        return [dict(zip(names, row)) for row in self.rows()]

    def __len__(self) -> int:
        return self._nrows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or self._nrows != other._nrows:
            return False
        return all(
            np.array_equal(a, b) for a, b in zip(self._columns, other._columns)
        )

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, rows={self._nrows})"

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, self._nrows)))

    # ------------------------------------------------------------------
    # Structural transforms (all return new tables)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        """Rows at the given positions, in order (may repeat)."""
        return Table(self._schema, [col[indices] for col in self._columns])

    def mask(self, keep: np.ndarray) -> "Table":
        """Rows where the boolean mask is true."""
        keep = np.asarray(keep, dtype=bool)
        if len(keep) != self._nrows:
            raise StorageError(
                f"mask length {len(keep)} != table length {self._nrows}"
            )
        return Table(self._schema, [col[keep] for col in self._columns])

    def select(self, names: Sequence[str]) -> "Table":
        """Projection onto the named columns, in the given order."""
        schema = self._schema.project(names)
        arrays = [self.column(n) for n in names]
        return Table(schema, arrays)

    def drop(self, names: Sequence[str]) -> "Table":
        """Table without the named columns."""
        schema = self._schema.drop(names)
        return self.select(schema.names)

    def rename(self, mapping: dict[str, str]) -> "Table":
        """Table with columns renamed."""
        return Table(self._schema.rename(mapping), self._columns)

    def with_column(self, name: str, values: Sequence[Any]) -> "Table":
        """Table with a column appended (or replaced if the name exists)."""
        arr = _as_column_array(values)
        if len(arr) != self._nrows:
            raise StorageError(
                f"new column length {len(arr)} != table length {self._nrows}"
            )
        col = Column(name, ColumnType.from_numpy(arr.dtype))
        if name in self._schema:
            pos = self._schema.position(name)
            new_cols = list(self._schema.columns)
            new_cols[pos] = col
            arrays = list(self._columns)
            arrays[pos] = arr
            return Table(Schema(new_cols), arrays)
        return Table(
            Schema(list(self._schema.columns) + [col]),
            list(self._columns) + [arr],
        )

    def concat_rows(self, other: "Table") -> "Table":
        """Rows of ``other`` appended (schemas must match)."""
        if self._schema != other._schema:
            raise SchemaError(
                f"schema mismatch: {self._schema!r} vs {other._schema!r}"
            )
        arrays = [
            np.concatenate([a, b]) for a, b in zip(self._columns, other._columns)
        ]
        return Table(self._schema, arrays)

    def prefixed(self, prefix: str) -> "Table":
        """Table with every column name prefixed."""
        return Table(self._schema.prefixed(prefix), self._columns)

    # ------------------------------------------------------------------
    # Numeric bridge to the linear-algebra layer
    # ------------------------------------------------------------------
    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Numeric columns stacked into a float64 (n, d) matrix.

        Raises:
            StorageError: if a requested column is not numeric.
        """
        names = list(names) if names is not None else [
            c.name
            for c in self._schema
            if c.ctype in (ColumnType.INT, ColumnType.FLOAT, ColumnType.BOOL)
        ]
        for n in names:
            if self._schema.type_of(n) == ColumnType.STR:
                raise StorageError(f"column {n!r} is not numeric")
        if not names:
            return np.empty((self._nrows, 0))
        return np.column_stack(
            [self.column(n).astype(np.float64) for n in names]
        )


def _as_column_array(values: Sequence[Any]) -> np.ndarray:
    """Coerce a value sequence to a storable numpy array."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise StorageError(f"column values must be 1-D, got shape {arr.shape}")
    kind = arr.dtype.kind
    if kind in "iu":
        return arr.astype(np.int64)
    if kind == "f":
        return arr.astype(np.float64)
    if kind == "b":
        return arr.astype(np.bool_)
    if kind in "USO":
        return np.array([None if v is None else str(v) for v in arr], dtype=object)
    raise StorageError(f"unsupported column dtype {arr.dtype!r}")

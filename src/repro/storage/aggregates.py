"""Aggregate functions for group-by and full-table aggregation.

Each aggregate implements a *grouped* vectorized form: given the values of
one column and a dense group-id per row, produce one output value per
group. This is the same decomposition (transition + finalize over
partitions) that the in-database ML layer's user-defined aggregates use,
so simple SQL-style aggregates and learning aggregates share machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import StorageError


class AggregateFunction:
    """Base class: reduce column values per group."""

    name: str = "agg"
    #: column name the aggregate reads; None means COUNT(*)-style row count
    requires_column: bool = True

    def apply(
        self, values: np.ndarray | None, group_ids: np.ndarray, num_groups: int
    ) -> np.ndarray:
        raise NotImplementedError


class Count(AggregateFunction):
    """COUNT(*) — number of rows per group."""

    name = "count"
    requires_column = False

    def apply(self, values, group_ids, num_groups):
        return np.bincount(group_ids, minlength=num_groups).astype(np.int64)


class Sum(AggregateFunction):
    name = "sum"

    def apply(self, values, group_ids, num_groups):
        _require_numeric(values, self.name)
        return np.bincount(
            group_ids, weights=values.astype(np.float64), minlength=num_groups
        )


class Mean(AggregateFunction):
    name = "mean"

    def apply(self, values, group_ids, num_groups):
        _require_numeric(values, self.name)
        sums = np.bincount(
            group_ids, weights=values.astype(np.float64), minlength=num_groups
        )
        counts = np.bincount(group_ids, minlength=num_groups)
        return sums / np.maximum(counts, 1)


class Var(AggregateFunction):
    """Population variance per group (single-pass sum-of-squares form)."""

    name = "var"

    def apply(self, values, group_ids, num_groups):
        _require_numeric(values, self.name)
        v = values.astype(np.float64)
        counts = np.bincount(group_ids, minlength=num_groups)
        sums = np.bincount(group_ids, weights=v, minlength=num_groups)
        sq = np.bincount(group_ids, weights=v * v, minlength=num_groups)
        n = np.maximum(counts, 1)
        mean = sums / n
        # max() guards tiny negative values from floating-point cancellation
        return np.maximum(sq / n - mean * mean, 0.0)


class Std(AggregateFunction):
    name = "std"

    def apply(self, values, group_ids, num_groups):
        return np.sqrt(Var().apply(values, group_ids, num_groups))


class _ExtremumAggregate(AggregateFunction):
    """Shared implementation for per-group min/max via sort-free reduction."""

    _ufunc: Callable

    def apply(self, values, group_ids, num_groups):
        if values is None:
            raise StorageError(f"{self.name} requires a column")
        if values.dtype == object:
            # String min/max: slow path by group.
            out = np.empty(num_groups, dtype=object)
            seen = np.zeros(num_groups, dtype=bool)
            pick = min if self.name == "min" else max
            for v, g in zip(values, group_ids):
                if not seen[g]:
                    out[g] = v
                    seen[g] = True
                else:
                    out[g] = pick(out[g], v)
            return out
        out = np.full(
            num_groups,
            np.inf if self.name == "min" else -np.inf,
            dtype=np.float64,
        )
        self._ufunc.at(out, group_ids, values.astype(np.float64))
        return out


class Min(_ExtremumAggregate):
    name = "min"
    _ufunc = np.minimum


class Max(_ExtremumAggregate):
    name = "max"
    _ufunc = np.maximum


class First(AggregateFunction):
    """First value encountered per group (row order)."""

    name = "first"

    def apply(self, values, group_ids, num_groups):
        if values is None:
            raise StorageError("first requires a column")
        out = np.empty(num_groups, dtype=values.dtype)
        seen = np.zeros(num_groups, dtype=bool)
        for v, g in zip(values, group_ids):
            if not seen[g]:
                out[g] = v
                seen[g] = True
        return out


_BY_NAME: dict[str, Callable[[], AggregateFunction]] = {
    "count": Count,
    "sum": Sum,
    "mean": Mean,
    "avg": Mean,
    "var": Var,
    "std": Std,
    "min": Min,
    "max": Max,
    "first": First,
}


@dataclass(frozen=True)
class AggSpec:
    """One requested aggregate: function, input column, output name."""

    func: AggregateFunction
    column: str | None
    output: str


def agg(name: str, column: str | None = None, output: str | None = None) -> AggSpec:
    """Build an aggregate spec by function name.

    >>> agg("mean", "price", output="avg_price")
    """
    if name not in _BY_NAME:
        raise StorageError(
            f"unknown aggregate {name!r}; known: {sorted(_BY_NAME)}"
        )
    func = _BY_NAME[name]()
    if func.requires_column and column is None:
        raise StorageError(f"aggregate {name!r} requires a column")
    if output is None:
        output = f"{name}_{column}" if column else name
    return AggSpec(func, column, output)


def _require_numeric(values: np.ndarray | None, name: str) -> None:
    if values is None:
        raise StorageError(f"{name} requires a column")
    if values.dtype == object:
        raise StorageError(f"{name} requires a numeric column")

"""Logical optimization for SQL execution: predicate pushdown.

The WHERE clause of a feature query often conjoins predicates that each
touch a single table. Evaluating them *after* the joins multiplies the
rows every join must process; pushing each conjunct down to the earliest
table whose schema covers it shrinks the join inputs — the classic
selection-pushdown rewrite.

Pushdown is applied conservatively:

* only conjuncts (AND-connected top-level terms) move;
* a conjunct moves to a join's build side only for INNER joins (filtering
  the right side of a LEFT JOIN would change its padding semantics);
* a conjunct moves only when *all* its columns resolve unambiguously to
  one table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .expressions import BinaryOp, ColumnRef, Expr, Literal, UnaryOp
from .table import Table


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate's top-level AND tree into conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.symbol == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    """Rebuild a single predicate from conjuncts (None if empty)."""
    if not conjuncts:
        return None
    out = conjuncts[0]
    for term in conjuncts[1:]:
        out = out & term
    return out


def referenced_columns(expr: Expr) -> set[str]:
    """All column names an expression reads."""
    if isinstance(expr, ColumnRef):
        return {expr.name}
    if isinstance(expr, BinaryOp):
        return referenced_columns(expr.left) | referenced_columns(expr.right)
    if isinstance(expr, UnaryOp):
        return referenced_columns(expr.operand)
    if isinstance(expr, Literal):
        return set()
    return set()


@dataclass
class PushdownPlan:
    """Where each WHERE conjunct will be evaluated."""

    base_predicates: list[Expr] = field(default_factory=list)
    #: per join index: predicates applied to that join's right table
    join_predicates: dict[int, list[Expr]] = field(default_factory=dict)
    residual: list[Expr] = field(default_factory=list)

    @property
    def pushed_count(self) -> int:
        return len(self.base_predicates) + sum(
            len(v) for v in self.join_predicates.values()
        )

    def describe(self) -> str:
        lines = []
        for p in self.base_predicates:
            lines.append(f"push to base table: {p!r}")
        for i, preds in sorted(self.join_predicates.items()):
            for p in preds:
                lines.append(f"push to join #{i} right side: {p!r}")
        for p in self.residual:
            lines.append(f"evaluate after joins: {p!r}")
        return "\n".join(lines) if lines else "(no WHERE clause)"


def plan_pushdown(
    where: Expr | None,
    base: Table,
    joins: list,  # list[JoinClause]
    join_tables: list[Table],
) -> PushdownPlan:
    """Assign each conjunct to the earliest table that can evaluate it."""
    plan = PushdownPlan()
    base_columns = set(base.schema.names)
    join_columns = [set(t.schema.names) for t in join_tables]

    # Columns visible in more than one source are ambiguous for pushdown.
    all_sources = [base_columns, *join_columns]
    ambiguous = {
        name
        for i, cols in enumerate(all_sources)
        for name in cols
        for j, other in enumerate(all_sources)
        if i != j and name in other
    }

    for conjunct in split_conjuncts(where):
        columns = referenced_columns(conjunct)
        if not columns:
            plan.residual.append(conjunct)
            continue
        if columns & ambiguous:
            plan.residual.append(conjunct)
            continue
        if columns <= base_columns:
            plan.base_predicates.append(conjunct)
            continue
        placed = False
        for i, (join, cols) in enumerate(zip(joins, join_columns)):
            if join.how == "inner" and columns <= cols:
                plan.join_predicates.setdefault(i, []).append(conjunct)
                placed = True
                break
        if not placed:
            plan.residual.append(conjunct)
    return plan

"""E5 — Operator fusion (SystemML fused operators).

Surveyed claim: fused kernels avoid materializing large intermediates,
reducing both memory traffic and allocation cost.
"""

import numpy as np
import pytest

from repro.compiler import compile_expr, estimate, fused_kinds
from repro.lang import matrix, sumall
from repro.runtime import execute

N, D = 20_000, 100


@pytest.fixture(scope="module")
def bindings():
    rng = np.random.default_rng(2017)
    return {
        "X": rng.standard_normal((N, D)),
        "Y": rng.standard_normal((N, D)),
        "v": rng.standard_normal(D),
    }


def _sq_loss():
    X = matrix("X", (N, D))
    Y = matrix("Y", (N, D))
    return sumall((X - Y) ** 2)


def _dot():
    X = matrix("X", (N, D))
    Y = matrix("Y", (N, D))
    return sumall(X * Y)


def _tsmm():
    X = matrix("X", (N, D))
    return X.T @ X


def test_diff_sq_sum_unfused(benchmark, bindings):
    plan = compile_expr(_sq_loss(), fusion=False, rewrites=False)
    benchmark(lambda: execute(plan, bindings))


def test_diff_sq_sum_fused(benchmark, bindings):
    plan = compile_expr(_sq_loss())
    assert "diff_sq_sum" in fused_kinds(plan.root)
    out = benchmark(lambda: execute(plan, bindings))
    ref = float(((bindings["X"] - bindings["Y"]) ** 2).sum())
    assert out == pytest.approx(ref, rel=1e-10)


def test_dot_sum_unfused(benchmark, bindings):
    plan = compile_expr(_dot(), fusion=False, rewrites=False)
    benchmark(lambda: execute(plan, bindings))


def test_dot_sum_fused(benchmark, bindings):
    plan = compile_expr(_dot())
    assert "dot_sum" in fused_kinds(plan.root)
    benchmark(lambda: execute(plan, bindings))


def test_tsmm_unfused(benchmark, bindings):
    plan = compile_expr(_tsmm(), fusion=False)
    benchmark(lambda: execute(plan, bindings))


def test_tsmm_fused(benchmark, bindings):
    plan = compile_expr(_tsmm())
    assert "tsmm" in fused_kinds(plan.root)
    out = benchmark(lambda: execute(plan, bindings))
    assert np.allclose(out, bindings["X"].T @ bindings["X"])


def test_fusion_eliminates_intermediate_bytes():
    unfused = compile_expr(_sq_loss(), fusion=False, rewrites=False, cse=False)
    fused = compile_expr(_sq_loss())
    unfused_mem = estimate(unfused.root).intermediate_bytes
    fused_mem = estimate(fused.root).intermediate_bytes
    # Unfused materializes two N x D intermediates; fused materializes none.
    assert unfused_mem > 2 * N * D * 8
    assert fused_mem < 1000

"""E3 — Compressed linear algebra (CLA).

Surveyed claim: column encodings achieve multi-x compression on
low-cardinality / run-structured / sparse data while keeping compressed
matrix-vector kernels competitive with dense.
"""

import numpy as np
import pytest

from repro.compression import CompressedMatrix
from repro.data import (
    make_low_cardinality_matrix,
    make_run_matrix,
    make_sparse_matrix,
)

N, D = 50_000, 10


@pytest.fixture(scope="module")
def lowcard():
    X = make_low_cardinality_matrix(N, D, cardinality=12, seed=2017)
    return X, CompressedMatrix.compress(X)


@pytest.fixture(scope="module")
def runs():
    X = make_run_matrix(N, D, mean_run_length=200, seed=2017)
    return X, CompressedMatrix.compress(X)


def test_compression_ratio_lowcard(lowcard):
    _, C = lowcard
    assert C.compression_ratio > 3


def test_compression_ratio_runs(runs):
    _, C = runs
    assert C.compression_ratio > 20


def test_dense_matvec(benchmark, lowcard):
    X, _ = lowcard
    v = np.random.default_rng(1).standard_normal(D)
    benchmark(lambda: X @ v)


def test_compressed_matvec_ddc(benchmark, lowcard):
    X, C = lowcard
    v = np.random.default_rng(1).standard_normal(D)
    out = benchmark(lambda: C.matvec(v))
    assert np.allclose(out, X @ v)


def test_compressed_matvec_rle(benchmark, runs):
    X, C = runs
    v = np.random.default_rng(1).standard_normal(D)
    out = benchmark(lambda: C.matvec(v))
    assert np.allclose(out, X @ v)


def test_dense_rmatvec(benchmark, lowcard):
    X, _ = lowcard
    u = np.random.default_rng(2).standard_normal(N)
    benchmark(lambda: X.T @ u)


def test_compressed_rmatvec_ddc(benchmark, lowcard):
    X, C = lowcard
    u = np.random.default_rng(2).standard_normal(N)
    out = benchmark(lambda: C.rmatvec(u))
    assert np.allclose(out, X.T @ u)


def test_compress_time_lowcard(benchmark):
    X = make_low_cardinality_matrix(N, D, cardinality=12, seed=7)
    benchmark.pedantic(
        CompressedMatrix.compress, args=(X,), rounds=2, iterations=1
    )


def test_sparse_compresses_via_ole(benchmark):
    X = make_sparse_matrix(N, D, density=0.02, seed=2017)
    C = benchmark.pedantic(
        CompressedMatrix.compress, args=(X,), rounds=1, iterations=1
    )
    assert C.compression_ratio > 5
    assert "ole" in C.schemes()

#!/usr/bin/env python3
"""E26 — Sharded serving fabric: failover, quotas, chaos, scaling.

Closed-loop load generator over :class:`repro.serving.ShardedServer`.
Seven legs, each gated in CI by ``check_regression.py``:

1. **Fleet identity** — >= 10^6 skewed multi-tenant requests through a
   4-shard, 2-replica fleet must be **bit-identical** to a single
   :class:`~repro.serving.ModelServer` oracle, with the fleet ledger
   (``replica_hits``) matching an exact replay of the pure routing
   function.
2. **Mid-stream kill** — the home shard is killed at the stream's
   midpoint and revived at 75%: zero wrong answers, ``failovers`` /
   ``rerouted`` / ``replica_hits`` equal to the route-oracle replay, and
   the revive's epoch cache invalidation counted exactly.
3. **Tenant quotas** — a hot tenant bursting through its token bucket
   sheds exactly the overflow the bucket arithmetic predicts (fake
   clock, deterministic refill); cold tenants shed nothing.
4. **Fleet canary** — a 20% canary split across all replicas equals a
   fresh :class:`~repro.serving.CanaryRouter`'s assignment exactly.
5. **Chaos sweep** — 0/5/20% fault rates on the ``fabric.route`` and
   ``fabric.score`` sites: every request completes (retry + failover)
   and the answers stay bit-identical to the clean run.
6. **Single-shard overhead** — a 1-shard, 1-replica fabric on the same
   stream as a plain ``ModelServer``: the fabric toll must stay under
   ``MAX_OVERHEAD_PCT`` (the fast path delegates wholesale).
7. **Shard scaling** — the same uniform keyed stream over 1/2/4 shards.
   On a single-CPU builder wall-clock cannot scale, so the gated proxy
   is deterministic *load balance*: no shard serves more than
   ``1 + BALANCE_TOL`` times its fair share. Throughput is recorded as
   informational.

Usage::

    python benchmarks/bench_sharding.py            # full sizes
    python benchmarks/bench_sharding.py --quick    # CI smoke run

pytest collection runs the identity, failover, quota, canary, and chaos
checks at reduced sizes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # running as a script without PYTHONPATH=src
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import obs
from repro.data import make_classification
from repro.lifecycle import ModelRegistry
from repro.ml import LogisticRegression
from repro.resilience import (
    ChaosContext,
    FaultPlan,
    RetryPolicy,
    chaos_seed_from_env,
)
from repro.serving import CanaryRouter, ModelServer, ShardedServer

#: acceptance bounds
MAX_OVERHEAD_PCT = 3.0
BALANCE_TOL = 0.25
NUM_SHARDS = 4
REPLICATION = 2
CANARY_FRACTION = 0.2
CANARY_SEED = 2017
CHAOS_RATES = (0.0, 0.05, 0.20)
SCALING_FLEETS = (1, 2, 4)


class _FakeClock:
    """Manually advanced clock: token-bucket refills become exact."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _best_time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _fit_registry(n: int, d: int, seed: int = 2017) -> tuple:
    X, y = make_classification(n, d, separation=2.0, seed=seed)
    registry = ModelRegistry()
    m1 = LogisticRegression(solver="gd", max_iter=25).fit(X, y)
    m2 = LogisticRegression(solver="gd", max_iter=50, l2=0.5).fit(X, y)
    registry.register("churn", m1)
    registry.register("churn", m2)
    return X, registry


def _fabric(registry, num_shards=NUM_SHARDS, replication=REPLICATION, **kw):
    endpoint_config = kw.pop("endpoint_config", {})
    config = {"cache_enabled": True, "queue_capacity": 1 << 17}
    config.update(endpoint_config)
    fabric = ShardedServer(
        registry, num_shards=num_shards, replication=replication, **kw
    )
    fabric.create_endpoint("score", "churn", **config)
    fabric.promote("score", 1)
    return fabric


def _single(registry, **endpoint_config) -> ModelServer:
    endpoint_config.setdefault("cache_enabled", True)
    endpoint_config.setdefault("queue_capacity", 1 << 17)
    server = ModelServer(registry)
    server.create_endpoint("score", "churn", **endpoint_config)
    server.promote("score", 1)
    return server


def _skewed_stream(X, n_requests: int, n_entities: int, seed: int):
    """Skewed entity traffic: square a uniform draw so hot entities
    dominate (the regime where per-replica caches matter)."""
    rng = np.random.default_rng(seed)
    ids = (rng.random(n_requests) ** 2 * n_entities).astype(int)
    rows = X[ids % X.shape[0]]
    keys = [f"entity-{e}" for e in ids]
    return ids, rows, keys


def _no_sleep_retry() -> RetryPolicy:
    return RetryPolicy(
        max_attempts=12, backoff_base=0.0, jitter=0.0, sleep=lambda s: None
    )


# ----------------------------------------------------------------------
# Leg 1: fleet identity at >= 10^6 multi-tenant requests
# ----------------------------------------------------------------------
def fleet_leg(
    X, registry, n_requests: int, n_entities: int, n_tenants: int, seed: int
) -> dict:
    ids, rows, keys = _skewed_stream(X, n_requests, n_entities, seed)
    tenants = [f"tenant-{i % n_tenants}" for i in range(n_requests)]

    oracle = _single(registry)
    wall_oracle, reference = _best_time(
        lambda: oracle.predict_many("score", rows, keys=keys), repeats=1
    )
    oracle.close()

    fabric = _fabric(registry)
    start = time.perf_counter()
    served = fabric.predict_many("score", rows, keys=keys, tenants=tenants)
    wall = time.perf_counter() - start

    # replay the pure routing function per unique key (all shards live:
    # replica_hits = requests whose rotation starts off the home shard)
    home = fabric.replicas_of("score")[0]
    unique, counts = np.unique(ids, return_counts=True)
    expected_replica_hits = int(
        sum(
            int(c)
            for e, c in zip(unique, counts)
            if fabric.preference("score", f"entity-{e}")[0] != home
        )
    )
    led = fabric.stats()["ledger"]
    entry = {
        "workload": "fleet/multitenant",
        "requests": n_requests,
        "entities": n_entities,
        "tenants": n_tenants,
        "shards": NUM_SHARDS,
        "replication": REPLICATION,
        "bit_identical": bool(np.array_equal(served, reference)),
        "ledger": led,
        "expected_replica_hits": expected_replica_hits,
        "ledger_exact": led["replica_hits"] == expected_replica_hits
        and led["requests"] == n_requests
        and led["failovers"] == 0
        and led["quota_shed"] == 0,
        "rps": n_requests / wall,
        "wall_s": wall,
        "oracle_wall_s": wall_oracle,
    }
    fabric.close()
    return entry


# ----------------------------------------------------------------------
# Leg 2: mid-stream kill and epoch revive
# ----------------------------------------------------------------------
def failover_leg(
    X, registry, n_requests: int, n_entities: int, seed: int
) -> dict:
    ids, rows, keys = _skewed_stream(X, n_requests, n_entities, seed)

    oracle = _single(registry)
    reference = oracle.predict_many("score", rows, keys=keys)
    oracle.close()

    fabric = _fabric(registry)
    home = fabric.replicas_of("score")[0]  # the victim
    kill_at, revive_at = n_requests // 2, (3 * n_requests) // 4

    served = np.empty(n_requests, dtype=np.float64)
    served[:kill_at] = fabric.predict_many(
        "score", rows[:kill_at], keys=keys[:kill_at]
    )
    fabric.kill_shard(home)
    served[kill_at:revive_at] = fabric.predict_many(
        "score", rows[kill_at:revive_at], keys=keys[kill_at:revive_at]
    )
    dropped = fabric.revive_shard(home)
    served[revive_at:] = fabric.predict_many(
        "score", rows[revive_at:], keys=keys[revive_at:]
    )

    # oracle replay of the ledger: preference() is pure, liveness is
    # known per phase. Dead phase: every request whose rotation starts
    # on the victim fails over (one skip); every request is served off
    # the home shard.
    homed = {
        int(e): fabric.preference("score", f"entity-{e}")[0] == home
        for e in np.unique(ids)
    }
    dead_ids = ids[kill_at:revive_at]
    live_ids = np.concatenate([ids[:kill_at], ids[revive_at:]])
    expected_failovers = int(sum(homed[int(e)] for e in dead_ids))
    expected_replica_hits = len(dead_ids) + int(
        sum(not homed[int(e)] for e in live_ids)
    )
    led = fabric.stats()["ledger"]
    entry = {
        "workload": "failover/mid_stream_kill",
        "requests": n_requests,
        "kill_at": kill_at,
        "revive_at": revive_at,
        "victim": home,
        "wrong_answers": int(np.count_nonzero(served != reference)),
        "expected_failovers": expected_failovers,
        "failovers": led["failovers"],
        "rerouted": led["rerouted"],
        "replica_hits": led["replica_hits"],
        "expected_replica_hits": expected_replica_hits,
        "ledger_exact": led["failovers"] == expected_failovers
        and led["rerouted"] == expected_failovers
        and led["replica_hits"] == expected_replica_hits,
        "revive_dropped": dropped,
        "epoch_invalidations": led["epoch_invalidations"],
        "epoch_after": fabric.shard(home).epoch,
    }
    fabric.close()
    return entry


# ----------------------------------------------------------------------
# Leg 3: per-tenant token-bucket quotas
# ----------------------------------------------------------------------
def quota_leg(
    X,
    registry,
    waves: int,
    hot_burst: int,
    cold_burst: int,
    capacity: float,
    refill_per_s: float,
    gap_s: float,
) -> dict:
    """A hot tenant bursts ``hot_burst`` requests per wave against a
    ``capacity``-token bucket refilling at ``refill_per_s``; expected
    sheds come from replaying the bucket arithmetic exactly."""
    clock = _FakeClock()
    fabric = _fabric(registry, clock=clock)
    fabric.set_quota("hot", capacity=capacity, refill_per_s=refill_per_s)

    # exact replay of the token arithmetic the bucket performs
    tokens = capacity
    expected_shed = 0
    for wave in range(waves):
        if wave:
            tokens = min(capacity, tokens + refill_per_s * gap_s)
        for _ in range(hot_burst):
            if tokens >= 1.0:
                tokens -= 1.0
            else:
                expected_shed += 1

    cold = ["cold-a", "cold-b", "cold-c"]
    shed_total = 0
    for wave in range(waves):
        if wave:
            clock.advance(gap_s)
        burst_rows = np.tile(X[0], (hot_burst + cold_burst * len(cold), 1))
        tenants = ["hot"] * hot_burst + [
            t for t in cold for _ in range(cold_burst)
        ]
        _, shed = fabric.predict_many(
            "score", burst_rows, tenants=tenants, on_shed="null"
        )
        shed_total += len(shed)

    stats = fabric.stats()
    hot = stats["tenants"]["hot"]
    cold_shed = sum(stats["tenants"][t]["shed"] for t in cold)
    entry = {
        "workload": "quota/hot_tenant",
        "waves": waves,
        "hot_burst": hot_burst,
        "capacity": capacity,
        "refill_per_s": refill_per_s,
        "gap_s": gap_s,
        "hot_admitted": hot["admitted"],
        "hot_shed": hot["shed"],
        "expected_hot_shed": expected_shed,
        "cold_shed": cold_shed,
        "quota_exact": hot["shed"] == expected_shed
        and shed_total == expected_shed
        and cold_shed == 0
        and stats["ledger"]["quota_shed"] == expected_shed,
    }
    fabric.close()
    return entry


# ----------------------------------------------------------------------
# Leg 4: fleet-wide canary split
# ----------------------------------------------------------------------
def canary_leg(X, registry, n_requests: int) -> dict:
    fabric = _fabric(
        registry,
        endpoint_config={"canary_seed": CANARY_SEED, "cache_enabled": False},
    )
    fabric.set_canary("score", 2, fraction=CANARY_FRACTION)
    keys = [f"user-{i}" for i in range(n_requests)]
    rows = np.tile(X[0], (n_requests, 1))
    fabric.predict_many("score", rows, keys=keys)
    router = CanaryRouter(CANARY_FRACTION, CANARY_SEED)
    expected = sum(router.routes_to_canary(k) for k in keys)
    observed = sum(
        fabric.shard(sid).server.endpoint("score").canary_requests
        for sid in fabric.replicas_of("score")
    )
    stable = sum(
        fabric.shard(sid).server.endpoint("score").stable_requests
        for sid in fabric.replicas_of("score")
    )
    entry = {
        "workload": "canary/fleet_split",
        "requests": n_requests,
        "fraction": CANARY_FRACTION,
        "seed": CANARY_SEED,
        "canary_requests": observed,
        "expected_canary": expected,
        "exact_split": observed == expected
        and stable == n_requests - expected,
    }
    fabric.close()
    return entry


# ----------------------------------------------------------------------
# Leg 5: chaos sweep over the fabric fault sites
# ----------------------------------------------------------------------
def chaos_leg(
    X, registry, n_requests: int, n_entities: int, seed: int
) -> list[dict]:
    _, rows, keys = _skewed_stream(X, n_requests, n_entities, seed=11)

    clean = _fabric(registry)
    reference = clean.predict_many("score", rows, keys=keys)
    clean.close()

    entries = []
    for rate in CHAOS_RATES:
        fabric = _fabric(registry, retry=_no_sleep_retry())
        plan = (
            FaultPlan(seed=seed)
            .inject("fabric.route", rate=rate)
            .inject("fabric.score", rate=rate)
        )
        with ChaosContext(plan) as chaos:
            served = fabric.predict_many("score", rows, keys=keys)
        injected_route = chaos.injected_at("fabric.route")
        injected_score = chaos.injected_at("fabric.score")
        led = fabric.stats()["ledger"]
        entries.append(
            {
                "workload": f"chaos/rate{int(rate * 100):02d}",
                "rate": rate,
                "requests": n_requests,
                "chaos_seed": seed,
                "complete": bool(np.isfinite(served).all())
                and led["requests"] == n_requests,
                "bit_identical": bool(np.array_equal(served, reference)),
                "injected_route": injected_route,
                "injected_score": injected_score,
                "failovers": led["failovers"],
                "faults_injected": (rate == 0.0)
                == (injected_route + injected_score == 0),
            }
        )
        fabric.close()
    return entries


# ----------------------------------------------------------------------
# Leg 6: single-shard overhead
# ----------------------------------------------------------------------
def overhead_leg(
    X, registry, n_requests: int, n_entities: int, repeats: int
) -> dict:
    """The fabric's toll when sharding buys nothing: a 1-shard,
    1-replica fleet wholesale-delegates (fast path), so the overhead on
    an identical stream must stay under ``MAX_OVERHEAD_PCT``."""
    _, rows, keys = _skewed_stream(X, n_requests, n_entities, seed=13)

    plain = _single(registry)
    wall_plain, reference = _best_time(
        lambda: plain.predict_many("score", rows, keys=keys), repeats
    )
    plain.close()

    fabric = _fabric(registry, num_shards=1, replication=1)
    wall_fabric, served = _best_time(
        lambda: fabric.predict_many("score", rows, keys=keys), repeats
    )
    fabric.close()

    overhead_pct = (wall_fabric - wall_plain) / wall_plain * 100.0
    return {
        "workload": "overhead/single_shard",
        "requests": n_requests,
        "wall_plain_s": wall_plain,
        "wall_fabric_s": wall_fabric,
        "overhead_pct": overhead_pct,
        "bit_identical": bool(np.array_equal(served, reference)),
        "overhead_ok": overhead_pct < MAX_OVERHEAD_PCT,
    }


# ----------------------------------------------------------------------
# Leg 7: shard scaling (balance is the deterministic proxy)
# ----------------------------------------------------------------------
def scaling_leg(X, registry, n_requests: int) -> list[dict]:
    """The same uniform keyed stream over growing fleets. A single-CPU
    builder cannot show wall-clock scaling (every shard shares the
    interpreter), so the gate is the deterministic placement property:
    max shard load <= fair share * (1 + BALANCE_TOL). With one replica
    per endpoint the whole endpoint lives on one shard, so balance is
    measured with R=2 key spreading on fleets of >= 2."""
    rng = np.random.default_rng(17)
    ids = rng.integers(0, 100_000, size=n_requests)
    rows = X[ids % X.shape[0]]
    keys = [f"u{e}" for e in ids]

    entries = []
    for num_shards in SCALING_FLEETS:
        replication = min(2, num_shards)
        fabric = _fabric(
            registry, num_shards=num_shards, replication=replication
        )
        start = time.perf_counter()
        fabric.predict_many("score", rows, keys=keys)
        wall = time.perf_counter() - start
        loads = [
            fabric.shard(sid).served
            for sid in fabric.replicas_of("score")
        ]
        fair = n_requests / len(loads)
        entries.append(
            {
                "workload": f"scaling/shards{num_shards}",
                "shards": num_shards,
                "replication": replication,
                "requests": n_requests,
                "rps": n_requests / wall,
                "wall_s": wall,
                "shard_loads": loads,
                "balance_ratio": max(loads) / fair,
                "balanced": max(loads) <= fair * (1.0 + BALANCE_TOL),
            }
        )
        fabric.close()
    return entries


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run(quick: bool, repeats: int) -> dict:
    from conftest import bench_metadata

    chaos_seed = chaos_seed_from_env()
    if quick:
        fleet_requests, fleet_entities, fleet_tenants = 1_000_000, 4_096, 8
        failover_requests, failover_entities = 120_000, 2_048
        canary_requests = 50_000
        chaos_requests, chaos_entities = 20_000, 1_024
        overhead_requests, overhead_entities = 200_000, 4_096
        scaling_requests = 100_000
    else:
        fleet_requests, fleet_entities, fleet_tenants = 2_000_000, 8_192, 16
        failover_requests, failover_entities = 400_000, 4_096
        canary_requests = 200_000
        chaos_requests, chaos_entities = 50_000, 2_048
        overhead_requests, overhead_entities = 500_000, 8_192
        scaling_requests = 250_000
    X, registry = _fit_registry(4_096, 12)

    obs.reset()
    results = [
        fleet_leg(
            X, registry, fleet_requests, fleet_entities, fleet_tenants, seed=7
        ),
        failover_leg(X, registry, failover_requests, failover_entities, seed=9),
        quota_leg(
            X,
            registry,
            waves=5,
            hot_burst=100,
            cold_burst=40,
            capacity=50,
            refill_per_s=10.0,
            gap_s=2.0,
        ),
        canary_leg(X, registry, canary_requests),
    ]
    results.extend(
        chaos_leg(X, registry, chaos_requests, chaos_entities, chaos_seed)
    )
    results.append(
        overhead_leg(X, registry, overhead_requests, overhead_entities, repeats)
    )
    results.extend(scaling_leg(X, registry, scaling_requests))

    by = {e["workload"]: e for e in results}
    fleet = by["fleet/multitenant"]
    assert fleet["bit_identical"], "fleet predictions diverged from oracle"
    assert fleet["ledger_exact"], "fleet ledger diverged from route replay"
    failover = by["failover/mid_stream_kill"]
    assert failover["wrong_answers"] == 0, "failover produced wrong answers"
    assert failover["ledger_exact"], "failover ledger diverged from replay"
    assert failover["epoch_invalidations"] == failover["revive_dropped"]
    assert by["quota/hot_tenant"]["quota_exact"], "quota ledger inexact"
    assert by["canary/fleet_split"]["exact_split"], "fleet canary diverged"
    for rate in CHAOS_RATES:
        entry = by[f"chaos/rate{int(rate * 100):02d}"]
        assert entry["complete"], f"{entry['workload']}: stream incomplete"
        assert entry["bit_identical"], f"{entry['workload']}: answers changed"
        assert entry["faults_injected"], f"{entry['workload']}: plan inert"
    overhead = by["overhead/single_shard"]
    assert overhead["bit_identical"], "fast path diverged from plain server"
    assert overhead["overhead_ok"], (
        f"single-shard overhead {overhead['overhead_pct']:.2f}% exceeds "
        f"{MAX_OVERHEAD_PCT:.0f}%"
    )
    for num_shards in SCALING_FLEETS[1:]:
        assert by[f"scaling/shards{num_shards}"]["balanced"], (
            f"{num_shards}-shard fleet is imbalanced"
        )

    return {
        "meta": {
            **bench_metadata("E26"),
            "quick": quick,
            "num_shards": NUM_SHARDS,
            "replication": REPLICATION,
            "chaos_rates": list(CHAOS_RATES),
            "chaos_seed": chaos_seed,
            "canary_fraction": CANARY_FRACTION,
            "canary_seed": CANARY_SEED,
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "balance_tol": BALANCE_TOL,
        },
        "results": results,
        "summary": {
            "fleet_rps": fleet["rps"],
            "fleet_bit_identical": fleet["bit_identical"],
            "failover_exact": failover["ledger_exact"],
            "quota_exact": by["quota/hot_tenant"]["quota_exact"],
            "overhead_pct": overhead["overhead_pct"],
        },
    }


def report(results: dict) -> None:
    meta = results["meta"]
    by = {e["workload"]: e for e in results["results"]}
    print(
        f"E26 — sharded serving fabric "
        f"(cpus={meta['cpu_count']}, quick={meta['quick']}, "
        f"shards={meta['num_shards']}, R={meta['replication']})"
    )
    fleet = by["fleet/multitenant"]
    print(
        f"\n  fleet: {fleet['requests']:,} requests, {fleet['tenants']} "
        f"tenants -> {fleet['rps']:,.0f} rps, "
        f"bit_identical={fleet['bit_identical']}, "
        f"replica_hits={fleet['ledger']['replica_hits']:,} "
        f"(expected {fleet['expected_replica_hits']:,})"
    )
    fo = by["failover/mid_stream_kill"]
    print(
        f"  failover: kill {fo['victim']} at {fo['kill_at']:,}, revive at "
        f"{fo['revive_at']:,}: wrong_answers={fo['wrong_answers']}, "
        f"failovers={fo['failovers']:,} (expected "
        f"{fo['expected_failovers']:,}), epoch invalidated "
        f"{fo['epoch_invalidations']:,} entries"
    )
    quota = by["quota/hot_tenant"]
    print(
        f"  quota: hot tenant shed {quota['hot_shed']} of "
        f"{quota['waves'] * quota['hot_burst']} (expected "
        f"{quota['expected_hot_shed']}), cold shed {quota['cold_shed']} "
        f"-> exact={quota['quota_exact']}"
    )
    canary = by["canary/fleet_split"]
    print(
        f"  canary: {canary['canary_requests']:,}/{canary['requests']:,} "
        f"at fraction {canary['fraction']} (expected "
        f"{canary['expected_canary']:,}, exact={canary['exact_split']})"
    )
    print(f"\n  {'chaos rate':<12} {'injected':>9} {'failovers':>10} "
          f"{'identical':>10}")
    for rate in meta["chaos_rates"]:
        entry = by[f"chaos/rate{int(rate * 100):02d}"]
        injected = entry["injected_route"] + entry["injected_score"]
        print(
            f"  {entry['rate']:<12} {injected:>9,} "
            f"{entry['failovers']:>10,} {str(entry['bit_identical']):>10}"
        )
    overhead = by["overhead/single_shard"]
    print(
        f"\n  overhead: fabric {overhead['wall_fabric_s']:.3f}s vs plain "
        f"{overhead['wall_plain_s']:.3f}s -> "
        f"{overhead['overhead_pct']:+.2f}% "
        f"(bound {meta['max_overhead_pct']:.0f}%)"
    )
    print(f"  {'fleet':<10} {'rps':>10} {'balance':>8}")
    for num_shards in SCALING_FLEETS:
        entry = by[f"scaling/shards{num_shards}"]
        print(
            f"  {num_shards:<10} {entry['rps']:>10,.0f} "
            f"{entry['balance_ratio']:>7.2f}x"
        )
    print("  -> PASS")


# ----------------------------------------------------------------------
# Correctness checks (collected by pytest)
# ----------------------------------------------------------------------
def test_fleet_identity_quick():
    X, registry = _fit_registry(256, 6)
    entry = fleet_leg(
        X, registry, n_requests=3_000, n_entities=128, n_tenants=4, seed=7
    )
    assert entry["bit_identical"]
    assert entry["ledger_exact"]


def test_failover_ledger_quick():
    X, registry = _fit_registry(256, 6)
    entry = failover_leg(X, registry, n_requests=2_000, n_entities=96, seed=9)
    assert entry["wrong_answers"] == 0
    assert entry["ledger_exact"]
    assert entry["epoch_invalidations"] == entry["revive_dropped"] > 0
    assert entry["epoch_after"] == 1


def test_quota_exact_quick():
    X, registry = _fit_registry(64, 6)
    entry = quota_leg(
        X, registry, waves=3, hot_burst=40, cold_burst=10,
        capacity=20, refill_per_s=5.0, gap_s=2.0,
    )
    assert entry["quota_exact"]
    assert entry["hot_shed"] > 0


def test_canary_split_quick():
    X, registry = _fit_registry(64, 6)
    entry = canary_leg(X, registry, n_requests=2_000)
    assert entry["exact_split"]


def test_chaos_sweep_quick():
    X, registry = _fit_registry(128, 6)
    entries = chaos_leg(
        X, registry, n_requests=1_500, n_entities=64,
        seed=chaos_seed_from_env(),
    )
    for entry in entries:
        assert entry["complete"], entry["workload"]
        assert entry["bit_identical"], entry["workload"]
        assert entry["faults_injected"], entry["workload"]


def test_scaling_balance_quick():
    X, registry = _fit_registry(128, 6)
    entries = scaling_leg(X, registry, n_requests=5_000)
    for entry in entries:
        if entry["shards"] >= 2:
            assert entry["balanced"], entry["workload"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args(argv)

    repeats = args.repeats or (2 if args.quick else 3)
    results = run(args.quick, repeats)
    report(results)
    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E11 — Warm-started regularization paths.

Surveyed claim: reusing the previous lambda's solution as the next
starting point cuts total iterations versus cold starts, with identical
solutions.
"""

import numpy as np
import pytest

from repro.data import make_classification
from repro.selection import fit_logistic_path

LAMBDAS = np.logspace(0.5, -3, 10)


@pytest.fixture(scope="module")
def data():
    return make_classification(3000, 12, separation=1.2, seed=2017)


def test_cold_path(benchmark, data):
    X, y = data
    result = benchmark.pedantic(
        fit_logistic_path,
        args=(X, y, LAMBDAS),
        kwargs={"warm_start": False, "tol": 1e-8},
        rounds=1,
        iterations=1,
    )
    assert len(result.points) == len(LAMBDAS)


def test_warm_path(benchmark, data):
    X, y = data
    warm = benchmark.pedantic(
        fit_logistic_path,
        args=(X, y, LAMBDAS),
        kwargs={"warm_start": True, "tol": 1e-8},
        rounds=1,
        iterations=1,
    )
    cold = fit_logistic_path(X, y, LAMBDAS, warm_start=False, tol=1e-8)
    assert warm.total_iterations < cold.total_iterations
    # Same optima along the path.
    for wp, cp in zip(warm.points, cold.points):
        assert np.allclose(wp.coef, cp.coef, atol=5e-2)


def test_iteration_savings_ratio(data):
    X, y = data
    warm = fit_logistic_path(X, y, LAMBDAS, warm_start=True, tol=1e-8)
    cold = fit_logistic_path(X, y, LAMBDAS, warm_start=False, tol=1e-8)
    assert warm.total_iterations <= 0.9 * cold.total_iterations

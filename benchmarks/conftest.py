"""Benchmark-suite configuration.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
index (E1..E12). Run with::

    pytest benchmarks/ --benchmark-only

For the full printed experiment tables (the rows EXPERIMENTS.md records),
run ``python benchmarks/run_experiments.py``.
"""

import pytest


@pytest.fixture(scope="session")
def benchmark_seed() -> int:
    return 2017  # the tutorial's year, for determinism

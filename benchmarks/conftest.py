"""Benchmark-suite configuration.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
index (E1..E12). Run with::

    pytest benchmarks/ --benchmark-only

For the full printed experiment tables (the rows EXPERIMENTS.md records),
run ``python benchmarks/run_experiments.py``.
"""

import os
import platform

import pytest


def bench_metadata(experiment: str) -> dict:
    """Shared environment block every ``BENCH_*.json`` meta must embed.

    Records the knobs that make two benchmark captures comparable:
    hardware parallelism, the ``REPRO_NUM_THREADS`` override (if any),
    the parallel backend defaults, and interpreter/library versions.

    ``cpu_count`` is load-bearing: ``check_regression.py`` compares
    wall-clock speedups only between captures whose core counts match
    (the committed quick baselines were captured on a 1-CPU builder, so
    multi-core CI runners gate on behavior metrics alone).

    ``chaos_seed_env``/``chaos_active`` record whether the capture ran
    under fault injection: ``check_regression.py`` refuses to compare a
    chaos capture against a clean baseline (or vice versa), because shed
    and retry counters are only meaningful between like captures.
    """
    import numpy as np

    from repro.resilience import active_chaos
    from repro.runtime.parallel import (
        ParallelContext,
        default_cost_threshold,
        default_num_threads,
    )

    return {
        "experiment": experiment,
        "cpu_count": os.cpu_count(),
        "repro_num_threads": os.environ.get("REPRO_NUM_THREADS"),
        "effective_workers": default_num_threads(),
        "backend": ParallelContext().backend,
        "default_threshold": default_cost_threshold(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "tracing": os.environ.get("REPRO_TRACE") in ("1", "true", "yes", "on"),
        "chaos_seed_env": os.environ.get("REPRO_CHAOS_SEED"),
        "chaos_active": active_chaos() is not None,
    }


@pytest.fixture(scope="session")
def benchmark_seed() -> int:
    return 2017  # the tutorial's year, for determinism

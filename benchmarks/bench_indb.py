"""E6 — In-database gradient methods (Bismarck).

Surveyed claims: (a) one unified UDA covers GLMs by swapping the loss;
(b) IGD converges in a handful of epochs; (c) shuffling once nearly
matches per-epoch reshuffling and beats clustered order.
"""

import numpy as np
import pytest

from repro.data import make_classification
from repro.indb import InDBLinearRegression, train_igd
from repro.ml.losses import HingeLoss, LogisticLoss, SquaredLoss
from repro.storage import Table

N, D = 10_000, 10
FEATURES = [f"x{i}" for i in range(D)]


@pytest.fixture(scope="module")
def clf_table():
    X, y = make_classification(N, D, separation=2.0, seed=2017)
    # Clustered physical order: the worst case for no-shuffle IGD.
    order = np.argsort(y)
    return Table.from_columns(
        {f"x{i}": X[order, i] for i in range(D)}
        | {"y": np.where(y[order] == 1, 1.0, -1.0)}
    )


def test_igd_epoch_logistic(benchmark, clf_table):
    result = benchmark.pedantic(
        train_igd,
        args=(clf_table, FEATURES, "y", LogisticLoss()),
        kwargs={"epochs": 1, "shuffle": "once", "seed": 1},
        rounds=3,
        iterations=1,
    )
    assert result.final_loss < result.loss_history[0]


def test_igd_epoch_svm_same_harness(benchmark, clf_table):
    """Bismarck unification: only the loss object changes."""
    result = benchmark.pedantic(
        train_igd,
        args=(clf_table, FEATURES, "y", HingeLoss()),
        kwargs={"epochs": 1, "shuffle": "once", "seed": 1, "l2": 0.001},
        rounds=3,
        iterations=1,
    )
    assert result.final_loss < result.loss_history[0]


def test_igd_converges_in_few_epochs(clf_table):
    result = train_igd(
        clf_table, FEATURES, "y", LogisticLoss(), epochs=5, shuffle="once", seed=1
    )
    assert result.loss_history[5] < 0.6 * result.loss_history[0]


def test_shuffle_once_beats_none(clf_table):
    none = train_igd(
        clf_table, FEATURES, "y", LogisticLoss(), epochs=3, shuffle="none"
    )
    once = train_igd(
        clf_table, FEATURES, "y", LogisticLoss(), epochs=3, shuffle="once", seed=1
    )
    assert once.final_loss < none.final_loss


def test_shuffle_once_close_to_each(clf_table):
    once = train_igd(
        clf_table, FEATURES, "y", LogisticLoss(), epochs=5, shuffle="once", seed=1
    )
    each = train_igd(
        clf_table, FEATURES, "y", LogisticLoss(), epochs=5, shuffle="each", seed=1
    )
    assert once.final_loss == pytest.approx(each.final_loss, rel=0.3)


def test_one_scan_normal_equations(benchmark):
    rng = np.random.default_rng(2017)
    X = rng.standard_normal((N, D))
    y = X @ rng.standard_normal(D)
    table = Table.from_columns(
        {f"x{i}": X[:, i] for i in range(D)} | {"y": y}
    )

    def train():
        return InDBLinearRegression().fit(table, FEATURES, "y")

    model = benchmark.pedantic(train, rounds=2, iterations=1)
    assert model.score(table, "y") > 0.999

#!/usr/bin/env python3
"""CI regression gate: compare a fresh benchmark JSON against a baseline.

Usage::

    python benchmarks/check_regression.py candidate.json baseline.json \
        [--tolerance 0.25]

Both files are ``--out`` captures of the same benchmark (``meta.experiment``
must match). Two classes of checks:

* **Behavior gates** — machine-independent invariants that must hold on
  any host: zero densify fallbacks, parity errors within 1e-9, compact
  representations beating dense on peak bytes, the cost gate falling
  back to serial below threshold and fanning out above it, byte totals
  tracking the baseline. These always run.
* **Wall-clock gates** — speedup comparisons against the baseline.
  Wall-clock is only comparable between machines with the same hardware
  parallelism, so these are **skipped automatically when
  ``meta.cpu_count`` differs** between candidate and baseline (the
  committed baselines were captured on a 1-CPU builder; CI runners
  usually have more cores). Even on matching hardware, quick-mode
  timings of ratio metrics are noisy, so the default gate is
  *categorical*: a baseline win (speedup >= 1.25) must stay a win
  (>= 1.0); baselines that never claimed a win are informational.
  ``--strict`` switches to ratio comparison within ``--tolerance``.

A capture taken under an active chaos context (``meta.chaos_active``)
never compares against a clean baseline, and vice versa — shed and
retry ledgers are only meaningful between like captures.

Exit status: 0 when every applicable check passes, 1 otherwise (the CI
job fails). Every check prints one line, so the workflow log is the
regression report.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

PARITY_BOUND = 1e-9

#: a baseline speedup at/above this is a claimed win the gate protects.
WIN_THRESHOLD = 1.25


class Gate:
    """Collects check results and renders the pass/fail report."""

    def __init__(self) -> None:
        self.failures: list[str] = []
        self.passed = 0
        self.skipped = 0

    def check(self, ok: bool, label: str) -> None:
        if ok:
            self.passed += 1
            print(f"  ok    {label}")
        else:
            self.failures.append(label)
            print(f"  FAIL  {label}")

    def skip(self, label: str) -> None:
        self.skipped += 1
        print(f"  skip  {label}")


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _by_workload(results: list[dict]) -> dict[str, dict]:
    return {entry["workload"]: entry for entry in results}


def _close(candidate: float, baseline: float, tol: float) -> bool:
    """candidate within (1 +/- tol) of baseline; degenerate values fail."""
    if not (math.isfinite(candidate) and math.isfinite(baseline)):
        return False
    if baseline == 0:
        return candidate == 0
    return abs(candidate / baseline - 1.0) <= tol


def _no_worse(candidate: float, baseline: float, tol: float) -> bool:
    """Speedup-style metric: candidate may exceed the baseline freely."""
    if not (math.isfinite(candidate) and math.isfinite(baseline)):
        return False
    return candidate >= baseline * (1.0 - tol)


def _wall_gate(
    g: Gate,
    label: str,
    candidate: float,
    baseline: float,
    tol: float,
    wall: bool,
    strict: bool,
) -> None:
    """One wall-clock speedup comparison under the gating policy."""
    if not wall:
        g.skip(label + " (cpu_count differs)")
        return
    if strict:
        g.check(_no_worse(candidate, baseline, tol), label)
        return
    if baseline >= WIN_THRESHOLD:
        g.check(candidate >= 1.0, label + " (baseline win preserved)")
    else:
        g.skip(label + " (baseline not a win; informational)")


# ----------------------------------------------------------------------
# E18 — cost-aware parallel engine
# ----------------------------------------------------------------------
def check_e18(
    cand: dict, base: dict, tol: float, wall: bool, strict: bool, g: Gate
) -> None:
    cw, bw = _by_workload(cand["results"]), _by_workload(base["results"])
    g.check(
        set(cw) == set(bw),
        f"workload set matches baseline ({sorted(cw)})",
    )
    cross = cw.get("threshold_crossover")
    base_cross = bw.get("threshold_crossover")
    if cross and base_cross:
        base_points = {p["n_rows"]: p for p in base_cross["points"]}
        for p in cross["points"]:
            bp = base_points.get(p["n_rows"])
            if bp is None:
                g.check(False, f"crossover point n={p['n_rows']} in baseline")
                continue
            g.check(
                p["above_threshold"] == bp["above_threshold"],
                f"cost-gate decision unchanged at n={p['n_rows']} "
                f"({'parallel' if p['above_threshold'] else 'serial'})",
            )
            if p["above_threshold"]:
                g.check(
                    p["parallel_calls"] >= 1,
                    f"above-threshold n={p['n_rows']} dispatched in parallel",
                )
            else:
                g.check(
                    p["serial_fallbacks"] >= 1 and p["parallel_calls"] == 0,
                    f"below-threshold n={p['n_rows']} stayed serial",
                )
    for name in sorted(set(cw) & set(bw) - {"threshold_crossover"}):
        rows = {r["threads"]: r for r in cw[name].get("by_threads", [])}
        base_rows = {r["threads"]: r for r in bw[name].get("by_threads", [])}
        for threads in sorted(set(rows) & set(base_rows)):
            _wall_gate(
                g,
                f"{name}@{threads}t speedup "
                f"{rows[threads]['speedup']:.2f} vs baseline "
                f"{base_rows[threads]['speedup']:.2f}",
                rows[threads]["speedup"],
                base_rows[threads]["speedup"],
                tol,
                wall,
                strict,
            )


# ----------------------------------------------------------------------
# E19 — representation-aware execution
# ----------------------------------------------------------------------
def check_e19(
    cand: dict, base: dict, tol: float, wall: bool, strict: bool, g: Gate
) -> None:
    cw, bw = _by_workload(cand["results"]), _by_workload(base["results"])
    g.check(
        set(cw) == set(bw),
        f"workload set matches baseline ({sorted(cw)})",
    )
    for name in sorted(cw):
        entry = cw[name]
        g.check(
            entry.get("densify_fallbacks", -1) == 0,
            f"{name}: zero densify fallbacks",
        )
        if "max_weight_error" in entry:
            g.check(
                entry["max_weight_error"] <= PARITY_BOUND,
                f"{name}: weight parity {entry['max_weight_error']:.1e} "
                f"<= {PARITY_BOUND:.0e}",
            )
        if "inertia_rel_error" in entry:
            g.check(
                entry["inertia_rel_error"] <= PARITY_BOUND,
                f"{name}: inertia parity {entry['inertia_rel_error']:.1e} "
                f"<= {PARITY_BOUND:.0e}",
            )
        rep_kind = name.split("/")[-1]
        if rep_kind in ("cla", "factorized"):
            g.check(
                entry["rep_peak_bytes"] < entry["dense_peak_bytes"],
                f"{name}: rep peak {entry['rep_peak_bytes']:,}B < dense "
                f"{entry['dense_peak_bytes']:,}B",
            )
        base_entry = bw.get(name)
        if base_entry is None:
            continue
        g.check(
            _close(entry["rep_peak_bytes"], base_entry["rep_peak_bytes"], tol),
            f"{name}: rep peak bytes track baseline "
            f"({entry['rep_peak_bytes']:,} vs {base_entry['rep_peak_bytes']:,})",
        )
        for metric in ("loop_speedup", "end_to_end_speedup"):
            _wall_gate(
                g,
                f"{name}: {metric} {entry[metric]:.2f} vs baseline "
                f"{base_entry[metric]:.2f}",
                entry[metric],
                base_entry[metric],
                tol,
                wall,
                strict,
            )


# ----------------------------------------------------------------------
# E21 — fault-tolerant execution
# ----------------------------------------------------------------------
def check_e21(
    cand: dict, base: dict, tol: float, wall: bool, strict: bool, g: Gate
) -> None:
    """All E21 gates are behavior gates: completion, parity, and the
    event-count overhead bound are machine-independent by design."""
    summary = cand.get("summary", {})
    g.check(
        summary.get("completion_rate") == 1.0,
        f"completion rate {summary.get('completion_rate')} == 1.0",
    )
    g.check(
        summary.get("identical_all") is True,
        "every recovered run bit-identical to fault-free",
    )
    overhead = cand.get("overhead", {})
    g.check(
        overhead.get("estimated_overhead_pct", float("inf"))
        < overhead.get("bound_pct", 3.0),
        f"disabled-path overhead "
        f"{overhead.get('estimated_overhead_pct', float('nan')):.3f}% < "
        f"{overhead.get('bound_pct', 3.0):.0f}%",
    )
    chaos_entries = [e for e in cand["results"] if "fault_rate" in e]
    g.check(
        any(
            e.get("faults_injected", 0) > 0
            for e in chaos_entries
            if e["fault_rate"] >= 0.2
        ),
        "faults actually injected at the 20% rate",
    )
    for entry in cand["results"]:
        g.check(
            entry.get("completed") is True and entry.get("identical") is True,
            f"{entry['workload']}"
            + (
                f" @ {entry['fault_rate']:.0%}"
                if "fault_rate" in entry
                else ""
            )
            + ": completed and identical",
        )
    base_names = [e["workload"] for e in base["results"]]
    cand_names = [e["workload"] for e in cand["results"]]
    g.check(
        cand_names == base_names,
        f"workload list matches baseline ({len(cand_names)} entries)",
    )


# ----------------------------------------------------------------------
# E22 — online serving
# ----------------------------------------------------------------------
def check_e22(
    cand: dict, base: dict, tol: float, wall: bool, strict: bool, g: Gate
) -> None:
    """Serving gates are mostly behavior gates: bit identity, exact
    canary/cache/shed counts, and the within-capture batch-64 speedup
    bound (both runs share one machine, so the ratio is comparable
    anywhere). Only cross-capture rps comparisons are wall-clock."""
    cw, bw = _by_workload(cand["results"]), _by_workload(base["results"])
    g.check(
        set(cw) == set(bw),
        f"workload set matches baseline ({sorted(cw)})",
    )
    for name in sorted(n for n in cw if n.startswith("throughput/")):
        entry = cw[name]
        g.check(
            entry.get("bit_identical") is True,
            f"{name}: bit-identical to single-row serving",
        )
        lat = entry.get("latency_ms", {})
        g.check(
            all(lat.get(p) is not None for p in ("p50", "p95", "p99"))
            and lat["p50"] <= lat["p95"] <= lat["p99"],
            f"{name}: latency percentiles present and ordered",
        )
        base_entry = bw.get(name)
        if base_entry is not None:
            _wall_gate(
                g,
                f"{name}: speedup {entry['speedup_vs_unbatched']:.2f} vs "
                f"baseline {base_entry['speedup_vs_unbatched']:.2f}",
                entry["speedup_vs_unbatched"],
                base_entry["speedup_vs_unbatched"],
                tol,
                wall,
                strict,
            )
    batch64 = cw.get("throughput/batch64", {})
    g.check(
        batch64.get("speedup_vs_unbatched", 0.0) >= 3.0,
        f"batch-64 speedup {batch64.get('speedup_vs_unbatched', 0.0):.2f} "
        f">= 3.0 (within-capture bound)",
    )
    cache = cw.get("cache/skewed_entities", {})
    base_cache = bw.get("cache/skewed_entities", {})
    g.check(
        cache.get("counts_exact") is True,
        "cache hit/miss ledger exactly matches the request stream",
    )
    for metric in ("hits", "misses"):
        g.check(
            cache.get(metric) == base_cache.get(metric),
            f"cache {metric} {cache.get(metric)} == baseline "
            f"{base_cache.get(metric)} (seeded stream is deterministic)",
        )
    canary = cw.get("canary/hash_split", {})
    base_canary = bw.get("canary/hash_split", {})
    g.check(
        canary.get("exact_split") is True,
        "canary split exactly matches the hash router",
    )
    g.check(
        canary.get("canary_requests") == base_canary.get("canary_requests"),
        f"canary count {canary.get('canary_requests')} == baseline "
        f"{base_canary.get('canary_requests')} (same seed, same split)",
    )
    adm = cw.get("admission/bounded_queue", {})
    base_adm = bw.get("admission/bounded_queue", {})
    g.check(
        adm.get("queue_shed_exact") is True,
        f"burst past capacity shed exactly {adm.get('queue_shed')} requests",
    )
    g.check(
        adm.get("chaos_shed_matches_injected") is True
        and adm.get("chaos_shed") == base_adm.get("chaos_shed"),
        f"seeded admission chaos shed {adm.get('chaos_shed')} == baseline "
        f"{base_adm.get('chaos_shed')}",
    )


# ----------------------------------------------------------------------
# E23 — adaptive re-optimization
# ----------------------------------------------------------------------
def check_e23(
    cand: dict, base: dict, tol: float, wall: bool, strict: bool, g: Gate
) -> None:
    """Convergence, identity, and the overhead bound are behavior gates;
    the post-correction and vs-stale-pinned speedups are *within-capture*
    ratios (both sides of each ratio ran on one machine), so they gate
    against fixed floors everywhere. Only cross-capture speedup
    comparisons follow the wall-clock skip policy."""
    cw, bw = _by_workload(cand["results"]), _by_workload(base["results"])
    g.check(
        set(cw) == set(bw),
        f"workload set matches baseline ({sorted(cw)})",
    )
    meta = cand.get("meta", {})
    max_iters = meta.get("max_correction_iterations", 2)

    fallback = cw.get("fallback/power_iteration", {})
    g.check(
        fallback.get("initially_misplanned") is True,
        "fallback leg starts from the wrong (csr) plan",
    )
    corrected = fallback.get("corrected_at_iteration")
    g.check(
        corrected is not None and corrected <= max_iters,
        f"fallback plan corrected at iteration {corrected} <= {max_iters}",
    )
    g.check(
        fallback.get("fallbacks_after_correction") == 0,
        "zero densify fallbacks after the correction",
    )
    g.check(
        fallback.get("bit_identical") is True,
        "corrected run bit-identical to the no-feedback run",
    )
    min_fb = meta.get("min_fallback_speedup", 1.2)
    g.check(
        fallback.get("post_correction_speedup", 0.0) >= min_fb,
        f"post-correction speedup "
        f"{fallback.get('post_correction_speedup', 0.0):.2f} >= {min_fb} "
        f"(within-capture bound)",
    )

    dispatch = cw.get("dispatch/fine_grained", {})
    corrected = dispatch.get("corrected_at_iteration")
    g.check(
        corrected is not None and corrected <= max_iters,
        f"dispatch corrected at iteration {corrected} <= {max_iters}",
    )
    g.check(
        dispatch.get("learned_action") == "serial",
        f"losing site learned action "
        f"{dispatch.get('learned_action')!r} == 'serial'",
    )
    g.check(
        dispatch.get("results_identical") is True,
        "serial dispatch produced identical results",
    )

    replan = cw.get("replan/stale_store", {})
    g.check(
        replan.get("replans") == 1,
        f"stale plan demoted in exactly 1 replan "
        f"(got {replan.get('replans')})",
    )
    g.check(
        replan.get("weight_parity", float("inf")) <= PARITY_BOUND,
        f"adaptive weights parity {replan.get('weight_parity', 0):.1e} "
        f"<= {PARITY_BOUND:.0e}",
    )
    g.check(
        replan.get("resume_bit_identical") is True,
        "checkpoint-resume oracle: bitwise across the mid-run switch",
    )
    g.check(
        replan.get("kmeans_bit_identical") is True,
        "kmeans stale-binding correction bit-identical",
    )
    min_rp = meta.get("min_replan_speedup", 1.02)
    g.check(
        replan.get("adaptive_vs_pinned_speedup", 0.0) >= min_rp,
        f"adaptive vs stale-pinned speedup "
        f"{replan.get('adaptive_vs_pinned_speedup', 0.0):.2f} >= {min_rp} "
        f"(within-capture bound)",
    )
    base_replan = bw.get("replan/stale_store", {})
    _wall_gate(
        g,
        f"replan speedup {replan.get('adaptive_vs_pinned_speedup', 0.0):.2f}"
        f" vs baseline "
        f"{base_replan.get('adaptive_vs_pinned_speedup', 0.0):.2f}",
        replan.get("adaptive_vs_pinned_speedup", 0.0),
        base_replan.get("adaptive_vs_pinned_speedup", 0.0),
        tol,
        wall,
        strict,
    )

    overhead = cw.get("overhead/disabled_path", {})
    g.check(
        overhead.get("estimated_overhead_pct", float("inf"))
        < overhead.get("bound_pct", 3.0),
        f"disabled-path overhead "
        f"{overhead.get('estimated_overhead_pct', float('nan')):.3f}% < "
        f"{overhead.get('bound_pct', 3.0):.0f}%",
    )


# ----------------------------------------------------------------------
# E24 — lineage-aware materialization
# ----------------------------------------------------------------------
def check_e24(
    cand: dict, base: dict, tol: float, wall: bool, strict: bool, g: Gate
) -> None:
    """Ledger exactness, bitwise identity, the repair story, and the
    disabled-path bound are behavior gates. The warm-vs-cold grid
    speedup is a *within-capture* ratio (both sides ran on one machine),
    so it gates against the fixed >= 3x floor everywhere; only the
    cross-capture comparison follows the wall-clock skip policy."""
    cw, bw = _by_workload(cand["results"]), _by_workload(base["results"])
    g.check(
        set(cw) == set(bw),
        f"workload set matches baseline ({sorted(cw)})",
    )
    meta = cand.get("meta", {})
    min_speedup = meta.get("min_grid_speedup", 3.0)

    grid = cw.get("grid/feature_subsets", {})
    g.check(
        grid.get("counts_exact") is True,
        f"cold ledger exact: misses == puts == {grid.get('pairs')} "
        f"(subset x fold), warm hits match",
    )
    g.check(
        grid.get("bit_identical") is True,
        "warm sweep bit-identical to cold",
    )
    g.check(
        grid.get("restart_bit_identical") is True
        and grid.get("restart_exact") is True,
        f"restart instance served all {grid.get('restart_disk_hits')} "
        f"statistics from disk, bit-identically",
    )
    g.check(
        grid.get("cross_workload_exact") is True,
        f"second workload reused {grid.get('cross_workload_hits')} "
        f"statistics, computed {grid.get('cross_workload_misses')} new "
        f"(both exact)",
    )
    g.check(
        grid.get("speedup", 0.0) >= min_speedup,
        f"warm grid speedup {grid.get('speedup', 0.0):.2f} >= "
        f"{min_speedup} (within-capture bound)",
    )
    base_grid = bw.get("grid/feature_subsets", {})
    _wall_gate(
        g,
        f"grid speedup {grid.get('speedup', 0.0):.2f} vs baseline "
        f"{base_grid.get('speedup', 0.0):.2f}",
        grid.get("speedup", 0.0),
        base_grid.get("speedup", 0.0),
        tol,
        wall,
        strict,
    )

    repair = cw.get("repair/corrupted_entries", {})
    g.check(
        repair.get("counts_exact") is True,
        f"{repair.get('corrupted')} corrupted entries -> exactly "
        f"{repair.get('recomputes')} lineage recomputes",
    )
    g.check(
        repair.get("bit_identical") is True,
        "repaired sweep bit-identical to the cold reference",
    )
    g.check(
        repair.get("chaos_counts_exact") is True
        and repair.get("chaos_bit_identical") is True,
        f"chaos (every read corrupts): {repair.get('chaos_corrupt_entries')}"
        f" entries repaired bit-identically",
    )

    overhead = cw.get("overhead/disabled_path", {})
    g.check(
        overhead.get("estimated_overhead_pct", float("inf"))
        < overhead.get("bound_pct", 3.0),
        f"disabled-path overhead "
        f"{overhead.get('estimated_overhead_pct', float('nan')):.3f}% < "
        f"{overhead.get('bound_pct', 3.0):.0f}%",
    )
    g.check(
        overhead.get("plans_identical") is True,
        "compiled plans byte-identical with and without an active store",
    )

    evict = cw.get("eviction/capacity_ledger", {})
    g.check(
        evict.get("evictions_exact") is True,
        f"evictions exactly puts - capacity "
        f"({evict.get('cold_evictions')} = {evict.get('pairs')} - "
        f"{evict.get('capacity_entries')})",
    )
    g.check(
        evict.get("all_served") is True and evict.get("bit_identical") is True,
        "capacity-bounded warm sweep served every statistic bit-identically",
    )
    g.check(
        evict.get("pinned_resident") is True,
        "pinned entry survived eviction pressure",
    )


# ----------------------------------------------------------------------
# E25 — incremental maintenance over dynamic tables
# ----------------------------------------------------------------------
def check_e25(
    cand: dict, base: dict, tol: float, wall: bool, strict: bool, g: Gate
) -> None:
    """Bitwise parity, exact fold/recompute ledgers, the chaos-sweep
    accounting, and the disabled-path bound are behavior gates. The
    delta-refresh speedup is a *within-capture* ratio (both sides ran on
    one machine), so it gates against the fixed >= 5x floor everywhere;
    only the cross-capture comparison follows the wall-clock skip
    policy."""
    cw, bw = _by_workload(cand["results"]), _by_workload(base["results"])
    g.check(
        set(cw) == set(bw),
        f"workload set matches baseline ({sorted(cw)})",
    )
    meta = cand.get("meta", {})
    min_speedup = meta.get("min_refresh_speedup", 5.0)

    refresh = cw.get("refresh/delta_vs_snapshot", {})
    g.check(
        refresh.get("bit_identical") is True,
        "delta-refreshed weights bit-identical to snapshot retrain "
        "every round",
    )
    g.check(
        refresh.get("ledger_exact") is True,
        f"fold ledger exact: {refresh.get('rows_folded')} rows folded "
        f"== closed form {refresh.get('rows_folded_expected')}",
    )
    g.check(
        refresh.get("recomputes") == 0,
        "zero lineage recomputes on the clean delta stream",
    )
    g.check(
        refresh.get("speedup", 0.0) >= min_speedup,
        f"delta refresh speedup {refresh.get('speedup', 0.0):.2f} >= "
        f"{min_speedup} (within-capture bound)",
    )
    base_refresh = bw.get("refresh/delta_vs_snapshot", {})
    _wall_gate(
        g,
        f"refresh speedup {refresh.get('speedup', 0.0):.2f} vs baseline "
        f"{base_refresh.get('speedup', 0.0):.2f}",
        refresh.get("speedup", 0.0),
        base_refresh.get("speedup", 0.0),
        tol,
        wall,
        strict,
    )

    chaos_entries = [e for e in cand["results"] if "fault_rate" in e]
    g.check(
        any(
            e.get("faults_injected", 0) > 0
            for e in chaos_entries
            if e["fault_rate"] >= 0.2
        ),
        "faults actually injected at the 20% rate",
    )
    for entry in chaos_entries:
        label = f"{entry['workload']} @ {entry['fault_rate']:.0%}"
        g.check(
            entry.get("completed") is True and entry.get("identical") is True,
            f"{label}: completed, aggregates bit-identical to clean run",
        )
        g.check(
            entry.get("recompute_matches_faults") is True,
            f"{label}: {entry.get('recomputes')} recomputes == "
            f"{entry.get('faults_injected')} injected faults",
        )
        g.check(
            entry.get("accounted_exact") is True,
            f"{label}: every consumed delta accounted for in the ledger",
        )

    serving = cw.get("serving/e2e_refresh", {})
    g.check(
        serving.get("identical") is True,
        "served value after hot-swap equals compiled snapshot retrain",
    )
    g.check(
        serving.get("cache_invalidated") is True
        and serving.get("prediction_changed") is True,
        "promote eagerly invalidated the prediction cache",
    )
    g.check(
        serving.get("versions_chained") is True,
        "refreshed versions chain lineage through the registry",
    )

    overhead = cand.get("overhead", {})
    g.check(
        overhead.get("estimated_overhead_pct", float("inf"))
        < overhead.get("bound_pct", 3.0),
        f"disabled-path overhead "
        f"{overhead.get('estimated_overhead_pct', float('nan')):.3f}% < "
        f"{overhead.get('bound_pct', 3.0):.0f}%",
    )


CHECKERS = {
    "E18": check_e18,
    "E19": check_e19,
    "E21": check_e21,
    "E22": check_e22,
    "E23": check_e23,
    "E24": check_e24,
    "E25": check_e25,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("candidate", help="fresh --out capture to validate")
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative slack for ratio comparisons (default 0.25)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="gate wall-clock speedups as ratios within --tolerance instead "
        "of the categorical win-preserved policy",
    )
    args = parser.parse_args(argv)

    cand, base = _load(args.candidate), _load(args.baseline)
    experiment = cand.get("meta", {}).get("experiment")
    base_experiment = base.get("meta", {}).get("experiment")
    if experiment != base_experiment:
        print(
            f"error: candidate is {experiment!r} but baseline is "
            f"{base_experiment!r}"
        )
        return 1
    checker = CHECKERS.get(experiment)
    if checker is None:
        print(f"error: no regression checks registered for {experiment!r} "
              f"(known: {sorted(CHECKERS)})")
        return 1

    cand_chaos = bool(cand.get("meta", {}).get("chaos_active"))
    base_chaos = bool(base.get("meta", {}).get("chaos_active"))
    if cand_chaos != base_chaos:
        # Shed/retry/fault ledgers are only meaningful between like
        # captures; a chaos capture never gates against a clean baseline.
        print(
            f"error: candidate chaos_active={cand_chaos} but baseline "
            f"chaos_active={base_chaos}; capture a matching baseline "
            f"(meta.chaos_seed_env: {cand.get('meta', {}).get('chaos_seed_env')!r}"
            f" vs {base.get('meta', {}).get('chaos_seed_env')!r})"
        )
        return 1

    cand_cpus = cand.get("meta", {}).get("cpu_count")
    base_cpus = base.get("meta", {}).get("cpu_count")
    wall = cand_cpus is not None and cand_cpus == base_cpus
    print(
        f"{experiment}: candidate cpus={cand_cpus}, baseline cpus={base_cpus}"
        f" -> wall-clock gates {'ON' if wall else 'SKIPPED'}"
    )

    gate = Gate()
    checker(cand, base, args.tolerance, wall, args.strict, gate)
    print(
        f"\n{experiment}: {gate.passed} passed, {gate.skipped} skipped, "
        f"{len(gate.failures)} failed"
    )
    if gate.failures:
        print("failing checks:")
        for failure in gate.failures:
            print(f"  - {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
